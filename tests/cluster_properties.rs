//! Property tests for the cluster layer.
//!
//! Two invariants the whole design rests on:
//!
//! 1. **Placement safety** — every policy gives each job distinct in-job
//!    machines that exist in the cluster, for arbitrary job mixes. A
//!    violation would alias two of one job's nodes onto one NIC and
//!    silently change the contention model.
//! 2. **Degenerate-case equivalence** — a single-job cluster is the
//!    standalone simulator: `run_cluster` with one job must reproduce
//!    `bs_runtime::run` exactly (finish time, speed, iteration vector,
//!    byte and event counts) for any scheduler, fabric, and seed. This is
//!    what makes every existing single-job result in this repo a valid
//!    cluster baseline.

use bs_cluster::{run_cluster, ClusterConfig, JobSpec, PlacementPolicy};
use bs_engine::EngineConfig;
use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::{run, Arch, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use proptest::prelude::*;

/// A small comm-heavy toy so each property case simulates in ~ms.
fn toy() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            12_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "l1",
            3_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "l2",
            1_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .build()
}

fn train_spec(workers: usize, seed: u64) -> JobSpec {
    let mut cfg = WorldConfig::new(
        toy(),
        workers,
        Arch::ps(workers),
        NetConfig::gbps(10.0, Transport::tcp()),
        EngineConfig::mxnet_ps(),
        SchedulerKind::Baseline,
    );
    cfg.seed = seed;
    JobSpec::train(format!("w{workers}s{seed}"), cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every policy, for any mix of job sizes that fits: machines within
    /// one job are pairwise distinct and in range.
    #[test]
    fn placements_are_in_range_and_distinct_within_each_job(
        sizes in proptest::collection::vec(1usize..5, 1..6),
        extra_room in 0usize..5,
    ) {
        // Each PS job needs workers + servers = 2 * workers machines.
        let largest = sizes.iter().map(|w| 2 * w).max().unwrap();
        let machines = largest + extra_room;
        let specs: Vec<JobSpec> = sizes
            .iter()
            .enumerate()
            .map(|(i, &w)| train_spec(w, i as u64))
            .collect();
        for policy in PlacementPolicy::all() {
            let placed = policy.place(machines, &specs);
            prop_assert_eq!(placed.len(), specs.len());
            for (spec, nodes) in specs.iter().zip(&placed) {
                prop_assert_eq!(nodes.len(), spec.nodes_needed());
                let mut seen: Vec<usize> = nodes.iter().map(|n| n.0).collect();
                seen.sort_unstable();
                for m in &seen {
                    prop_assert!(*m < machines, "{policy:?} placed on machine {m} of {machines}");
                }
                seen.dedup();
                prop_assert_eq!(
                    seen.len(),
                    nodes.len(),
                    "{:?} reused a machine within one job",
                    policy
                );
            }
        }
    }
}

proptest! {
    // Each case runs two full simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One-job cluster ≡ `World::run`, over schedulers × fabrics × seeds
    /// × placement policies.
    #[test]
    fn single_job_cluster_reproduces_the_standalone_run(
        seed in 0u64..1000,
        sched_pick in 0usize..3,
        fluid in any::<bool>(),
        policy_pick in 0usize..3,
        workers in 2usize..4,
    ) {
        let sched = match sched_pick {
            0 => SchedulerKind::Baseline,
            1 => SchedulerKind::ByteScheduler { partition: 800_000, credit: 3_200_000 },
            _ => SchedulerKind::P3,
        };
        let fabric = if fluid { FabricModel::FairShare } else { FabricModel::SerialFifo };
        let mut cfg = WorldConfig::new(
            toy(),
            workers,
            Arch::ps(workers),
            NetConfig::gbps(10.0, Transport::tcp()),
            EngineConfig::mxnet_ps(),
            sched,
        );
        cfg.iters = 5;
        cfg.warmup = 1;
        cfg.jitter = 0.02;
        cfg.seed = seed;
        cfg.fabric = fabric;

        let solo = run(&cfg);

        let mut cluster = ClusterConfig::new(2 * workers, cfg.net);
        cluster.fabric = fabric;
        cluster.placement = PlacementPolicy::all()[policy_pick];
        let r = run_cluster(&cluster, &[JobSpec::train("solo", cfg.clone())]);
        prop_assert_eq!(r.jobs.len(), 1);
        let job = &r.jobs[0].result;

        prop_assert_eq!(solo.finished_at, job.finished_at);
        prop_assert_eq!(solo.speed, job.speed);
        prop_assert_eq!(&solo.iter_times, &job.iter_times);
        prop_assert_eq!(solo.p2p_bytes, job.p2p_bytes);
        prop_assert_eq!(solo.comm_events, job.comm_events);
        prop_assert_eq!(r.makespan, solo.finished_at);
    }
}
