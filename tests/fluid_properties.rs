//! Property tests for the max-min fair fluid fabric.

use bytescheduler::net::{FluidNetwork, NetConfig, NetEvent, NodeId, Transport};
use bytescheduler::sim::SimTime;
use proptest::prelude::*;

fn drain(n: &mut FluidNetwork) -> Vec<(u64, SimTime)> {
    let mut out = Vec::new();
    let mut guard = 0;
    loop {
        let t = n.next_event_time();
        if t.is_never() {
            break;
        }
        out.extend(n.advance(t).into_iter().filter_map(|e| match e {
            NetEvent::Delivered(c) => Some((c.tag, c.finished_at)),
            NetEvent::Released(_) => None,
        }));
        guard += 1;
        assert!(guard < 2_000_000, "fluid fabric did not drain");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random workload drains: all submissions deliver exactly once,
    /// bytes are conserved, and no delivery beats the physically possible
    /// minimum (size / link rate).
    #[test]
    fn random_workloads_drain_and_conserve(
        flows in proptest::collection::vec(
            (0usize..6, 0usize..6, 1u64..20_000_000, 0u64..5_000), 1..40),
    ) {
        let cfg = NetConfig::gbps(8.0, Transport::ideal()); // 1e9 B/s
        let mut n = FluidNetwork::new(6, cfg);
        let mut total = 0u64;
        let mut submitted = 0usize;
        let mut done = Vec::new();
        for (i, &(src, dst, bytes, start_us)) in flows.iter().enumerate() {
            if src == dst {
                continue;
            }
            let at = SimTime::from_micros(start_us);
            // Anything delivered before this submission instant counts too.
            done.extend(n.advance(at).into_iter().filter_map(|e| match e {
                NetEvent::Delivered(c) => Some((c.tag, c.finished_at)),
                NetEvent::Released(_) => None,
            }));
            n.submit(at, NodeId(src), NodeId(dst), bytes, i as u64);
            total += bytes;
            submitted += 1;
        }
        done.extend(drain(&mut n));
        prop_assert_eq!(done.len(), submitted);
        prop_assert_eq!(n.bytes_delivered(), total);
        // No flow can beat its solo wire time.
        for &(tag, at) in &done {
            let (_, _, bytes, start_us) = flows[tag as usize];
            let min_end = SimTime::from_micros(start_us)
                + SimTime::from_secs_f64(bytes as f64 / 1e9);
            prop_assert!(
                at >= min_end,
                "flow {tag} delivered at {at}, before physical minimum {min_end}"
            );
        }
        prop_assert!(n.is_idle());
    }

    /// Work conservation on a single bottleneck: k same-size flows through
    /// one downlink finish exactly when the serialised schedule would.
    #[test]
    fn incast_aggregate_is_work_conserving(k in 1usize..5, mb in 1u64..8) {
        let cfg = NetConfig::gbps(8.0, Transport::ideal());
        let mut n = FluidNetwork::new(6, cfg);
        let bytes = mb * 1_000_000;
        for w in 0..k {
            n.submit(SimTime::ZERO, NodeId(w), NodeId(5), bytes, w as u64);
        }
        let done = drain(&mut n);
        let last = done.iter().map(|(_, t)| *t).max().unwrap();
        let expect = SimTime::from_secs_f64(k as f64 * bytes as f64 / 1e9);
        let diff = last.saturating_sub(expect).max(expect.saturating_sub(last));
        prop_assert!(
            diff < SimTime::from_micros(5),
            "aggregate finished at {last}, expected {expect}"
        );
    }
}
