//! Property test for the conservative-parallel cluster core: for *any*
//! job mix, placement, fabric, recorder set, and thread count, the
//! parallel driver must reproduce the sequential driver bit-for-bit.
//!
//! The entire [`bs_cluster::ClusterResult`] — job outcomes, iteration
//! vectors, metrics, xray, traces, link utilisation — is serialised to
//! JSON and compared as a string. Floats render with shortest-round-trip
//! formatting, so string equality is bit equality. `threads == 1` cases
//! degenerate into a determinism check of the sequential driver itself.

use bs_cluster::{run_cluster, ClusterConfig, ClusterResult, JobSpec, PlacementPolicy};
use bs_engine::EngineConfig;
use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::{Arch, BackgroundLoad, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use proptest::prelude::*;

/// A small comm-heavy toy so each property case simulates in ~ms.
fn toy() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            12_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "l1",
            3_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "l2",
            1_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .build()
}

/// One randomly-shaped tenant. `kind_pick` chooses PS training (two
/// scheduler flavours), all-reduce training (never touches the shared
/// fabric — the always-parallel case), or a burst tenant (never
/// finishes — the forever-live case).
fn tenant(i: usize, kind_pick: usize, seed: u64, arrival_ms: u64) -> JobSpec {
    let arrival = SimTime::from_millis(arrival_ms);
    match kind_pick {
        0 | 1 => {
            let sched = if kind_pick == 0 {
                SchedulerKind::Baseline
            } else {
                SchedulerKind::ByteScheduler {
                    partition: 800_000,
                    credit: 3_200_000,
                }
            };
            let mut cfg = WorldConfig::new(
                toy(),
                2,
                Arch::ps(2),
                NetConfig::gbps(10.0, Transport::tcp()),
                EngineConfig::mxnet_ps(),
                sched,
            );
            cfg.iters = 4;
            cfg.warmup = 1;
            cfg.jitter = 0.02;
            cfg.seed = seed;
            JobSpec::train_at(format!("ps{i}"), cfg, arrival)
        }
        2 => {
            let mut cfg = WorldConfig::new(
                toy(),
                2,
                Arch::allreduce(),
                NetConfig::gbps(10.0, Transport::tcp()),
                EngineConfig::mxnet_allreduce(),
                SchedulerKind::ByteScheduler {
                    partition: 800_000,
                    credit: 3_200_000,
                },
            );
            cfg.iters = 4;
            cfg.warmup = 1;
            cfg.jitter = 0.02;
            cfg.seed = seed;
            JobSpec::train_at(format!("ar{i}"), cfg, arrival)
        }
        _ => JobSpec::Burst {
            name: format!("bg{i}"),
            arrival,
            load: BackgroundLoad {
                burst_bytes: 1 << 20,
                gap_us: 400,
            },
            pairs: 1,
            seed,
        },
    }
}

fn fingerprint(r: &ClusterResult) -> String {
    serde_json::to_string(r).expect("serialize cluster result")
}

proptest! {
    // Each case runs two full cluster simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn parallel_cluster_matches_sequential_for_any_mix(
        kinds in proptest::collection::vec((0usize..4, 0u64..1000, 0u64..30), 2..6),
        fluid in any::<bool>(),
        packed in any::<bool>(),
        threads in 1usize..6,
        record in any::<bool>(),
    ) {
        // At least one training job, or the run never terminates.
        let mut kinds = kinds;
        if kinds.iter().all(|(k, _, _)| *k >= 3) {
            kinds[0].0 = 1;
        }
        let specs: Vec<JobSpec> = kinds
            .iter()
            .enumerate()
            .map(|(i, &(k, seed, arr))| tenant(i, k, seed, arr))
            .collect();
        let machines = specs.iter().map(|s| s.nodes_needed()).max().unwrap().max(2)
            + specs.iter().map(|s| s.nodes_needed()).sum::<usize>() / 2;
        let mut cluster = ClusterConfig::new(
            machines,
            NetConfig::gbps(10.0, Transport::tcp()),
        );
        cluster.fabric = if fluid { FabricModel::FairShare } else { FabricModel::SerialFifo };
        cluster.placement = if packed {
            PlacementPolicy::Packed
        } else {
            PlacementPolicy::RoundRobinSpread
        };
        cluster.record_trace = record;
        cluster.record_metrics = record;
        cluster.record_xray = record;

        let seq = fingerprint(&run_cluster(&cluster, &specs));
        let mut par = cluster.clone();
        par.threads = threads;
        let got = fingerprint(&run_cluster(&par, &specs));
        prop_assert_eq!(
            got,
            seq,
            "threads={} fabric={:?} placement={:?} diverged",
            threads,
            cluster.fabric,
            cluster.placement
        );
    }
}
