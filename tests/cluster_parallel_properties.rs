//! Property test for the conservative-parallel cluster core: for *any*
//! job mix, placement, fabric, recorder set, and thread count, the
//! parallel driver must reproduce the sequential driver bit-for-bit.
//!
//! The entire [`bs_cluster::ClusterResult`] — job outcomes, iteration
//! vectors, metrics, xray, traces, link utilisation — is serialised to
//! JSON and compared as a string. Floats render with shortest-round-trip
//! formatting, so string equality is bit equality. `threads == 1` cases
//! degenerate into a determinism check of the sequential driver itself.

use bs_cluster::{run_cluster, ClusterConfig, ClusterResult, JobSpec, PlacementPolicy};
use bs_engine::EngineConfig;
use bs_faults::{FaultPlan, MachineFailure};
use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::{Arch, BackgroundLoad, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use proptest::prelude::*;

/// A small comm-heavy toy so each property case simulates in ~ms.
fn toy() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            12_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "l1",
            3_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "l2",
            1_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .build()
}

/// One randomly-shaped tenant. `kind_pick` chooses PS training (two
/// scheduler flavours), all-reduce training (never touches the shared
/// fabric — the always-parallel case), or a burst tenant (never
/// finishes — the forever-live case).
fn tenant(i: usize, kind_pick: usize, seed: u64, arrival_ms: u64) -> JobSpec {
    let arrival = SimTime::from_millis(arrival_ms);
    match kind_pick {
        0 | 1 => {
            let sched = if kind_pick == 0 {
                SchedulerKind::Baseline
            } else {
                SchedulerKind::ByteScheduler {
                    partition: 800_000,
                    credit: 3_200_000,
                }
            };
            let mut cfg = WorldConfig::new(
                toy(),
                2,
                Arch::ps(2),
                NetConfig::gbps(10.0, Transport::tcp()),
                EngineConfig::mxnet_ps(),
                sched,
            );
            cfg.iters = 4;
            cfg.warmup = 1;
            cfg.jitter = 0.02;
            cfg.seed = seed;
            JobSpec::train_at(format!("ps{i}"), cfg, arrival)
        }
        2 => {
            let mut cfg = WorldConfig::new(
                toy(),
                2,
                Arch::allreduce(),
                NetConfig::gbps(10.0, Transport::tcp()),
                EngineConfig::mxnet_allreduce(),
                SchedulerKind::ByteScheduler {
                    partition: 800_000,
                    credit: 3_200_000,
                },
            );
            cfg.iters = 4;
            cfg.warmup = 1;
            cfg.jitter = 0.02;
            cfg.seed = seed;
            JobSpec::train_at(format!("ar{i}"), cfg, arrival)
        }
        _ => JobSpec::Burst {
            name: format!("bg{i}"),
            arrival,
            load: BackgroundLoad {
                burst_bytes: 1 << 20,
                gap_us: 400,
            },
            pairs: 1,
            seed,
        },
    }
}

fn fingerprint(r: &ClusterResult) -> String {
    serde_json::to_string(r).expect("serialize cluster result")
}

proptest! {
    // Each case runs two full cluster simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn parallel_cluster_matches_sequential_for_any_mix(
        kinds in proptest::collection::vec((0usize..4, 0u64..1000, 0u64..30), 2..6),
        fluid in any::<bool>(),
        packed in any::<bool>(),
        threads in 1usize..6,
        record in any::<bool>(),
    ) {
        // At least one training job, or the run never terminates.
        let mut kinds = kinds;
        if kinds.iter().all(|(k, _, _)| *k >= 3) {
            kinds[0].0 = 1;
        }
        let specs: Vec<JobSpec> = kinds
            .iter()
            .enumerate()
            .map(|(i, &(k, seed, arr))| tenant(i, k, seed, arr))
            .collect();
        let machines = specs.iter().map(|s| s.nodes_needed()).max().unwrap().max(2)
            + specs.iter().map(|s| s.nodes_needed()).sum::<usize>() / 2;
        let mut cluster = ClusterConfig::new(
            machines,
            NetConfig::gbps(10.0, Transport::tcp()),
        );
        cluster.fabric = if fluid { FabricModel::FairShare } else { FabricModel::SerialFifo };
        cluster.placement = if packed {
            PlacementPolicy::Packed
        } else {
            PlacementPolicy::RoundRobinSpread
        };
        cluster.record_trace = record;
        cluster.record_metrics = record;
        cluster.record_xray = record;

        let seq = fingerprint(&run_cluster(&cluster, &specs));
        let mut par = cluster.clone();
        par.threads = threads;
        let got = fingerprint(&run_cluster(&par, &specs));
        prop_assert_eq!(
            got,
            seq,
            "threads={} fabric={:?} placement={:?} diverged",
            threads,
            cluster.fabric,
            cluster.placement
        );
    }

    /// The parallel driver must also replay cluster-scope *machine
    /// failures* bit-for-bit: the checkpoint/migrate/resume epochs (or
    /// the fail-closed path when no placement exists) happen at the same
    /// virtual instants with the same node moves at any thread count.
    #[test]
    fn parallel_cluster_matches_sequential_under_machine_failure(
        kinds in proptest::collection::vec((0usize..3, 0u64..1000, 0u64..30), 2..5),
        fluid in any::<bool>(),
        packed in any::<bool>(),
        threads in 2usize..6,
        fail_pick in 0usize..64,
        at_ms in 1u64..40,
        restore in any::<bool>(),
    ) {
        // Training tenants only (kind < 3): a burst tenant never
        // finishes, and here every case already exercises liveness
        // through the failure/restore timeline.
        let specs: Vec<JobSpec> = kinds
            .iter()
            .enumerate()
            .map(|(i, &(k, seed, arr))| tenant(i, k, seed, arr))
            .collect();
        // One spare machine beyond the mixed-tenant sizing so a migration
        // has somewhere to land (the failure may still be unplaceable —
        // that path must be deterministic too).
        let machines = specs.iter().map(|s| s.nodes_needed()).max().unwrap().max(2)
            + specs.iter().map(|s| s.nodes_needed()).sum::<usize>() / 2
            + 1;
        let mut cluster = ClusterConfig::new(
            machines,
            NetConfig::gbps(10.0, Transport::tcp()),
        );
        cluster.fabric = if fluid { FabricModel::FairShare } else { FabricModel::SerialFifo };
        cluster.placement = if packed {
            PlacementPolicy::Packed
        } else {
            PlacementPolicy::RoundRobinSpread
        };
        cluster.faults = Some(FaultPlan {
            machine_failures: vec![MachineFailure {
                machine: fail_pick % machines,
                at_us: at_ms * 1_000,
                restore_us: restore.then_some(at_ms * 1_000 + 2_000_000),
            }],
            ..FaultPlan::empty()
        });

        let seq = fingerprint(&run_cluster(&cluster, &specs));
        let mut par = cluster.clone();
        par.threads = threads;
        let got = fingerprint(&run_cluster(&par, &specs));
        prop_assert_eq!(
            got,
            seq,
            "threads={} fabric={:?} placement={:?} fail={} at={}ms restore={} diverged",
            threads,
            cluster.fabric,
            cluster.placement,
            fail_pick % machines,
            at_ms,
            restore
        );
    }
}
