//! Fault-injection contract tests: the committed fault-plan fixture, the
//! empty-plan identity, determinism under faults, graceful degradation on
//! both fabrics, and the no-credit-leak invariant under random loss.

mod common;

use bytescheduler::faults::{FaultPlan, RecoveryPolicy};
use bytescheduler::harness::Setup;
use bytescheduler::net::FabricModel;
use bytescheduler::runtime::{run, RunOutcome, RunResult, SchedulerKind, WorldConfig};
use proptest::prelude::*;
use serde_json::Value;

fn plan_fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fault_plan.json")
}

fn plan_fixture_text() -> String {
    std::fs::read_to_string(plan_fixture_path()).expect("committed fault plan exists")
}

/// The committed plan validates against its committed JSON schema.
#[test]
fn committed_plan_matches_schema() {
    let schema = common::schema::committed("fault_plan.schema.json");
    let doc: Value = serde_json::from_str(&plan_fixture_text()).expect("fixture parses");
    let mut errs = Vec::new();
    common::schema::validate(&schema, &doc, "$", &mut errs);
    assert!(errs.is_empty(), "schema violations:\n{}", errs.join("\n"));
}

/// Parse → render → parse is the identity on the committed plan.
#[test]
fn committed_plan_round_trips() {
    let plan = FaultPlan::from_json(&plan_fixture_text()).expect("fixture parses");
    assert!(!plan.is_empty());
    let again = FaultPlan::from_json(&plan.to_json()).expect("rendered plan parses");
    assert_eq!(plan, again);
    // And the rendered form still satisfies the schema.
    let schema = common::schema::committed("fault_plan.schema.json");
    let doc: Value = serde_json::from_str(&plan.to_json()).expect("rendered parses");
    let mut errs = Vec::new();
    common::schema::validate(&schema, &doc, "$", &mut errs);
    assert!(errs.is_empty(), "schema violations:\n{}", errs.join("\n"));
}

/// Attaching the *empty* plan changes not one byte of the golden
/// fixture: fault support is pay-for-what-you-inject.
#[test]
fn empty_plan_reproduces_golden_fixture_bytes() {
    let mut fifo_cfg = common::scenario(FabricModel::SerialFifo);
    let mut fluid_cfg = common::scenario(FabricModel::FairShare);
    for cfg in [&mut fifo_cfg, &mut fluid_cfg] {
        cfg.faults = Some(FaultPlan::empty());
    }
    let doc = Value::Array(vec![
        common::fingerprint("comm_heavy_ps_fifo", &run(&fifo_cfg)),
        common::fingerprint("comm_heavy_ps_fluid", &run(&fluid_cfg)),
    ]);
    let rendered = serde_json::to_string_pretty(&doc).expect("render") + "\n";
    let committed = std::fs::read_to_string(common::fixture_path())
        .expect("golden fixture exists (generate with BS_UPDATE_GOLDEN=1)");
    assert_eq!(
        rendered, committed,
        "an empty fault plan must be the identity on the golden scenario"
    );
}

/// Same seed + same plan ⇒ bit-identical outcomes, on both fabrics.
#[test]
fn faulted_runs_are_deterministic() {
    let plan = FaultPlan {
        loss_rate: 0.02,
        recovery: RecoveryPolicy {
            timeout_us: 1_000,
            max_retries: 20,
        },
        ..FaultPlan::empty()
    };
    for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
        let mut cfg = common::scenario(fabric);
        cfg.faults = Some(plan.clone());
        let a = common::fingerprint("det", &run(&cfg));
        let b = common::fingerprint("det", &run(&cfg));
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap(),
            "{fabric:?}: faulted runs must replay bit-identically"
        );
    }
}

/// The committed fixture's scenario: VGG16 on PS TCP at 25 Gbps, the
/// setting of the harness robustness study and the CI faults smoke.
fn vgg_cfg(sched: SchedulerKind, fabric: FabricModel) -> WorldConfig {
    let mut cfg = Setup::MxnetPsTcp.config(bytescheduler::models::zoo::vgg16(), 32, 25.0, sched);
    cfg.iters = 10;
    cfg.warmup = 2;
    cfg.jitter = 0.01;
    cfg.fabric = fabric;
    cfg
}

/// The no-credit-leak contract, in its externally observable form.
///
/// A run ends at engines-done with the final iteration's trailing
/// transfers legitimately still on the wire (clean runs too), so
/// "credit-in-use is zero at the end" is not directly assertable.
/// Instead:
///
/// * a *deficit* leak (lost credit never reclaimed) starves the lane and
///   deadlocks the run — completion itself rules it out;
/// * a *surplus* leak (credit returned twice) trips the scheduler's
///   `debug_assert!(credit <= credit_bytes)` on the next return — these
///   tests run in debug mode, so every exercised path is checked;
/// * the ledgers must agree: every dropped byte reclaimed exactly once,
///   and the in-use level stays within the configured window.
fn assert_no_credit_leak(r: &RunResult, workers: usize, credit: u64) {
    let ms = r.metrics.as_ref().expect("metrics recorded");
    for w in 0..workers {
        for lane in 0..2 {
            let name = format!("worker{w}/sched/lane{lane}/credit_in_use");
            let series = ms.get_series(&name).expect("credit series recorded");
            let last = series.last_value();
            assert!(
                (0.0..=credit as f64).contains(&last),
                "{name}: {last} outside the credit window 0..={credit}"
            );
        }
    }
    assert_eq!(
        ms.get_counter("faults/reclaimed_bytes"),
        ms.get_counter("faults/dropped_bytes"),
        "every dropped byte must be reclaimed (delivery-gated credit)"
    );
}

/// Acceptance scenario: under the committed fixture (4× degradation +
/// 0.1 % loss + one straggler), both fabrics finish `DegradedCompleted`
/// with bounded retries, no leaked credit, and ByteScheduler still beats
/// FIFO.
#[test]
fn committed_fixture_degrades_gracefully_on_both_fabrics() {
    let plan = FaultPlan::from_json(&plan_fixture_text()).expect("fixture parses");
    let bs = SchedulerKind::ByteScheduler {
        partition: 4_000_000,
        credit: 16_000_000,
    };
    for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
        let mut cfg = vgg_cfg(bs, fabric);
        cfg.faults = Some(plan.clone());
        cfg.record_metrics = true;
        let r = run(&cfg);
        let RunOutcome::DegradedCompleted { retries, .. } = r.outcome else {
            panic!(
                "{fabric:?}: expected degraded completion, got {:?}",
                r.outcome
            );
        };
        assert!(retries > 0, "{fabric:?}: the 0.1% loss must cost retries");
        assert!(
            retries < 500,
            "{fabric:?}: {retries} retries is runaway recovery"
        );
        assert_no_credit_leak(&r, cfg.num_workers, 16_000_000);

        let mut base_cfg = vgg_cfg(SchedulerKind::Baseline, fabric);
        base_cfg.faults = Some(plan.clone());
        let base = run(&base_cfg);
        assert!(
            r.speed > base.speed,
            "{fabric:?}: BS ({:.0}) must retain its edge over FIFO ({:.0}) under faults",
            r.speed,
            base.speed
        );
    }
}

/// Retransmits stay visible to the xray: extra wire spans appear for
/// re-driven transfers, yet the critical-path attribution still tiles
/// every iteration's wall time exactly — recovery time is attributed,
/// not lost.
#[test]
fn xray_attribution_tiles_exactly_under_faults() {
    for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
        let mut cfg = common::scenario(fabric);
        cfg.record_xray = true;
        cfg.faults = Some(FaultPlan {
            loss_rate: 0.02,
            recovery: RecoveryPolicy {
                timeout_us: 1_000,
                max_retries: 20,
            },
            ..FaultPlan::empty()
        });
        let r = run(&cfg);
        assert!(
            matches!(r.outcome, RunOutcome::DegradedCompleted { .. }),
            "{fabric:?}: {:?}",
            r.outcome
        );
        let x = r.xray.as_ref().expect("xray recorded");
        assert_eq!(x.iterations.len() as u64, cfg.iters);
        for it in &x.iterations {
            assert_eq!(
                it.attribution.total_ns(),
                it.wall_ns(),
                "{fabric:?} iter {}: attribution must tile the window under retransmits",
                it.iter
            );
        }
        assert_eq!(x.totals.total_ns(), x.measured_wall_ns);
    }
}

/// Exceeding the retry cap must abort cleanly, not deadlock: the world
/// loop exits with `Failed` and the harness-visible reason.
#[test]
fn retry_cap_fails_closed() {
    let mut cfg = common::scenario(FabricModel::SerialFifo);
    cfg.faults = Some(FaultPlan {
        loss_rate: 0.9,
        recovery: RecoveryPolicy {
            timeout_us: 100,
            max_retries: 1,
        },
        ..FaultPlan::empty()
    });
    let r = run(&cfg);
    assert!(
        matches!(r.outcome, RunOutcome::Failed { .. }),
        "{:?}",
        r.outcome
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under any small loss rate and any seed, a PS run with retries
    /// completes (a credit-deficit leak would deadlock it; a surplus
    /// leak trips the scheduler's debug assertions, active here), every
    /// dropped byte is reclaimed exactly once, and the credit-in-use
    /// level stays within the configured window on every lane.
    #[test]
    fn random_loss_never_leaks_credit_on_ps(
        loss in 0.001f64..0.05,
        seed in 0u64..1_000,
        timeout_us in 200u64..5_000,
    ) {
        let mut cfg = common::scenario(FabricModel::SerialFifo);
        cfg.seed = seed;
        cfg.record_metrics = true;
        cfg.faults = Some(FaultPlan {
            loss_rate: loss,
            recovery: RecoveryPolicy { timeout_us, max_retries: 30 },
            ..FaultPlan::empty()
        });
        let r = run(&cfg);
        prop_assert!(
            !matches!(r.outcome, RunOutcome::Failed { .. }),
            "outcome {:?}", r.outcome
        );
        prop_assert!(r.speed > 0.0);
        let ms = r.metrics.as_ref().expect("metrics recorded");
        for w in 0..cfg.num_workers {
            for lane in 0..2 {
                let name = format!("worker{w}/sched/lane{lane}/credit_in_use");
                let s = ms.get_series(&name).expect("credit series");
                let last = s.last_value();
                prop_assert!(
                    (0.0..=4_000_000.0).contains(&last),
                    "{}: {} outside the credit window", name, last
                );
            }
        }
        prop_assert_eq!(
            ms.get_counter("faults/reclaimed_bytes"),
            ms.get_counter("faults/dropped_bytes")
        );
    }

    /// Ring all-reduce under random loss: every lost collective is
    /// re-driven and the run completes on both the fused-baseline and
    /// scheduled graphs.
    #[test]
    fn random_loss_recovers_on_ring(
        loss in 0.01f64..0.2,
        seed in 0u64..1_000,
        scheduled in any::<bool>(),
    ) {
        use bytescheduler::engine::EngineConfig;
        use bytescheduler::models::{GpuSpec, ModelBuilder, SampleUnit};
        use bytescheduler::net::{NetConfig, Transport};
        use bytescheduler::runtime::Arch;
        use bytescheduler::sim::SimTime;

        let gpu = GpuSpec::custom(1e12, 2.0);
        let model = ModelBuilder::new("ring-toy", gpu, 8, SampleUnit::Images)
            .explicit("l0", 12_000_000, SimTime::from_millis(2), SimTime::from_millis(4))
            .explicit("l1", 3_000_000, SimTime::from_millis(2), SimTime::from_millis(4))
            .build();
        let sched = if scheduled {
            SchedulerKind::ByteScheduler { partition: 4_000_000, credit: 8_000_000 }
        } else {
            SchedulerKind::Baseline
        };
        let mut cfg = WorldConfig::new(
            model,
            3,
            Arch::allreduce(),
            NetConfig::gbps(10.0, Transport::tcp()),
            EngineConfig::mxnet_allreduce(),
            sched,
        );
        cfg.iters = 6;
        cfg.warmup = 1;
        cfg.jitter = 0.0;
        cfg.seed = seed;
        cfg.faults = Some(FaultPlan {
            loss_rate: loss,
            recovery: RecoveryPolicy { timeout_us: 500, max_retries: 30 },
            ..FaultPlan::empty()
        });
        let r = run(&cfg);
        prop_assert!(
            !matches!(r.outcome, RunOutcome::Failed { .. }),
            "outcome {:?}", r.outcome
        );
        prop_assert!(r.collective_bytes > 0);
    }
}
