//! Long-run boundedness of the fluid fabric's flow table.
//!
//! `FluidNetwork` recycles flow slots through a free list, so the slot
//! table must stay bounded by the *peak concurrency* of the workload —
//! not grow with the total number of transfers ever carried. Before the
//! PR-1 refactor every submission appended a fresh slot, which made
//! `reallocate()`'s per-call scratch scale with simulation length.

use bytescheduler::net::{FluidNetwork, NetConfig, NodeId, Transport};
use bytescheduler::sim::SimTime;

fn net(nodes: usize) -> FluidNetwork {
    FluidNetwork::new(nodes, NetConfig::gbps(8.0, Transport::ideal()))
}

/// Runs the fabric until silent, returning the last delivery time.
fn drain(n: &mut FluidNetwork) -> SimTime {
    let mut last = SimTime::ZERO;
    loop {
        let t = n.next_event_time();
        if t.is_never() {
            return last;
        }
        n.advance(t);
        last = t;
    }
}

#[test]
fn sequential_transfers_reuse_one_slot() {
    let mut n = net(2);
    let mut now = SimTime::ZERO;
    for i in 0..12_000u64 {
        n.submit(now, NodeId(0), NodeId(1), 1_000_000, i);
        now = drain(&mut n);
    }
    assert_eq!(n.transfers_delivered(), 12_000);
    assert_eq!(n.peak_in_flight(), 1);
    assert_eq!(
        n.flow_slots(),
        1,
        "12k sequential transfers must recycle a single slot"
    );
}

#[test]
fn flow_table_is_bounded_by_peak_concurrency() {
    // Waves of 16 concurrent flows, 200 rounds: 3 200 transfers total,
    // but never more than 16 at once.
    let mut n = net(17);
    let mut now = SimTime::ZERO;
    for round in 0..200u64 {
        for w in 0..16u64 {
            n.submit(now, NodeId(w as usize), NodeId(16), 500_000, round * 16 + w);
        }
        now = drain(&mut n);
    }
    assert_eq!(n.transfers_delivered(), 3_200);
    assert_eq!(n.peak_in_flight(), 16);
    assert!(
        n.flow_slots() <= n.peak_in_flight(),
        "flow table ({} slots) must not exceed peak concurrency ({})",
        n.flow_slots(),
        n.peak_in_flight()
    );
}

#[test]
fn staggered_churn_stays_bounded() {
    // Keep a rolling window in flight: submit two flows, drain to the
    // next event (not to silence), submit two more, and so on. The slot
    // table must track the high-water mark, not the running total.
    let mut n = net(6);
    let mut now = SimTime::ZERO;
    for i in 0..5_000u64 {
        let src = (i % 4) as usize;
        n.submit(now, NodeId(src), NodeId(5), 200_000, 2 * i);
        n.submit(now, NodeId(src), NodeId(4), 200_000, 2 * i + 1);
        // Drain down to a rolling window of 8 before the next burst.
        while n.in_flight() >= 8 {
            let next = n.next_event_time();
            n.advance(next);
            now = next;
        }
    }
    drain(&mut n);
    assert_eq!(n.transfers_delivered(), 10_000);
    assert!(
        n.flow_slots() <= n.peak_in_flight(),
        "flow table ({} slots) grew past peak concurrency ({})",
        n.flow_slots(),
        n.peak_in_flight()
    );
    assert!(
        n.peak_in_flight() <= 10,
        "windowed workload should stay near the window size, not the 10k total"
    );
}
