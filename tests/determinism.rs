//! Reproducibility guarantees: every experiment in this repository is a
//! pure function of its configuration and seed.

use bytescheduler::harness::{Fidelity, Setup};
use bytescheduler::models::zoo;
use bytescheduler::runtime::{run, SchedulerKind};

fn speeds(setup: Setup, seed: u64, sched: SchedulerKind) -> (f64, Vec<f64>) {
    let fid = Fidelity::quick();
    let mut cfg = setup.config(zoo::resnet50(), 16, 25.0, sched);
    fid.apply(&mut cfg);
    cfg.seed = seed;
    let r = run(&cfg);
    (r.speed, r.iter_times)
}

#[test]
fn identical_seeds_give_bitwise_identical_results() {
    for setup in Setup::all() {
        let sched = SchedulerKind::ByteScheduler {
            partition: 4 << 20,
            credit: 16 << 20,
        };
        let (s1, t1) = speeds(setup, 5, sched);
        let (s2, t2) = speeds(setup, 5, sched);
        assert_eq!(s1, s2, "{}", setup.label());
        assert_eq!(t1, t2, "{}", setup.label());
    }
}

#[test]
fn different_seeds_jitter_the_measurement() {
    let sched = SchedulerKind::Baseline;
    let (s1, _) = speeds(Setup::MxnetPsRdma, 1, sched);
    let (s2, _) = speeds(Setup::MxnetPsRdma, 2, sched);
    assert_ne!(s1, s2, "jitter must depend on the seed");
    // ... but only slightly: it is measurement noise, not chaos.
    assert!((s1 - s2).abs() / s1 < 0.05);
}

#[test]
fn zero_jitter_removes_all_randomness() {
    let fid = Fidelity::quick();
    let mut cfg = Setup::MxnetPsTcp.config(zoo::resnet50(), 16, 25.0, SchedulerKind::Baseline);
    fid.apply(&mut cfg);
    cfg.jitter = 0.0;
    cfg.seed = 1;
    let a = run(&cfg).speed;
    cfg.seed = 999;
    let b = run(&cfg).speed;
    assert_eq!(a, b, "with jitter off, the seed must not matter");
}
