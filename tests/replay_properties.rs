//! Property tests for the JCT-percentile math behind the replay layer's
//! distribution summaries.
//!
//! [`percentile_nearest_rank`] is exact by construction (the result is
//! always an input element), so the properties are sharp, not
//! approximate: element membership, monotonicity in `p`, the
//! p50 ≤ p95 ≤ p99 ≤ max ordering of every [`DistSummary`], and
//! agreement with a brute-force count-based definition of nearest rank.

use bs_cluster::{percentile_nearest_rank, DistSummary};
use proptest::prelude::*;

/// Brute-force nearest rank: the smallest element with at least
/// ⌈p/100·n⌉ elements ≤ it (counting from the sorted order).
fn brute_force(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil().clamp(1.0, n as f64) as usize;
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn percentile_is_an_element_and_matches_brute_force(
        xs in proptest::collection::vec(0u32..10_000, 1..200),
        p in 0.0f64..100.0,
    ) {
        let mut xs = xs;
        xs.sort_unstable();
        let sorted: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        let got = percentile_nearest_rank(&sorted, p);
        prop_assert!(
            sorted.contains(&got),
            "percentile must be an input element, got {got}"
        );
        prop_assert_eq!(got, brute_force(&sorted, p));
    }

    #[test]
    fn percentile_is_monotone_in_p(
        xs in proptest::collection::vec(0u32..10_000, 1..200),
        p_lo in 0.0f64..100.0,
        p_hi in 0.0f64..100.0,
    ) {
        let mut xs = xs;
        xs.sort_unstable();
        let sorted: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        let (lo, hi) = if p_lo <= p_hi { (p_lo, p_hi) } else { (p_hi, p_lo) };
        prop_assert!(
            percentile_nearest_rank(&sorted, lo) <= percentile_nearest_rank(&sorted, hi),
            "p{lo} must not exceed p{hi}"
        );
    }

    #[test]
    fn summary_tail_ordering_holds_for_any_sample(
        xs in proptest::collection::vec(0u32..1_000_000, 1..300),
    ) {
        let samples: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        let s = DistSummary::from_unsorted(samples.clone());
        prop_assert_eq!(s.n, samples.len());
        prop_assert!(s.p50 <= s.p95, "p50 {} > p95 {}", s.p50, s.p95);
        prop_assert!(s.p95 <= s.p99, "p95 {} > p99 {}", s.p95, s.p99);
        prop_assert!(s.p99 <= s.max, "p99 {} > max {}", s.p99, s.max);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.max, hi);
        prop_assert!(s.mean >= lo && s.mean <= hi, "mean {} outside [{lo}, {hi}]", s.mean);
        // Every reported percentile is a sample.
        for v in [s.p50, s.p95, s.p99, s.max] {
            prop_assert!(samples.contains(&v), "{v} is not a sample");
        }
    }

    /// Duplicating every sample never changes any percentile: nearest
    /// rank depends on order statistics, not multiplicity scaling.
    #[test]
    fn percentiles_are_invariant_under_duplication(
        xs in proptest::collection::vec(0u32..10_000, 1..100),
    ) {
        let once: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        let mut twice = once.clone();
        twice.extend_from_slice(&once);
        let a = DistSummary::from_unsorted(once);
        let b = DistSummary::from_unsorted(twice);
        prop_assert_eq!(a.p50, b.p50);
        prop_assert_eq!(a.p95, b.p95);
        prop_assert_eq!(a.p99, b.p99);
        prop_assert_eq!(a.max, b.max);
    }
}
