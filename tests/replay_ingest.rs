//! Trace-ingestion contract tests:
//!
//! 1. Both committed fixtures (`philly_day.json`, `pai_day.csv`)
//!    validate against their committed schemas, and the schemas the
//!    crate embeds at compile time are byte-identical to the committed
//!    files (one source of truth).
//! 2. Normalization round-trips: load → serialize → parse ⇒ the same
//!    jobs, on both dialects.
//! 3. Malformed input is rejected row-by-row with a message naming the
//!    violation, never a panic.
//! 4. Replay is deterministic — the same trace and seed serialize to
//!    byte-identical reports — and the truncated-fixture JCT summary is
//!    pinned to a committed golden file, so refactors of the wave
//!    scheduler can prove they preserved behaviour. Regenerate after an
//!    intentional change with `BS_UPDATE_GOLDEN=1 cargo test --test
//!    replay_ingest` and review the diff.

mod common;

use bs_replay::trace::{jobs_from_value, jobs_to_value, PAI_HEADER, PAI_SCHEMA, PHILLY_SCHEMA};
use bs_replay::{load_trace, replay_trace, ReplayOptions, TraceFormat};
use common::schema::{committed, validate};
use serde::Serialize;
use serde_json::Value;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/traces")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
}

fn quick_opts() -> ReplayOptions {
    ReplayOptions {
        iters_cap: 3,
        truncate: Some(8),
        ..ReplayOptions::default()
    }
}

#[test]
fn embedded_schemas_match_the_committed_files() {
    let read = |name: &str| {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("results")
            .join(name);
        std::fs::read_to_string(path).expect("committed schema readable")
    };
    assert_eq!(PHILLY_SCHEMA, read("trace_philly.schema.json"));
    assert_eq!(PAI_SCHEMA, read("trace_pai.schema.json"));
}

#[test]
fn philly_fixture_validates_against_the_committed_schema() {
    let doc: Value = serde_json::from_str(&fixture("philly_day.json")).expect("fixture parses");
    let schema = committed("trace_philly.schema.json");
    let mut errs = Vec::new();
    validate(&schema, &doc, "$", &mut errs);
    assert!(errs.is_empty(), "fixture violates schema: {errs:?}");
}

#[test]
fn pai_fixture_rows_validate_against_the_committed_schema() {
    let text = fixture("pai_day.csv");
    let schema = committed("trace_pai.schema.json");
    let mut rows = 0;
    for line in text.lines().skip(1).filter(|l| !l.trim().is_empty()) {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 5, "fixture row malformed: {line}");
        let parsed = Value::Object(vec![
            ("job_name".into(), Value::Str(cols[0].into())),
            ("submit_time".into(), Value::F64(cols[1].parse().unwrap())),
            ("end_time".into(), Value::F64(cols[2].parse().unwrap())),
            ("plan_gpu".into(), Value::F64(cols[3].parse().unwrap())),
            ("status".into(), Value::Str(cols[4].into())),
        ]);
        let mut errs = Vec::new();
        validate(&schema, &parsed, "$", &mut errs);
        assert!(errs.is_empty(), "row {line:?} violates schema: {errs:?}");
        rows += 1;
    }
    assert!(
        rows >= 16,
        "fixture should carry a real job mix, got {rows}"
    );
}

#[test]
fn both_dialects_round_trip_through_the_normalized_form() {
    for (name, format) in [
        ("philly_day.json", TraceFormat::PhillyJson),
        ("pai_day.csv", TraceFormat::PaiCsv),
    ] {
        let jobs = load_trace(&fixture(name), format).expect("fixture loads");
        assert!(jobs.len() >= 16, "{name}: expected a real mix");
        let rendered = jobs_to_value(&jobs);
        // Through actual JSON text, not just the Value tree.
        let text = serde_json::to_string(&rendered).expect("serializes");
        let reparsed: Value = serde_json::from_str(&text).expect("parses back");
        let back = jobs_from_value(&reparsed).expect("normalized form parses");
        assert_eq!(jobs, back, "{name}: round trip changed the jobs");
    }
}

#[test]
fn malformed_philly_rows_are_rejected_with_row_messages() {
    let cases = [
        // Missing a required field.
        (
            r#"{"schema_version": 1, "jobs": [{"jobid": "j", "vc": "v", "submitted_time": 0, "duration": 10, "status": "Pass"}]}"#,
            "gpus",
        ),
        // Wrong type.
        (
            r#"{"schema_version": 1, "jobs": [{"jobid": "j", "vc": "v", "submitted_time": "late", "gpus": 1, "duration": 10, "status": "Pass"}]}"#,
            "submitted_time",
        ),
        // Status outside the enum.
        (
            r#"{"schema_version": 1, "jobs": [{"jobid": "j", "vc": "v", "submitted_time": 0, "gpus": 1, "duration": 10, "status": "Sleeping"}]}"#,
            "enum",
        ),
        // Zero GPUs (minimum 1).
        (
            r#"{"schema_version": 1, "jobs": [{"jobid": "j", "vc": "v", "submitted_time": 0, "gpus": 0, "duration": 10, "status": "Pass"}]}"#,
            "minimum",
        ),
        // Unknown extra property.
        (
            r#"{"schema_version": 1, "jobs": [{"jobid": "j", "vc": "v", "submitted_time": 0, "gpus": 1, "duration": 10, "status": "Pass", "surprise": 1}]}"#,
            "surprise",
        ),
        // Zero duration (exclusiveMinimum 0).
        (
            r#"{"schema_version": 1, "jobs": [{"jobid": "j", "vc": "v", "submitted_time": 0, "gpus": 1, "duration": 0, "status": "Pass"}]}"#,
            "exclusiveMinimum",
        ),
    ];
    for (text, needle) in cases {
        let err = load_trace(text, TraceFormat::PhillyJson)
            .expect_err("malformed trace must be rejected");
        assert!(
            err.contains(needle),
            "error {err:?} should mention {needle:?}"
        );
    }
    // An empty jobs array is schema-valid but unreplayable.
    let err = load_trace(
        r#"{"schema_version": 1, "jobs": []}"#,
        TraceFormat::PhillyJson,
    )
    .expect_err("empty trace rejected");
    assert!(err.contains("no jobs"), "{err:?}");
}

#[test]
fn malformed_pai_rows_are_rejected_with_row_numbers() {
    let bad =
        format!("{PAI_HEADER}\npai_ok,0.0,700.0,100,Terminated\npai_bad,5.0,nine,100,Terminated\n");
    let err = load_trace(&bad, TraceFormat::PaiCsv).expect_err("bad number rejected");
    assert!(err.contains("row 3"), "error should name the row: {err:?}");
}

#[test]
fn same_trace_and_seed_replay_to_byte_identical_reports() {
    for (name, format) in [
        ("philly_day.json", TraceFormat::PhillyJson),
        ("pai_day.csv", TraceFormat::PaiCsv),
    ] {
        let jobs = load_trace(&fixture(name), format).expect("fixture loads");
        let opts = quick_opts();
        let a = serde_json::to_string(&replay_trace(&jobs, &opts)).expect("serializes");
        let b = serde_json::to_string(&replay_trace(&jobs, &opts)).expect("serializes");
        assert_eq!(a, b, "{name}: replay must be deterministic");
    }
}

#[test]
fn truncated_replay_jct_summary_matches_the_golden_fixture() {
    let jobs =
        load_trace(&fixture("philly_day.json"), TraceFormat::PhillyJson).expect("fixture loads");
    let r = replay_trace(&jobs, &quick_opts());
    let doc = Value::Object(vec![
        ("jobs".into(), Value::U64(r.jobs.len() as u64)),
        ("waves".into(), Value::U64(r.waves as u64)),
        ("jct".into(), r.jct.to_value()),
        ("queueing".into(), r.queueing.to_value()),
        ("run".into(), r.run.to_value()),
        ("makespan_secs".into(), Value::F64(r.makespan_secs)),
        ("fabric_events".into(), Value::U64(r.fabric_events)),
    ]);
    let actual = serde_json::to_string_pretty(&doc).expect("serializes") + "\n";
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_replay.json");
    if std::env::var("BS_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &actual).expect("write fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BS_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "replay JCT summary diverged from the golden fixture; if the \
         behaviour change is intentional, regenerate with BS_UPDATE_GOLDEN=1 \
         and review the diff"
    );
}
