//! Cross-crate checks of the paper's §4 theory against the running system.
//!
//! Theorem 1 says priority queuing is optimal under ideal conditions
//! (tiny partitions, zero overhead, free preemption); §4.1 bounds the gap
//! for real δ and θ. These tests drive the *full* simulation — engines,
//! PS/ring, network, scheduler — and compare measured iteration periods
//! against the analytical expressions.

use bytescheduler::core::analysis;
use bytescheduler::engine::EngineConfig;
use bytescheduler::models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bytescheduler::net::{NetConfig, Transport};
use bytescheduler::runtime::{run, Arch, SchedulerKind, WorldConfig};
use bytescheduler::sim::SimTime;

/// A 4-layer test model with the communication-hostile shape: big tensor
/// near the input.
fn model() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("bound-test", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            24_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "l1",
            8_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "l2",
            4_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "l3",
            2_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .build()
}

/// Single worker + single shard: the §4.1 analysis is per-flow and
/// assumes the scheduled sender is alone on its resources. (With several
/// symmetric workers, aligned priority schedules collide on the same
/// shard and the serial-FIFO fabric adds head-of-line waits the bound
/// does not model — see DESIGN.md §Deviations.)
fn cfg(transport: Transport, sched: SchedulerKind) -> WorldConfig {
    let mut c = WorldConfig::new(
        model(),
        1,
        Arch::ps(1),
        NetConfig::gbps(8.0, transport),
        EngineConfig::mxnet_ps(),
        sched,
    );
    c.iters = 12;
    c.warmup = 2;
    c.jitter = 0.0;
    c
}

fn period(c: &WorldConfig) -> f64 {
    run(c).iteration_period
}

/// The Theorem 1 regime: ideal transport (θ = 0), partitions far smaller
/// than any tensor. The measured iteration period must respect the
/// universal lower bound, and sit close to it (the priority schedule is
/// supposed to be *optimal* here).
#[test]
fn priority_schedule_approaches_the_ideal_lower_bound() {
    let sched = SchedulerKind::ByteScheduler {
        partition: 256 * 1024,
        credit: 1024 * 1024,
    };
    let c = cfg(Transport::ideal(), sched);
    let measured = period(&c);
    let m = model();
    let sizes: Vec<u64> = m.layers.iter().map(|l| l.param_bytes).collect();
    let fp: Vec<_> = m.layers.iter().map(|l| l.fp_time).collect();
    let bp: Vec<_> = m.layers.iter().map(|l| l.bp_time).collect();
    let lb = analysis::iteration_lower_bound(
        m.compute_time(),
        m.total_param_bytes(),
        c.net.bytes_per_sec(),
    )
    .max(analysis::ps_cycle_lower_bound(
        &sizes,
        &fp,
        &bp,
        c.net.bytes_per_sec(),
    ))
    .as_secs_f64();
    assert!(
        measured >= lb * 0.999,
        "measured {measured} below the lower bound {lb}: impossible schedule"
    );
    assert!(
        measured <= lb * 1.10,
        "measured {measured} too far above the ideal bound {lb}: priority \
         scheduling should be near-optimal under Theorem 1's conditions"
    );
}

/// §4.1's delay bound: a real configuration (finite δ, TCP θ) may exceed
/// the ideal-schedule period by at most the analytical bound.
#[test]
fn finite_partition_gap_respects_the_analysis_bound() {
    // Ideal reference: near-zero overhead, tiny partitions.
    let ideal = period(&cfg(
        Transport::ideal(),
        SchedulerKind::ByteScheduler {
            partition: 256 * 1024,
            credit: 1024 * 1024,
        },
    ));
    for delta in [1u64 << 20, 4 << 20, 16 << 20] {
        let real = period(&cfg(
            Transport::tcp(),
            SchedulerKind::ByteScheduler {
                partition: delta,
                credit: 4 * delta,
            },
        ));
        let m = model();
        let sizes: Vec<u64> = m.layers.iter().map(|l| l.param_bytes).collect();
        let tcp_cfg = NetConfig::gbps(8.0, Transport::tcp());
        let bound = analysis::ps_delay_bound(
            &sizes,
            delta,
            Transport::tcp().total_overhead(),
            tcp_cfg.bytes_per_sec(),
        )
        .as_secs_f64();
        // The TCP run also loses the efficiency factor on the wire;
        // account for it by scaling the ideal reference's comm share
        // conservatively (push + pull directions): compare against
        // ideal + bound + efficiency slack.
        let eff_slack = 2.0
            * m.total_param_bytes() as f64
            * (1.0 / tcp_cfg.bytes_per_sec() - 1.0 / (8.0e9 / 8.0));
        assert!(
            real <= ideal + bound + eff_slack + 1e-4,
            "δ={delta}: measured gap {} exceeds analytical bound {}",
            real - ideal,
            bound + eff_slack
        );
    }
}

/// The priority schedule must beat (or match) the FIFO schedule in the
/// ideal regime too — optimality is about *all* schedules, FIFO included.
#[test]
fn priority_beats_fifo_in_the_ideal_regime() {
    let bs = period(&cfg(
        Transport::ideal(),
        SchedulerKind::ByteScheduler {
            partition: 512 * 1024,
            credit: 2 << 20,
        },
    ));
    let fifo = period(&cfg(Transport::ideal(), SchedulerKind::Baseline));
    assert!(
        bs <= fifo * 1.001,
        "priority ({bs}) must not lose to FIFO ({fifo})"
    );
}

/// Smaller partitions shrink the gap to ideal (until θ dominates):
/// the paper's "the smaller the partition is, the closer it is to the
/// ideal case", checked in the low-θ RDMA regime.
#[test]
fn smaller_partitions_track_the_ideal_more_closely() {
    let p = |delta: u64| {
        period(&cfg(
            Transport::rdma(),
            SchedulerKind::ByteScheduler {
                partition: delta,
                credit: 4 * delta,
            },
        ))
    };
    let small = p(1 << 20);
    let large = p(24 << 20);
    assert!(
        small <= large * 1.001,
        "1 MB partitions ({small}) should beat 24 MB partitions ({large})"
    );
}

/// Theorem 1 by exhaustion: among **all 24 priority permutations** of a
/// 4-layer model in the ideal regime, the paper's assignment (priority =
/// layer index, layer 0 most urgent) minimises the iteration period.
/// This is the strongest executable form of the optimality claim: not
/// "beats FIFO", but "beats every other static priority order".
#[test]
fn canonical_priorities_are_optimal_among_all_permutations() {
    fn permutations(items: Vec<u64>) -> Vec<Vec<u64>> {
        if items.len() <= 1 {
            return vec![items];
        }
        let mut out = Vec::new();
        for i in 0..items.len() {
            let mut rest = items.clone();
            let head = rest.remove(i);
            for mut tail in permutations(rest) {
                tail.insert(0, head);
                out.push(tail);
            }
        }
        out
    }

    let sched = SchedulerKind::ByteScheduler {
        partition: 256 * 1024,
        credit: 1024 * 1024,
    };
    let mut best = f64::MAX;
    let mut canonical = f64::MAX;
    for perm in permutations(vec![0, 1, 2, 3]) {
        let mut c = cfg(Transport::ideal(), sched);
        let is_canonical = perm == vec![0, 1, 2, 3];
        c.priority_override = Some(perm);
        let p = period(&c);
        best = best.min(p);
        if is_canonical {
            canonical = p;
        }
    }
    assert!(
        canonical <= best * 1.001,
        "canonical priority order ({canonical}) must match the best permutation ({best})"
    );
}

/// All-reduce delay bound, same exercise on the ring.
#[test]
fn allreduce_gap_respects_the_analysis_bound() {
    let ring_cfg = |transport: Transport, sched: SchedulerKind| {
        let mut c = WorldConfig::new(
            model(),
            4,
            Arch::AllReduce {
                baseline_fusion_bytes: None,
                baseline_cycle_delay_us: 0,
            },
            NetConfig::gbps(8.0, transport),
            EngineConfig::mxnet_allreduce(),
            sched,
        );
        c.iters = 12;
        c.warmup = 2;
        c.jitter = 0.0;
        c
    };
    let ideal = period(&ring_cfg(
        Transport::ideal(),
        SchedulerKind::ByteScheduler {
            partition: 512 * 1024,
            credit: 2 << 20,
        },
    ));
    let delta = 4u64 << 20;
    let real = period(&ring_cfg(
        Transport::rdma(),
        SchedulerKind::ByteScheduler {
            partition: delta,
            credit: 4 * delta,
        },
    ));
    let m = model();
    let sizes: Vec<u64> = m.layers.iter().map(|l| l.param_bytes).collect();
    let rdma = NetConfig::gbps(8.0, Transport::rdma());
    // The ring's per-op cost includes the collective sync; bound θ by the
    // full sync overhead of the 4-rank ring.
    let ring = bytescheduler::comm::AllReduceConfig::new(4, rdma);
    let bound =
        analysis::allreduce_delay_bound(&sizes, delta, ring.sync_overhead(), rdma.bytes_per_sec())
            .as_secs_f64();
    let eff_slack =
        2.0 * m.total_param_bytes() as f64 * (1.0 / rdma.bytes_per_sec() - 1.0 / (8.0e9 / 8.0));
    assert!(
        real <= ideal + bound + eff_slack + 1e-4,
        "all-reduce gap {} exceeds bound {}",
        real - ideal,
        bound + eff_slack
    );
}
