//! Golden-trace equivalence: the simulator's per-seed output is pinned to
//! a committed fixture, so performance refactors of the event loop and
//! fabrics can prove they are *behaviour-preserving*, not just fast.
//!
//! The fixture (`tests/fixtures/golden_comm_heavy.json`) was captured
//! before the PR-1 fluid/world optimisation work. Every run since must
//! reproduce it bit-for-bit: floats are rendered with Rust's
//! shortest-round-trip formatting, so string equality is bit equality.
//!
//! To regenerate after an *intentional* model change (one that is
//! expected to alter simulated behaviour):
//!
//! ```text
//! BS_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and review the fixture diff like any other behavioural change.

use bs_engine::EngineConfig;
use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::{run, Arch, RunResult, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use serde_json::Value;

/// The comm-heavy toy shared with the runtime tests and the perf runner:
/// a big first tensor so scheduling order matters.
fn comm_heavy() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            40_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l1",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l2",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l3",
            1_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .build()
}

fn scenario(fabric: FabricModel) -> WorldConfig {
    let mut c = WorldConfig::new(
        comm_heavy(),
        2,
        Arch::ps(2),
        NetConfig::gbps(10.0, Transport::tcp()),
        EngineConfig::mxnet_ps(),
        SchedulerKind::ByteScheduler {
            partition: 1_000_000,
            credit: 4_000_000,
        },
    );
    c.fabric = fabric;
    c.iters = 8;
    c.warmup = 2;
    // Non-zero jitter so the fixture also pins the RNG stream.
    c.jitter = 0.02;
    c.seed = 7;
    c
}

/// The determinism-relevant surface of a run, rendered to JSON. Includes
/// every quantity a fabric or event-loop change could disturb: virtual
/// end time in nanoseconds, the full per-iteration timing vector, byte
/// and event counts.
fn fingerprint(label: &str, r: &RunResult) -> Value {
    let fields = vec![
        ("scenario".to_string(), Value::Str(label.to_string())),
        ("scheduler".to_string(), Value::Str(r.scheduler.to_string())),
        (
            "finished_at_ns".to_string(),
            Value::U64(r.finished_at.as_nanos()),
        ),
        (
            "iter_times".to_string(),
            Value::Array(r.iter_times.iter().map(|t| Value::F64(*t)).collect()),
        ),
        ("speed".to_string(), Value::F64(r.speed)),
        ("p2p_bytes".to_string(), Value::U64(r.p2p_bytes)),
        ("comm_events".to_string(), Value::U64(r.comm_events)),
        (
            "peak_in_flight".to_string(),
            Value::U64(r.peak_in_flight as u64),
        ),
    ];
    Value::Object(fields)
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_comm_heavy.json")
}

fn render() -> String {
    let fifo = run(&scenario(FabricModel::SerialFifo));
    let fluid = run(&scenario(FabricModel::FairShare));
    let doc = Value::Array(vec![
        fingerprint("comm_heavy_ps_fifo", &fifo),
        fingerprint("comm_heavy_ps_fluid", &fluid),
    ]);
    serde_json::to_string_pretty(&doc).expect("render fingerprint") + "\n"
}

#[test]
fn matches_committed_fixture_on_both_fabrics() {
    let actual = render();
    let path = fixture_path();
    if std::env::var("BS_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &actual).expect("write fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BS_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "simulation output diverged from the golden fixture; if the \
         behaviour change is intentional, regenerate with BS_UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// Same scenario run twice in-process must agree exactly — catches
/// hidden global state (the golden fixture alone can't, since both runs
/// would drift together).
#[test]
fn repeated_runs_are_bit_identical() {
    let a = render();
    let b = render();
    assert_eq!(a, b);
}
