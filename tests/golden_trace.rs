//! Golden-trace equivalence: the simulator's per-seed output is pinned to
//! a committed fixture, so performance refactors of the event loop and
//! fabrics can prove they are *behaviour-preserving*, not just fast.
//!
//! The fixture (`tests/fixtures/golden_comm_heavy.json`) was captured
//! before the PR-1 fluid/world optimisation work. Every run since must
//! reproduce it bit-for-bit: floats are rendered with Rust's
//! shortest-round-trip formatting, so string equality is bit equality.
//! The scenario and fingerprint live in `tests/common/mod.rs`, shared
//! with `metrics_schema.rs` (which re-pins the fixture with telemetry
//! recording turned on).
//!
//! To regenerate after an *intentional* model change (one that is
//! expected to alter simulated behaviour):
//!
//! ```text
//! BS_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and review the fixture diff like any other behavioural change.

#[allow(dead_code)]
mod common;

use common::{fixture_path, render};

#[test]
fn matches_committed_fixture_on_both_fabrics() {
    let actual = render(false);
    let path = fixture_path();
    if std::env::var("BS_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &actual).expect("write fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BS_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "simulation output diverged from the golden fixture; if the \
         behaviour change is intentional, regenerate with BS_UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// Same scenario run twice in-process must agree exactly — catches
/// hidden global state (the golden fixture alone can't, since both runs
/// would drift together).
#[test]
fn repeated_runs_are_bit_identical() {
    let a = render(false);
    let b = render(false);
    assert_eq!(a, b);
}
