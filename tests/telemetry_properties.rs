//! Property tests for the telemetry layer: the recorded per-port
//! utilisation series must account for every byte the fabric moved.
//!
//! With an ideal transport (no per-message wire overhead), a port that is
//! busy for `T` seconds at capacity `C` bytes/sec moves exactly `T·C`
//! bytes — so for *any* workload, on *both* fabric disciplines,
//! `∫ util dt × capacity` per port must equal the bytes that crossed it:
//! exactly for the FIFO fabric's 0/1 busy series, and up to f64 rate
//! accumulation for the fluid fabric's allocated-rate fraction.

use bytescheduler::net::{Fabric, FabricModel, NetConfig, NetEvent, NodeId, Transport};
use bytescheduler::sim::SimTime;
use bytescheduler::telemetry::MetricSet;
use proptest::prelude::*;

const NODES: usize = 5;

/// Runs a workload to completion with telemetry on; returns the closed
/// metrics and per-node (sent, received) byte totals.
fn run_workload(
    model: FabricModel,
    flows: &[(usize, usize, u64, u64)],
) -> (MetricSet, [u64; NODES], [u64; NODES]) {
    let cfg = NetConfig::gbps(8.0, Transport::ideal()); // 1e9 B/s
    let mut fabric = Fabric::new(model, NODES, cfg);
    fabric.enable_telemetry(SimTime::ZERO);
    let mut sent = [0u64; NODES];
    let mut recv = [0u64; NODES];
    let mut events: Vec<NetEvent> = Vec::new();
    let mut end = SimTime::ZERO;

    // Submissions in time order (the fabrics expect a monotone clock).
    let mut flows: Vec<_> = flows.to_vec();
    flows.sort_by_key(|&(_, _, _, start_us)| start_us);
    for (i, &(src, dst, bytes, start_us)) in flows.iter().enumerate() {
        if src == dst {
            continue;
        }
        let at = SimTime::from_micros(start_us);
        while fabric.next_event_time() <= at && !fabric.next_event_time().is_never() {
            let t = fabric.next_event_time();
            fabric.advance_into(t, &mut events);
            events.clear();
            end = end.max(t);
        }
        fabric.submit(at, NodeId(src), NodeId(dst), bytes, i as u64);
        sent[src] += bytes;
        recv[dst] += bytes;
        end = end.max(at);
    }
    let mut guard = 0;
    loop {
        let t = fabric.next_event_time();
        if t.is_never() {
            break;
        }
        fabric.advance_into(t, &mut events);
        events.clear();
        end = end.max(t);
        guard += 1;
        assert!(guard < 2_000_000, "fabric did not drain");
    }
    let ms = fabric.take_metrics(end).expect("telemetry enabled");
    (ms, sent, recv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `∫ util dt × capacity == bytes through the port`, per port and
    /// direction, on both fabric disciplines, for any workload.
    #[test]
    fn utilisation_integrals_account_for_every_byte(
        flows in proptest::collection::vec(
            (0usize..NODES, 0usize..NODES, 1u64..10_000_000, 0u64..3_000), 1..24),
    ) {
        let cap = NetConfig::gbps(8.0, Transport::ideal()).bytes_per_sec();
        for model in [FabricModel::SerialFifo, FabricModel::FairShare] {
            let (ms, sent, recv) = run_workload(model, &flows);
            for n in 0..NODES {
                let horizon = ms.horizon;
                let up = ms
                    .get_series(&format!("nic{n}/up_util"))
                    .expect("up series")
                    .integral_secs(horizon) * cap;
                let down = ms
                    .get_series(&format!("nic{n}/down_util"))
                    .expect("down series")
                    .integral_secs(horizon) * cap;
                // Tolerance: one SimTime tick of quantisation per busy
                // segment (≤ 1 byte at this capacity), plus f64 rate
                // accumulation on the fluid fabric.
                let tol = 8.0 + 1e-6 * sent[n] as f64;
                prop_assert!(
                    (up - sent[n] as f64).abs() <= tol,
                    "{model:?} nic{n} up: ∫util·C = {up:.1}, sent {}",
                    sent[n]
                );
                let tol = 8.0 + 1e-6 * recv[n] as f64;
                prop_assert!(
                    (down - recv[n] as f64).abs() <= tol,
                    "{model:?} nic{n} down: ∫util·C = {down:.1}, received {}",
                    recv[n]
                );
            }
            // And the fabric's own byte counter agrees with the series.
            let delivered: u64 = sent.iter().sum();
            prop_assert_eq!(ms.get_counter("bytes_delivered"), Some(delivered));
        }
    }
}
