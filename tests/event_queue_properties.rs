//! Property-style tests for `bs_sim::EventQueue`, the determinism
//! foundation everything else builds on: same-instant FIFO ordering must
//! survive arbitrary interleavings of scheduling and popping, and the
//! past-event guard must clamp (release) or panic (debug) as documented.

use std::collections::VecDeque;

use bytescheduler::sim::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events scheduled at one shared instant pop in schedule order even
    /// when pops interleave with the pushes — the heap's internal
    /// reshuffling on pop must never reorder equal-time entries.
    #[test]
    fn same_instant_fifo_survives_interleaved_pops(
        ops in proptest::collection::vec((any::<bool>(), 0u64..4), 1..200),
    ) {
        let t = SimTime::from_micros(10);
        let mut q = EventQueue::new();
        let mut expected: VecDeque<u64> = VecDeque::new();
        let mut next_id = 0u64;
        for (push, burst) in ops {
            if push {
                for _ in 0..=burst {
                    q.schedule(t, next_id);
                    expected.push_back(next_id);
                    next_id += 1;
                }
            } else if let Some((at, got)) = q.pop() {
                prop_assert_eq!(at, t);
                prop_assert_eq!(Some(got), expected.pop_front());
            }
        }
        while let Some((_, got)) = q.pop() {
            prop_assert_eq!(Some(got), expected.pop_front());
        }
        prop_assert!(expected.is_empty());
    }

    /// For arbitrary schedules interleaved with pops: every event comes
    /// out, timestamps never decrease, and equal-time events preserve
    /// their global scheduling order.
    #[test]
    fn pops_are_time_ordered_and_fifo_within_an_instant(
        ops in proptest::collection::vec((any::<bool>(), 0u64..50), 1..300),
    ) {
        let mut q = EventQueue::new();
        let mut scheduled = 0u64;
        let mut popped: Vec<(SimTime, u64)> = Vec::new();
        for (push, offset_us) in ops {
            if push {
                // Relative to `now`, so nothing lands in the past.
                let at = q.now() + SimTime::from_micros(offset_us);
                q.schedule(at, scheduled);
                scheduled += 1;
            } else if let Some(e) = q.pop() {
                popped.push(e);
            }
        }
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), scheduled as usize, "no event may be lost");
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(
                    w[0].1 < w[1].1,
                    "same-instant events popped out of schedule order"
                );
            }
        }
    }
}

/// Scheduling before `now` is a caller bug and panics in debug builds.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "scheduled an event in the past")]
fn past_schedule_panics_in_debug() {
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_micros(10), 1u64);
    q.pop();
    q.schedule(SimTime::from_micros(5), 2u64);
}

/// In release builds the same mistake degrades gracefully: the event is
/// clamped to `now`, and time still never runs backwards.
#[cfg(not(debug_assertions))]
#[test]
fn past_schedule_clamps_to_now_in_release() {
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_micros(10), 1u64);
    q.pop();
    q.schedule(SimTime::from_micros(5), 2u64);
    let (t, e) = q.pop().expect("clamped event still fires");
    assert_eq!(e, 2);
    assert_eq!(t, SimTime::from_micros(10), "clamped to now, not the past");
    assert_eq!(q.now(), SimTime::from_micros(10));
}
