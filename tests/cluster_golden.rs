//! Golden fixture for the multi-job cluster driver: a deterministic
//! 2-job run on each fabric is pinned to a committed fingerprint, so
//! refactors of the cluster event loop (tag demuxing, per-job advance
//! order, arrival handling) can prove they are behaviour-preserving.
//!
//! Same contract as `golden_trace.rs`: floats render with Rust's
//! shortest-round-trip formatting, so string equality is bit equality.
//! Regenerate after an *intentional* model change with
//!
//! ```text
//! BS_UPDATE_GOLDEN=1 cargo test --test cluster_golden
//! ```
//!
//! and review the fixture diff like any other behavioural change.

use bs_cluster::{run_cluster, ClusterConfig, ClusterResult, JobSpec, PlacementPolicy};
use bs_engine::EngineConfig;
use bs_faults::FaultPlan;
use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::{Arch, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use serde_json::Value;

/// The same comm-heavy toy the single-job golden test pins.
fn comm_heavy() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            40_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l1",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l2",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l3",
            1_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .build()
}

fn job(sched: SchedulerKind, seed: u64) -> WorldConfig {
    let mut c = WorldConfig::new(
        comm_heavy(),
        2,
        Arch::ps(2),
        NetConfig::gbps(10.0, Transport::tcp()),
        EngineConfig::mxnet_ps(),
        sched,
    );
    c.iters = 8;
    c.warmup = 2;
    c.jitter = 0.02;
    c.seed = seed;
    c
}

/// Two jobs sharing 4 machines under packed placement, the second
/// arriving 20 ms late — exercises tag demuxing, contention, and
/// arrival offsets all at once.
/// The golden scenario with an optional cluster-scope fault plan
/// attached — `None` and `Some(FaultPlan::empty())` must be
/// indistinguishable (see `empty_cluster_plan_reproduces_golden_bytes`).
fn scenario_with(fabric: FabricModel, faults: Option<FaultPlan>) -> ClusterResult {
    let bs = job(
        SchedulerKind::ByteScheduler {
            partition: 1_000_000,
            credit: 4_000_000,
        },
        7,
    );
    let fifo = job(SchedulerKind::Baseline, 11);
    let mut cluster = ClusterConfig::new(4, bs.net);
    cluster.fabric = fabric;
    cluster.placement = PlacementPolicy::Packed;
    cluster.faults = faults;
    run_cluster(
        &cluster,
        &[
            JobSpec::train("bs", bs),
            JobSpec::train_at("fifo", fifo, SimTime::from_millis(20)),
        ],
    )
}

/// The determinism-relevant surface of a cluster run: per-job completion
/// data plus the cluster-level aggregates.
fn fingerprint(label: &str, r: &ClusterResult) -> Value {
    let jobs = r
        .jobs
        .iter()
        .map(|j| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(j.name.clone())),
                ("arrival_ns".to_string(), Value::U64(j.arrival.as_nanos())),
                (
                    "finished_at_ns".to_string(),
                    Value::U64(j.finished_at.as_nanos()),
                ),
                ("jct_ns".to_string(), Value::U64(j.jct.as_nanos())),
                (
                    "iter_times".to_string(),
                    Value::Array(j.result.iter_times.iter().map(|t| Value::F64(*t)).collect()),
                ),
                ("speed".to_string(), Value::F64(j.result.speed)),
                ("p2p_bytes".to_string(), Value::U64(j.result.p2p_bytes)),
                ("comm_events".to_string(), Value::U64(j.result.comm_events)),
            ])
        })
        .collect();
    let links = r
        .link_utilisation
        .iter()
        .map(|l| {
            Value::Object(vec![
                ("machine".to_string(), Value::U64(l.machine as u64)),
                ("up".to_string(), Value::F64(l.up)),
                ("down".to_string(), Value::F64(l.down)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("scenario".to_string(), Value::Str(label.to_string())),
        ("jobs".to_string(), Value::Array(jobs)),
        ("makespan_ns".to_string(), Value::U64(r.makespan.as_nanos())),
        ("jain_fairness".to_string(), Value::F64(r.jain_fairness)),
        ("link_utilisation".to_string(), Value::Array(links)),
        ("fabric_events".to_string(), Value::U64(r.fabric_events)),
    ])
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_cluster.json")
}

fn render() -> String {
    render_with(|| None)
}

fn render_with(faults: impl Fn() -> Option<FaultPlan>) -> String {
    let fifo = scenario_with(FabricModel::SerialFifo, faults());
    let fluid = scenario_with(FabricModel::FairShare, faults());
    let doc = Value::Array(vec![
        fingerprint("two_job_packed_fifo_fabric", &fifo),
        fingerprint("two_job_packed_fluid_fabric", &fluid),
    ]);
    serde_json::to_string_pretty(&doc).expect("render fingerprint") + "\n"
}

#[test]
fn matches_committed_fixture_on_both_fabrics() {
    let actual = render();
    let path = fixture_path();
    if std::env::var("BS_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &actual).expect("write fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BS_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "cluster output diverged from the golden fixture; if the \
         behaviour change is intentional, regenerate with BS_UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// Two in-process runs must agree exactly — catches hidden global state
/// in the cluster driver (fabric reuse, RNG leakage between jobs).
#[test]
fn repeated_cluster_runs_are_bit_identical() {
    assert_eq!(render(), render());
}

/// Attaching the *empty* cluster fault plan changes not one byte of the
/// golden fixture: the cluster injector, like the solo one, is
/// pay-for-what-you-inject — no plan events means no RNG draws, no extra
/// simulator events, no perturbed timestamps.
#[test]
fn empty_cluster_plan_reproduces_golden_bytes() {
    let committed = std::fs::read_to_string(fixture_path())
        .expect("golden cluster fixture exists (generate with BS_UPDATE_GOLDEN=1)");
    assert_eq!(
        render_with(|| Some(FaultPlan::empty())),
        committed,
        "an empty cluster fault plan must be the identity on the golden scenario"
    );
}
