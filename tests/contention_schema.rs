//! The link-contention export contract, pinned three ways:
//!
//! 1. `results/contention.schema.json` is the checked-in JSON-Schema for
//!    every `contention.json` the harness writes. A real contended
//!    cluster run's matrix is serialised exactly as
//!    `write_contention_json` writes it, re-parsed, and validated with
//!    the shared draft-07-subset validator — and the schema constant
//!    compiled into bs-cluster must match the committed file byte for
//!    byte.
//! 2. The matrix is **byte-deterministic**: the same specs render the
//!    same JSON on both fabric models, rerun after rerun.
//! 3. The observatory is **recording-only**: a recorded run of the
//!    golden-cluster scenario is indistinguishable (makespan, per-job
//!    timings, link utilisation, fabric events) from the plain run that
//!    `tests/fixtures/golden_cluster.json` pins byte-for-byte in
//!    `cluster_golden.rs`.

#[allow(dead_code)]
mod common;

use bs_cluster::{
    run_cluster, ClusterConfig, ClusterResult, JobSpec, PlacementPolicy, CONTENTION_SCHEMA,
};
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::{SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use common::schema::{committed, validate};
use serde_json::Value;

fn job(sched: SchedulerKind, seed: u64) -> WorldConfig {
    let mut c = common::scenario(FabricModel::SerialFifo);
    c.scheduler = sched;
    c.seed = seed;
    c
}

/// The golden-cluster scenario (two PS jobs packed on 4 machines, the
/// second arriving 20 ms late), optionally with the contention
/// observatory recording.
fn scenario(fabric: FabricModel, record_contention: bool) -> ClusterResult {
    let bs = job(
        SchedulerKind::ByteScheduler {
            partition: 1_000_000,
            credit: 4_000_000,
        },
        7,
    );
    let fifo = job(SchedulerKind::Baseline, 11);
    let mut cluster = ClusterConfig::new(4, NetConfig::gbps(10.0, Transport::tcp()));
    cluster.fabric = fabric;
    cluster.placement = PlacementPolicy::Packed;
    cluster.record_contention = record_contention;
    run_cluster(
        &cluster,
        &[
            JobSpec::train("bs", bs),
            JobSpec::train_at("fifo", fifo, SimTime::from_millis(20)),
        ],
    )
}

fn matrix_json(fabric: FabricModel) -> String {
    let r = scenario(fabric, true);
    let m = r.contention.as_ref().expect("contention recorded");
    serde_json::to_string_pretty(m).expect("matrix serialises")
}

/// The schema constant compiled into bs-cluster must be the committed
/// file, byte for byte.
#[test]
fn embedded_schema_is_byte_identical_to_committed() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("contention.schema.json");
    let text = std::fs::read_to_string(&path).expect("committed schema");
    assert_eq!(
        CONTENTION_SCHEMA, text,
        "bs_cluster::CONTENTION_SCHEMA drifted from results/contention.schema.json"
    );
}

#[test]
fn contention_json_validates_against_committed_schema() {
    let schema = committed("contention.schema.json");
    for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
        let doc: Value =
            serde_json::from_str(&matrix_json(fabric)).expect("contention.json round-trips");
        let mut errs = Vec::new();
        validate(&schema, &doc, "$", &mut errs);
        assert!(errs.is_empty(), "{fabric:?} schema violations: {errs:#?}");
        // The contended scenario must actually exercise the shape: both
        // tenants, active links, and the (bs, fifo) pair present.
        let Some(Value::Array(links)) = doc.get("links") else {
            panic!("links array");
        };
        let Some(Value::Array(pairs)) = doc.get("pairs") else {
            panic!("pairs array");
        };
        assert!(!links.is_empty(), "{fabric:?}: traffic must register");
        assert_eq!(pairs.len(), 1, "{fabric:?}: one tenant pair");
    }
}

/// The schema must have teeth: corrupt the document and demand a
/// complaint each time.
#[test]
fn schema_rejects_malformed_documents() {
    let schema = committed("contention.schema.json");
    let good: Value = serde_json::from_str(&matrix_json(FabricModel::SerialFifo)).expect("parses");
    type Corruption = Box<dyn Fn(&mut Vec<(String, Value)>)>;
    let corrupt: Vec<(&str, Corruption)> = vec![
        (
            "wrong schema_version",
            Box::new(|top| {
                top[0].1 = Value::U64(99);
            }),
        ),
        (
            "missing pairs",
            Box::new(|top| {
                top.retain(|(k, _)| k != "pairs");
            }),
        ),
        (
            "invalid link direction",
            Box::new(|top| {
                let Some((_, Value::Array(links))) = top.iter_mut().find(|(k, _)| k == "links")
                else {
                    panic!("links array")
                };
                let Value::Object(first) = &mut links[0] else {
                    panic!("link object")
                };
                first
                    .iter_mut()
                    .find(|(k, _)| k == "dir")
                    .expect("dir present")
                    .1 = Value::Str("sideways".into());
            }),
        ),
    ];
    for (what, mutate) in corrupt {
        let mut doc = good.clone();
        let Value::Object(top) = &mut doc else {
            panic!("top-level object")
        };
        mutate(top);
        let mut errs = Vec::new();
        validate(&schema, &doc, "$", &mut errs);
        assert!(
            !errs.is_empty(),
            "validator accepted a document with {what}"
        );
    }
}

/// Export determinism on both fabrics: rerunning the same specs renders
/// the same bytes.
#[test]
fn contention_matrix_is_byte_deterministic() {
    for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
        assert_eq!(
            matrix_json(fabric),
            matrix_json(fabric),
            "{fabric:?}: contention export must be byte-deterministic"
        );
    }
}

/// Recording-only: enabling the observatory changes nothing the cluster
/// measures, on either fabric.
#[test]
fn contention_recording_never_perturbs_the_cluster() {
    for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
        let plain = scenario(fabric, false);
        let recorded = scenario(fabric, true);
        assert!(plain.contention.is_none());
        assert!(recorded.contention.is_some());
        assert_eq!(plain.makespan, recorded.makespan, "{fabric:?}");
        assert_eq!(plain.fabric_events, recorded.fabric_events, "{fabric:?}");
        for (a, b) in plain.jobs.iter().zip(&recorded.jobs) {
            assert_eq!(a.finished_at, b.finished_at, "{fabric:?} {}", a.name);
            assert_eq!(a.result.speed, b.result.speed, "{fabric:?} {}", a.name);
            assert_eq!(a.result.iter_times, b.result.iter_times);
            assert_eq!(a.result.p2p_bytes, b.result.p2p_bytes);
            assert_eq!(a.result.comm_events, b.result.comm_events);
        }
        for (a, b) in plain
            .link_utilisation
            .iter()
            .zip(&recorded.link_utilisation)
        {
            assert_eq!(
                (a.up, a.down),
                (b.up, b.down),
                "{fabric:?} nic{}",
                a.machine
            );
        }
    }
}
