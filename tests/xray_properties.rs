//! Property-based tests of the xray invariants over the full stack:
//! for *any* random model, scheduler, fabric and jitter stream —
//!
//! 1. **Exact tiling** — every iteration's category sums equal its wall
//!    time to the nanosecond; no residual bucket, no double counting.
//! 2. **Critical path ≤ makespan** — the measured critical-path time
//!    never exceeds the run horizon, on both fabric models.
//! 3. **Recording-only** — turning `record_xray` on changes nothing a
//!    [`bytescheduler::runtime::RunResult`] measures.

use bytescheduler::engine::EngineConfig;
use bytescheduler::models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bytescheduler::net::{FabricModel, NetConfig, Transport};
use bytescheduler::runtime::{run, Arch, SchedulerKind, WorldConfig};
use bytescheduler::sim::SimTime;
use proptest::prelude::*;

/// Strategy: a random small DNN (2–5 layers, 0.1–8 MB tensors, 0.5–4 ms
/// compute per pass).
fn arb_model() -> impl Strategy<Value = DnnModel> {
    proptest::collection::vec((100_000u64..8_000_000, 500u64..4_000, 500u64..4_000), 2..=5)
        .prop_map(|layers| {
            let gpu = GpuSpec::custom(1e12, 2.0);
            let mut b = ModelBuilder::new("prop", gpu, 4, SampleUnit::Images);
            for (i, (bytes, fp_us, bp_us)) in layers.into_iter().enumerate() {
                b = b.explicit(
                    format!("l{i}"),
                    bytes,
                    SimTime::from_micros(fp_us),
                    SimTime::from_micros(bp_us),
                );
            }
            b.build()
        })
}

fn xray_cfg(
    model: DnnModel,
    sched: SchedulerKind,
    fabric: FabricModel,
    seed: u64,
    jitter: f64,
) -> WorldConfig {
    let mut cfg = WorldConfig::new(
        model,
        2,
        Arch::ps(2),
        NetConfig::gbps(10.0, Transport::tcp()),
        EngineConfig::mxnet_ps(),
        sched,
    );
    cfg.iters = 4;
    cfg.warmup = 1;
    cfg.seed = seed;
    cfg.jitter = jitter;
    cfg.fabric = fabric;
    cfg.record_xray = true;
    cfg
}

fn schedulers() -> [SchedulerKind; 3] {
    [
        SchedulerKind::Baseline,
        SchedulerKind::P3,
        SchedulerKind::ByteScheduler {
            partition: 1 << 20,
            credit: 4 << 20,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exact tiling and the makespan bound, on both fabrics, under every
    /// scheduler.
    #[test]
    fn attribution_tiles_every_iteration_exactly(
        model in arb_model(),
        seed in 1u64..1_000,
        jitter in 0.0f64..0.05,
    ) {
        for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
            for sched in schedulers() {
                let cfg = xray_cfg(model.clone(), sched, fabric, seed, jitter);
                let r = run(&cfg);
                let x = r.xray.as_ref().expect("xray recorded");
                prop_assert_eq!(x.iterations.len() as u64, cfg.iters,
                    "one breakdown per iteration");
                for it in &x.iterations {
                    prop_assert_eq!(
                        it.attribution.total_ns(), it.wall_ns(),
                        "iter {} of {} on {:?}: category sums must tile the window",
                        it.iter, sched.label(), fabric
                    );
                }
                prop_assert_eq!(x.totals.total_ns(), x.measured_wall_ns,
                    "totals must tile the measured window");
                // The measured critical path is a sub-interval of the run.
                prop_assert!(x.measured_wall_ns <= r.finished_at.as_nanos(),
                    "critical path {} exceeds makespan {}",
                    x.measured_wall_ns, r.finished_at.as_nanos());
                // Compute always appears; per-tensor shares never exceed
                // the measured wall time.
                prop_assert!(x.totals.compute_ns > 0, "compute on the critical path");
                for t in &x.tensors {
                    prop_assert!(t.critical_ns <= x.measured_wall_ns);
                }
            }
        }
    }

    /// Recording is strictly observational: every measured quantity is
    /// bit-identical with xray on and off.
    #[test]
    fn xray_recording_never_perturbs_the_run(
        model in arb_model(),
        seed in 1u64..1_000,
        fabric_fifo in any::<bool>(),
    ) {
        let fabric = if fabric_fifo { FabricModel::SerialFifo } else { FabricModel::FairShare };
        let sched = SchedulerKind::ByteScheduler { partition: 1 << 20, credit: 4 << 20 };
        let on = xray_cfg(model.clone(), sched, fabric, seed, 0.02);
        let mut off = on.clone();
        off.record_xray = false;
        let (a, b) = (run(&on), run(&off));
        prop_assert!(a.xray.is_some() && b.xray.is_none());
        prop_assert_eq!(a.finished_at, b.finished_at);
        prop_assert_eq!(a.speed, b.speed);
        prop_assert_eq!(a.p2p_bytes, b.p2p_bytes);
        prop_assert_eq!(a.comm_events, b.comm_events);
        prop_assert_eq!(a.iter_times, b.iter_times);
    }
}
