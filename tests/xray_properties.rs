//! Property-based tests of the xray invariants over the full stack:
//! for *any* random model, scheduler, fabric and jitter stream —
//!
//! 1. **Exact tiling** — every iteration's category sums equal its wall
//!    time to the nanosecond; no residual bucket, no double counting.
//! 2. **Critical path ≤ makespan** — the measured critical-path time
//!    never exceeds the run horizon, on both fabric models.
//! 3. **Recording-only** — turning `record_xray` on changes nothing a
//!    [`bytescheduler::runtime::RunResult`] measures.
//! 4. **Split conservation** — on random ring models, per-chunk hop
//!    records redistribute the old coarse `Aggregation` bucket into
//!    `ReduceScatter` + `AllGather` *exactly*: bucket sums are equal to
//!    the nanosecond, every other category is untouched, and the ring
//!    run still tiles to 100% end to end.

use bytescheduler::engine::EngineConfig;
use bytescheduler::models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bytescheduler::net::{FabricModel, NetConfig, Transport};
use bytescheduler::runtime::{run, Arch, SchedulerKind, WorldConfig};
use bytescheduler::sim::SimTime;
use proptest::prelude::*;

/// Strategy: a random small DNN (2–5 layers, 0.1–8 MB tensors, 0.5–4 ms
/// compute per pass).
fn arb_model() -> impl Strategy<Value = DnnModel> {
    proptest::collection::vec((100_000u64..8_000_000, 500u64..4_000, 500u64..4_000), 2..=5)
        .prop_map(|layers| {
            let gpu = GpuSpec::custom(1e12, 2.0);
            let mut b = ModelBuilder::new("prop", gpu, 4, SampleUnit::Images);
            for (i, (bytes, fp_us, bp_us)) in layers.into_iter().enumerate() {
                b = b.explicit(
                    format!("l{i}"),
                    bytes,
                    SimTime::from_micros(fp_us),
                    SimTime::from_micros(bp_us),
                );
            }
            b.build()
        })
}

fn xray_cfg(
    model: DnnModel,
    sched: SchedulerKind,
    fabric: FabricModel,
    seed: u64,
    jitter: f64,
) -> WorldConfig {
    let mut cfg = WorldConfig::new(
        model,
        2,
        Arch::ps(2),
        NetConfig::gbps(10.0, Transport::tcp()),
        EngineConfig::mxnet_ps(),
        sched,
    );
    cfg.iters = 4;
    cfg.warmup = 1;
    cfg.seed = seed;
    cfg.jitter = jitter;
    cfg.fabric = fabric;
    cfg.record_xray = true;
    cfg
}

fn schedulers() -> [SchedulerKind; 3] {
    [
        SchedulerKind::Baseline,
        SchedulerKind::P3,
        SchedulerKind::ByteScheduler {
            partition: 1 << 20,
            credit: 4 << 20,
        },
    ]
}

/// A random ring-attribution scenario: per op, a ring size, a span, and
/// the hop tiling the real backend would emit (`t_k = start + D·k/S`,
/// chunk-major, reduce-scatter for the first `n−1` hops).
fn arb_ring_log() -> impl Strategy<Value = bytescheduler::xray::XrayLog> {
    use bytescheduler::xray::{RingHopRecord, RingOp, RingPhase, XrayLog};
    proptest::collection::vec((2usize..=5, 1_000u64..500_000, 0u64..50_000), 1..=6).prop_map(
        |ops| {
            let mut log = XrayLog {
                scheduler: "prop-ring".into(),
                ..Default::default()
            };
            let mut t = 0u64; // ns cursor
            for (i, (n, dur, gap)) in ops.into_iter().enumerate() {
                let (start, end) = (t + gap, t + gap + dur);
                let tag = i as u64;
                log.ring_ops.push(RingOp {
                    tag,
                    start: SimTime::from_nanos(start),
                    end: SimTime::from_nanos(end),
                });
                let steps = 2 * (n - 1) as u64;
                let boundary = |k: u64| start + (dur as u128 * k as u128 / steps as u128) as u64;
                for chunk in 0..n as u32 {
                    for hop in 0..steps {
                        log.ring_hops.push(RingHopRecord {
                            tag,
                            chunk,
                            hop: hop as u32,
                            phase: if hop < steps / 2 {
                                RingPhase::ReduceScatter
                            } else {
                                RingPhase::AllGather
                            },
                            enqueue: SimTime::from_nanos(boundary(hop)),
                            submit: SimTime::from_nanos(boundary(hop)),
                            deliver: SimTime::from_nanos(boundary(hop + 1)),
                        });
                    }
                }
                t = end;
            }
            log.start = SimTime::ZERO;
            log.end = SimTime::from_nanos(t + 1_000);
            log.marks = vec![log.end];
            log
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exact tiling and the makespan bound, on both fabrics, under every
    /// scheduler.
    #[test]
    fn attribution_tiles_every_iteration_exactly(
        model in arb_model(),
        seed in 1u64..1_000,
        jitter in 0.0f64..0.05,
    ) {
        for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
            for sched in schedulers() {
                let cfg = xray_cfg(model.clone(), sched, fabric, seed, jitter);
                let r = run(&cfg);
                let x = r.xray.as_ref().expect("xray recorded");
                prop_assert_eq!(x.iterations.len() as u64, cfg.iters,
                    "one breakdown per iteration");
                for it in &x.iterations {
                    prop_assert_eq!(
                        it.attribution.total_ns(), it.wall_ns(),
                        "iter {} of {} on {:?}: category sums must tile the window",
                        it.iter, sched.label(), fabric
                    );
                }
                prop_assert_eq!(x.totals.total_ns(), x.measured_wall_ns,
                    "totals must tile the measured window");
                // The measured critical path is a sub-interval of the run.
                prop_assert!(x.measured_wall_ns <= r.finished_at.as_nanos(),
                    "critical path {} exceeds makespan {}",
                    x.measured_wall_ns, r.finished_at.as_nanos());
                // Compute always appears; per-tensor shares never exceed
                // the measured wall time.
                prop_assert!(x.totals.compute_ns > 0, "compute on the critical path");
                for t in &x.tensors {
                    prop_assert!(t.critical_ns <= x.measured_wall_ns);
                }
            }
        }
    }

    /// Per-chunk hop records redistribute — never resize — the coarse
    /// aggregation bucket, on arbitrary ring op layouts.
    #[test]
    fn ring_split_conserves_the_aggregation_bucket(split in arb_ring_log()) {
        use bytescheduler::xray::analyze;
        let mut coarse = split.clone();
        coarse.ring_hops.clear();
        let a = analyze(&coarse);
        let b = analyze(&split);
        prop_assert_eq!(a.len(), b.len());
        for (ca, cb) in a.iter().zip(&b) {
            let (ca, cb) = (&ca.attribution, &cb.attribution);
            // The split is exact: rs + ag + residual agg equals the old
            // coarse aggregation bucket to the nanosecond.
            prop_assert_eq!(
                cb.reduce_scatter_ns + cb.all_gather_ns + cb.aggregation_ns,
                ca.aggregation_ns,
                "split buckets must conserve the coarse bucket"
            );
            prop_assert_eq!(ca.reduce_scatter_ns + ca.all_gather_ns, 0,
                "coarse logs never fill the split buckets");
            // Every other category is untouched by the refinement.
            prop_assert_eq!(ca.compute_ns, cb.compute_ns);
            prop_assert_eq!(ca.wire_ns, cb.wire_ns);
            prop_assert_eq!(ca.credit_wait_ns, cb.credit_wait_ns);
            prop_assert_eq!(ca.queue_wait_ns, cb.queue_wait_ns);
            prop_assert_eq!(ca.barrier_ns, cb.barrier_ns);
            prop_assert_eq!(ca.total_ns(), cb.total_ns(), "tiling preserved");
        }
    }

    /// The same conservation holds through the full stack: a real ring
    /// all-reduce run fills only the split buckets and still tiles.
    #[test]
    fn ring_runs_split_and_tile_exactly(
        model in arb_model(),
        seed in 1u64..1_000,
    ) {
        let mut cfg = WorldConfig::new(
            model,
            4,
            Arch::allreduce(),
            NetConfig::gbps(10.0, Transport::rdma()),
            EngineConfig::mxnet_allreduce(),
            SchedulerKind::ByteScheduler { partition: 1 << 22, credit: 16 << 20 },
        );
        cfg.iters = 4;
        cfg.warmup = 1;
        cfg.seed = seed;
        cfg.record_xray = true;
        let r = run(&cfg);
        let x = r.xray.as_ref().expect("xray recorded");
        prop_assert!(x.counts.ring_hops > 0, "ring runs must record hops");
        prop_assert_eq!(x.totals.aggregation_ns, 0,
            "hop records supersede the coarse bucket");
        prop_assert!(x.totals.reduce_scatter_ns + x.totals.all_gather_ns > 0,
            "ring time must land in the split buckets");
        for it in &x.iterations {
            prop_assert_eq!(it.attribution.total_ns(), it.wall_ns(),
                "ring iteration must tile to 100%");
        }
        prop_assert_eq!(x.totals.total_ns(), x.measured_wall_ns);

        // Recording-only, ring edition: the run is bit-identical with
        // xray off.
        let mut off = cfg.clone();
        off.record_xray = false;
        let plain = run(&off);
        prop_assert_eq!(plain.finished_at, r.finished_at);
        prop_assert_eq!(plain.speed, r.speed);
        prop_assert_eq!(plain.collective_bytes, r.collective_bytes);
        prop_assert_eq!(plain.iter_times.clone(), r.iter_times.clone());
    }

    /// Recording is strictly observational: every measured quantity is
    /// bit-identical with xray on and off.
    #[test]
    fn xray_recording_never_perturbs_the_run(
        model in arb_model(),
        seed in 1u64..1_000,
        fabric_fifo in any::<bool>(),
    ) {
        let fabric = if fabric_fifo { FabricModel::SerialFifo } else { FabricModel::FairShare };
        let sched = SchedulerKind::ByteScheduler { partition: 1 << 20, credit: 4 << 20 };
        let on = xray_cfg(model.clone(), sched, fabric, seed, 0.02);
        let mut off = on.clone();
        off.record_xray = false;
        let (a, b) = (run(&on), run(&off));
        prop_assert!(a.xray.is_some() && b.xray.is_none());
        prop_assert_eq!(a.finished_at, b.finished_at);
        prop_assert_eq!(a.speed, b.speed);
        prop_assert_eq!(a.p2p_bytes, b.p2p_bytes);
        prop_assert_eq!(a.comm_events, b.comm_events);
        prop_assert_eq!(a.iter_times, b.iter_times);
    }
}
