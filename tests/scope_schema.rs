//! The scope observation bus's export contract, pinned four ways:
//!
//! 1. `results/events.schema.json` is the checked-in JSON-Schema for
//!    every `events.jsonl` row the flight recorder writes. A real
//!    faulted run's rows — plus synthetic rows covering the kinds a
//!    single-job run cannot produce — are parsed back and validated
//!    with the shared draft-07-subset validator, and the schema
//!    bs-scope embeds at compile time must be byte-identical to the
//!    committed file.
//! 2. The validator must have teeth: corrupted rows are rejected.
//! 3. Per-seed byte-determinism: the same config records the same
//!    `events.jsonl` bytes on both fabric disciplines, and a different
//!    seed records different bytes.
//! 4. The online NIC-utilisation rollup agrees with the offline
//!    telemetry: summed `net_window` utilisation seconds equal the
//!    time-weighted integral of bs-telemetry's per-direction
//!    utilisation series (property-tested over seeds and jitter).

mod common;

use bs_faults::FaultPlan;
use bs_net::FabricModel;
use bs_runtime::{run_observed, WorldConfig};
use bs_scope::{Collector, FlightHandle, FlightRecorder, ScopeBus, ScopeEvent, EVENTS_SCHEMA};
use bs_sim::SimTime;
use bs_telemetry::Metric;
use bs_tune::LiveDrift;
use common::schema::{committed, validate};
use proptest::prelude::*;
use serde_json::Value;

/// The golden comm-heavy scenario with the committed fault fixture, so
/// one run produces iteration, window, retransmit, fault and drift rows.
fn faulted_scenario(fabric: FabricModel) -> WorldConfig {
    let mut cfg = common::scenario(fabric);
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fault_plan.json"),
    )
    .expect("committed fault fixture");
    let mut plan = FaultPlan::from_json(&text).expect("fixture parses");
    // The fixture's timings target the multi-second VGG16 study; the
    // golden toy run lasts well under a second, so re-time the bandwidth
    // shift to land mid-run and raise the loss rate enough for a short
    // run to actually retransmit.
    for (ev, at_us) in plan
        .link_events
        .iter_mut()
        .zip([100_000u64, 100_000, 300_000, 300_000])
    {
        ev.at_us = at_us;
    }
    plan.loss_rate = 0.02;
    cfg.faults = Some(plan);
    cfg
}

/// Records one observed run, returning the flight-recorder handle.
fn record(cfg: &WorldConfig) -> FlightHandle {
    let mut bus = ScopeBus::new();
    bus.subscribe(Box::new(LiveDrift::new(cfg.warmup)));
    let (rec, handle) = FlightRecorder::new();
    bus.subscribe(Box::new(rec));
    run_observed(cfg, Some(&mut bus));
    handle
}

/// Synthetic events for the kinds a single-job run cannot emit (waves
/// and what-if batches come from the replay layer, drift from the
/// tuner), so the conformance test covers every row shape.
fn synthetic_rows() -> Vec<String> {
    let mut bus = ScopeBus::new();
    let (rec, handle) = FlightRecorder::new();
    bus.subscribe(Box::new(rec));
    bus.publish(ScopeEvent::WaveAdmitted {
        wave: 0,
        at: SimTime::ZERO,
        jobs: 3,
    });
    bus.publish(ScopeEvent::WaveDone {
        wave: 0,
        at: SimTime::from_secs(2),
        jobs: 3,
        jct_mean_secs: 1.25,
        jct_max_secs: 2.0,
    });
    bus.publish(ScopeEvent::Drift {
        job: 1,
        at: SimTime::from_millis(1500),
        iter: 7,
        baseline: 10.0,
        observed: 2.5,
    });
    bus.publish(ScopeEvent::WhatIfBatch {
        batch: 1,
        at: SimTime::ZERO,
        queries: 4,
        computed: 2,
        cache_hits: 1,
        batch_dedup: 1,
    });
    // The cluster driver's machine-failure reaction sequence.
    bus.publish(ScopeEvent::FaultFired {
        job: 2,
        at: SimTime::from_secs(3),
        kind: "machine_down",
        node: 1,
        scale: 0.0,
    });
    bus.publish(ScopeEvent::Checkpoint {
        job: 2,
        at: SimTime::from_secs(3),
        machine: 1,
        iter: 5,
        cost_secs: 9.1,
    });
    bus.publish(ScopeEvent::Migrate {
        job: 2,
        at: SimTime::from_secs(3),
        node: 0,
        from_machine: 1,
        to_machine: 4,
    });
    bus.publish(ScopeEvent::Resume {
        job: 2,
        at: SimTime::from_millis(12_100),
        iter: 5,
        lost_iters: 2,
    });
    handle.rows()
}

#[test]
fn events_jsonl_validates_against_committed_schema() {
    let schema = committed("events.schema.json");
    let mut rows = record(&faulted_scenario(FabricModel::SerialFifo)).rows();
    rows.extend(record(&faulted_scenario(FabricModel::FairShare)).rows());
    rows.extend(synthetic_rows());
    let mut kinds_seen = std::collections::BTreeSet::new();
    for (i, row) in rows.iter().enumerate() {
        let doc = serde_json::from_str(row)
            .unwrap_or_else(|e| panic!("row {i} is not valid JSON ({e}): {row}"));
        let mut errs = Vec::new();
        validate(&schema, &doc, "$", &mut errs);
        assert!(
            errs.is_empty(),
            "row {i} ({row}) violates schema: {errs:#?}"
        );
        if let Some(Value::Str(kind)) = doc.get("type") {
            kinds_seen.insert(kind.clone());
        }
    }
    // The faulted runs plus the synthetic rows must exercise every kind.
    for kind in [
        "iter_done",
        "retransmit",
        "fault_fired",
        "net_window",
        "stall_window",
        "iter_ema",
        "drift",
        "wave_admitted",
        "wave_done",
        "whatif_batch",
        "checkpoint",
        "migrate",
        "resume",
    ] {
        assert!(kinds_seen.contains(kind), "no {kind:?} row produced");
    }
}

#[test]
fn embedded_schema_matches_committed_file() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results/events.schema.json");
    let text = std::fs::read_to_string(&path).expect("committed schema");
    assert_eq!(
        EVENTS_SCHEMA,
        text,
        "bs_scope::EVENTS_SCHEMA must be byte-identical to {}",
        path.display()
    );
}

#[test]
fn validator_rejects_corrupted_rows() {
    let schema = committed("events.schema.json");
    let rows = record(&faulted_scenario(FabricModel::SerialFifo)).rows();
    let good = rows
        .iter()
        .find(|r| r.contains("\"retransmit\""))
        .expect("faulted run retransmits");
    type Corruption = Box<dyn Fn(&mut Vec<(String, Value)>)>;
    let corrupt: Vec<(&str, Corruption)> = vec![
        (
            "unknown event type",
            Box::new(|row| row[1].1 = Value::Str("bogus".into())),
        ),
        (
            "wrong schema version",
            Box::new(|row| row[0].1 = Value::U64(2)),
        ),
        (
            "missing timestamp",
            Box::new(|row| row.retain(|(k, _)| k != "t_ns")),
        ),
        (
            "unexpected field",
            Box::new(|row| row.push(("extra".into(), Value::Null))),
        ),
        (
            "zeroth attempt",
            Box::new(|row| {
                let at = row
                    .iter()
                    .position(|(k, _)| k == "attempt")
                    .expect("attempt");
                row[at].1 = Value::U64(0);
            }),
        ),
    ];
    for (what, mutate) in corrupt {
        let mut doc = serde_json::from_str(good).expect("row parses");
        let Value::Object(fields) = &mut doc else {
            panic!("row is an object")
        };
        mutate(fields);
        let mut errs = Vec::new();
        validate(&schema, &doc, "$", &mut errs);
        assert!(!errs.is_empty(), "validator accepted a row with {what}");
    }
}

#[test]
fn event_stream_is_byte_deterministic_per_seed() {
    for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
        let cfg = faulted_scenario(fabric);
        let a = record(&cfg).to_jsonl();
        let b = record(&cfg).to_jsonl();
        assert_eq!(a, b, "{fabric:?}: same seed must record the same bytes");
        let mut other = cfg.clone();
        other.seed = cfg.seed + 1;
        assert_ne!(
            a,
            record(&other).to_jsonl(),
            "{fabric:?}: a different seed must perturb the stream"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tumbling `net_window` rollup is an exact re-binning of the
    /// fabric's utilisation signal: summed window utilisation seconds
    /// must equal the integral of every per-direction telemetry series,
    /// on both fabric disciplines, for any seed and jitter.
    #[test]
    fn net_windows_integrate_to_telemetry_totals(
        seed in 1u64..64,
        jitter in 0.0f64..0.05,
        fifo in any::<bool>(),
    ) {
        let fabric = if fifo { FabricModel::SerialFifo } else { FabricModel::FairShare };
        let mut cfg = common::scenario(fabric);
        cfg.seed = seed;
        cfg.jitter = jitter;
        cfg.record_metrics = true;
        let mut bus = ScopeBus::new();
        let (coll, log) = Collector::new();
        bus.subscribe(Box::new(coll));
        let r = run_observed(&cfg, Some(&mut bus));
        let windowed: f64 = log
            .events()
            .iter()
            .filter_map(|e| match e {
                ScopeEvent::NetWindow { util_secs, .. } => Some(*util_secs),
                _ => None,
            })
            .sum();
        let ms = r.metrics.expect("metrics recorded");
        let telemetry: f64 = ms
            .entries()
            .iter()
            .filter(|(name, _)| name.starts_with("net/nic") && name.ends_with("_util"))
            .map(|(_, m)| match m {
                Metric::Series(ts) => ts.integral_secs(ms.horizon),
                other => panic!("utilisation must be a series, got {other:?}"),
            })
            .sum();
        prop_assert!(telemetry > 0.0, "scenario must move bytes");
        prop_assert!(
            (windowed - telemetry).abs() <= 1e-9 * telemetry.max(1.0),
            "windows sum to {windowed}, telemetry integrates to {telemetry}"
        );
    }
}
