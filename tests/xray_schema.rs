//! The xray export contract, pinned two ways:
//!
//! 1. `results/critical_path.schema.json` is the checked-in JSON-Schema
//!    for every `critical_path.json` the harness writes. A real run's
//!    report is serialised exactly as `write_critical_path_json` writes
//!    it, re-parsed, and validated against it with the shared
//!    draft-07-subset validator in `common::schema`.
//! 2. Xray must be *recording-only*: re-rendering the golden comm-heavy
//!    fingerprints with `record_xray = true` must reproduce
//!    `tests/fixtures/golden_comm_heavy.json` byte-for-byte.

#[allow(dead_code)]
mod common;

use bs_net::FabricModel;
use bs_runtime::run;
use common::schema::{committed, validate};
use serde_json::Value;

/// A real run's critical-path report, serialised exactly as
/// `write_critical_path_json` writes it and re-parsed.
fn run_xray_doc() -> Value {
    let mut cfg = common::scenario(FabricModel::SerialFifo);
    cfg.record_xray = true;
    let r = run(&cfg);
    let x = r.xray.expect("xray recorded");
    assert!(
        x.counts.parts > 0 && x.counts.compute_spans > 0,
        "golden scenario should produce a non-trivial event log"
    );
    let text = serde_json::to_string_pretty(&x).expect("serialise report");
    serde_json::from_str(&text).expect("critical_path.json round-trips through the parser")
}

/// A ring all-reduce run's report, serialised and re-parsed the same way.
fn ring_xray_doc() -> Value {
    use bs_engine::EngineConfig;
    use bs_net::{NetConfig, Transport};
    use bs_runtime::{Arch, SchedulerKind, WorldConfig};

    let mut cfg = WorldConfig::new(
        common::comm_heavy(),
        4,
        Arch::allreduce(),
        NetConfig::gbps(10.0, Transport::rdma()),
        EngineConfig::mxnet_allreduce(),
        SchedulerKind::ByteScheduler {
            partition: 4_000_000,
            credit: 16_000_000,
        },
    );
    cfg.iters = 6;
    cfg.warmup = 2;
    cfg.seed = 7;
    cfg.record_xray = true;
    let r = run(&cfg);
    let x = r.xray.expect("xray recorded");
    assert!(
        x.counts.ring_hops > 0,
        "ring scenario should record per-chunk hop lifecycles"
    );
    let text = serde_json::to_string_pretty(&x).expect("serialise report");
    serde_json::from_str(&text).expect("critical_path.json round-trips through the parser")
}

/// The schema constant compiled into bs-xray must be the committed file,
/// byte for byte — the embed can never drift from what reviewers see.
#[test]
fn embedded_schema_is_byte_identical_to_committed() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("critical_path.schema.json");
    let committed = std::fs::read_to_string(&path).expect("committed schema");
    assert_eq!(
        bs_xray::CRITICAL_PATH_SCHEMA,
        committed,
        "bs_xray::CRITICAL_PATH_SCHEMA drifted from results/critical_path.schema.json"
    );
}

#[test]
fn critical_path_json_validates_against_committed_schema() {
    let schema = committed("critical_path.schema.json");
    let doc = run_xray_doc();
    let mut errs = Vec::new();
    validate(&schema, &doc, "$", &mut errs);
    assert!(errs.is_empty(), "schema violations: {errs:#?}");
}

/// The schema must have teeth: corrupt the document three different ways
/// and demand a complaint each time.
#[test]
fn schema_rejects_malformed_documents() {
    let schema = committed("critical_path.schema.json");
    let good = run_xray_doc();
    type Corruption = Box<dyn Fn(&mut Vec<(String, Value)>)>;
    let corrupt: Vec<(&str, Corruption)> = vec![
        (
            "wrong schema_version",
            Box::new(|top| {
                top[0].1 = Value::U64(99);
            }),
        ),
        (
            "missing totals",
            Box::new(|top| {
                top.retain(|(k, _)| k != "totals");
            }),
        ),
        (
            "negative iteration wall time",
            Box::new(|top| {
                let Some((_, Value::Array(iters))) =
                    top.iter_mut().find(|(k, _)| k == "iterations")
                else {
                    panic!("iterations array")
                };
                let Value::Object(first) = &mut iters[0] else {
                    panic!("iteration object")
                };
                let (_, wall) = first
                    .iter_mut()
                    .find(|(k, _)| k == "wall_ns")
                    .expect("wall_ns present");
                *wall = Value::I64(-1);
            }),
        ),
    ];
    for (what, mutate) in corrupt {
        let mut doc = good.clone();
        let Value::Object(top) = &mut doc else {
            panic!("top-level object")
        };
        mutate(top);
        let mut errs = Vec::new();
        validate(&schema, &doc, "$", &mut errs);
        assert!(
            !errs.is_empty(),
            "validator accepted a document with {what}"
        );
    }
}

/// The v2 contract on a ring run: the document validates, the split
/// buckets carry the Aggregation time (which must be zero once hop
/// records exist), and every iteration still tiles to exactly 100%.
#[test]
fn ring_critical_path_validates_and_splits_aggregation() {
    let schema = committed("critical_path.schema.json");
    let doc = ring_xray_doc();
    let mut errs = Vec::new();
    validate(&schema, &doc, "$", &mut errs);
    assert!(errs.is_empty(), "schema violations: {errs:#?}");

    let num = |o: &Value, k: &str| -> i64 {
        match o.get(k) {
            Some(Value::U64(v)) => *v as i64,
            Some(Value::I64(v)) => *v,
            other => panic!("{k}: expected integer, got {other:?}"),
        }
    };
    assert_eq!(num(&doc, "schema_version"), 2);
    let totals = doc.get("totals").expect("totals");
    assert!(
        num(totals, "reduce_scatter_ns") > 0 && num(totals, "all_gather_ns") > 0,
        "ring time must land in the split buckets: {totals:?}"
    );
    assert_eq!(
        num(totals, "aggregation_ns"),
        0,
        "with per-hop records the coarse Aggregation bucket is empty"
    );
    let Some(Value::Array(iters)) = doc.get("iterations") else {
        panic!("iterations array");
    };
    for it in iters {
        let sum = [
            "compute_ns",
            "wire_ns",
            "credit_wait_ns",
            "queue_wait_ns",
            "aggregation_ns",
            "reduce_scatter_ns",
            "all_gather_ns",
            "barrier_ns",
        ]
        .iter()
        .map(|k| num(it, k))
        .sum::<i64>();
        assert_eq!(
            sum,
            num(it, "wall_ns"),
            "iteration must tile to 100%: {it:?}"
        );
    }
}

#[test]
fn xray_on_reproduces_the_golden_fixture() {
    let actual = common::render_with(false, true);
    let expected = std::fs::read_to_string(common::fixture_path())
        .expect("golden fixture is committed; see tests/golden_trace.rs");
    assert_eq!(
        actual, expected,
        "recording xray events perturbed the simulation: the golden \
         fingerprints must be identical with record_xray on and off"
    );
}
