//! The xray export contract, pinned two ways:
//!
//! 1. `results/critical_path.schema.json` is the checked-in JSON-Schema
//!    for every `critical_path.json` the harness writes. A real run's
//!    report is serialised exactly as `write_critical_path_json` writes
//!    it, re-parsed, and validated against it with the shared
//!    draft-07-subset validator in `common::schema`.
//! 2. Xray must be *recording-only*: re-rendering the golden comm-heavy
//!    fingerprints with `record_xray = true` must reproduce
//!    `tests/fixtures/golden_comm_heavy.json` byte-for-byte.

#[allow(dead_code)]
mod common;

use bs_net::FabricModel;
use bs_runtime::run;
use common::schema::{committed, validate};
use serde_json::Value;

/// A real run's critical-path report, serialised exactly as
/// `write_critical_path_json` writes it and re-parsed.
fn run_xray_doc() -> Value {
    let mut cfg = common::scenario(FabricModel::SerialFifo);
    cfg.record_xray = true;
    let r = run(&cfg);
    let x = r.xray.expect("xray recorded");
    assert!(
        x.counts.parts > 0 && x.counts.compute_spans > 0,
        "golden scenario should produce a non-trivial event log"
    );
    let text = serde_json::to_string_pretty(&x).expect("serialise report");
    serde_json::from_str(&text).expect("critical_path.json round-trips through the parser")
}

#[test]
fn critical_path_json_validates_against_committed_schema() {
    let schema = committed("critical_path.schema.json");
    let doc = run_xray_doc();
    let mut errs = Vec::new();
    validate(&schema, &doc, "$", &mut errs);
    assert!(errs.is_empty(), "schema violations: {errs:#?}");
}

/// The schema must have teeth: corrupt the document three different ways
/// and demand a complaint each time.
#[test]
fn schema_rejects_malformed_documents() {
    let schema = committed("critical_path.schema.json");
    let good = run_xray_doc();
    type Corruption = Box<dyn Fn(&mut Vec<(String, Value)>)>;
    let corrupt: Vec<(&str, Corruption)> = vec![
        (
            "wrong schema_version",
            Box::new(|top| {
                top[0].1 = Value::U64(99);
            }),
        ),
        (
            "missing totals",
            Box::new(|top| {
                top.retain(|(k, _)| k != "totals");
            }),
        ),
        (
            "negative iteration wall time",
            Box::new(|top| {
                let Some((_, Value::Array(iters))) =
                    top.iter_mut().find(|(k, _)| k == "iterations")
                else {
                    panic!("iterations array")
                };
                let Value::Object(first) = &mut iters[0] else {
                    panic!("iteration object")
                };
                let (_, wall) = first
                    .iter_mut()
                    .find(|(k, _)| k == "wall_ns")
                    .expect("wall_ns present");
                *wall = Value::I64(-1);
            }),
        ),
    ];
    for (what, mutate) in corrupt {
        let mut doc = good.clone();
        let Value::Object(top) = &mut doc else {
            panic!("top-level object")
        };
        mutate(top);
        let mut errs = Vec::new();
        validate(&schema, &doc, "$", &mut errs);
        assert!(
            !errs.is_empty(),
            "validator accepted a document with {what}"
        );
    }
}

#[test]
fn xray_on_reproduces_the_golden_fixture() {
    let actual = common::render_with(false, true);
    let expected = std::fs::read_to_string(common::fixture_path())
        .expect("golden fixture is committed; see tests/golden_trace.rs");
    assert_eq!(
        actual, expected,
        "recording xray events perturbed the simulation: the golden \
         fingerprints must be identical with record_xray on and off"
    );
}
