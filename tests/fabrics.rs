//! Fabric sensitivity: the conclusions must not be artefacts of the
//! serial-FIFO network abstraction. Re-run the key orderings on the
//! max-min fair fluid fabric (how multiplexed transports actually share
//! NICs) and check they hold there too.

use bytescheduler::harness::{Fidelity, Setup};
use bytescheduler::models::zoo;
use bytescheduler::net::FabricModel;
use bytescheduler::runtime::{run, RunResult, SchedulerKind};

fn measure(fabric: FabricModel, sched: SchedulerKind) -> RunResult {
    let mut cfg = Setup::MxnetPsRdma.config(zoo::vgg16(), 32, 100.0, sched);
    Fidelity::quick().apply(&mut cfg);
    cfg.fabric = fabric;
    run(&cfg)
}

#[test]
fn bytescheduler_beats_baseline_on_both_fabrics() {
    for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
        let base = measure(fabric, SchedulerKind::Baseline);
        let bs = measure(
            fabric,
            SchedulerKind::ByteScheduler {
                partition: 8 << 20,
                credit: 32 << 20,
            },
        );
        assert!(
            bs.speed > base.speed * 1.2,
            "{fabric:?}: BS {} vs baseline {}",
            bs.speed,
            base.speed
        );
    }
}

#[test]
fn fluid_fabric_softens_but_does_not_remove_the_imbalance_penalty() {
    // The §6.2 hot-shard problem is a *load* problem, not a queueing
    // problem: fair sharing spreads the pain but the bottleneck NIC still
    // carries n× the bytes. The naive baseline must stay well below
    // linear on both fabrics.
    for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
        let base = measure(fabric, SchedulerKind::Baseline);
        let mut cfg = Setup::MxnetPsRdma.config(zoo::vgg16(), 32, 100.0, SchedulerKind::Baseline);
        Fidelity::quick().apply(&mut cfg);
        let linear = cfg.linear_scaling_speed();
        assert!(
            base.speed < 0.75 * linear,
            "{fabric:?}: naive baseline {} suspiciously close to linear {linear}",
            base.speed
        );
    }
}

#[test]
fn fabrics_agree_within_a_factor_on_scheduled_runs() {
    // Well-scheduled communication (balanced, partitioned, windowed)
    // should not depend much on the sharing discipline: partitions are
    // small and every port is kept busy either way.
    let fifo = measure(
        FabricModel::SerialFifo,
        SchedulerKind::ByteScheduler {
            partition: 8 << 20,
            credit: 32 << 20,
        },
    );
    let fluid = measure(
        FabricModel::FairShare,
        SchedulerKind::ByteScheduler {
            partition: 8 << 20,
            credit: 32 << 20,
        },
    );
    let ratio = fifo.speed / fluid.speed;
    assert!(
        (0.8..1.25).contains(&ratio),
        "scheduled runs diverge across fabrics: fifo {} vs fluid {}",
        fifo.speed,
        fluid.speed
    );
}

#[test]
fn byte_conservation_holds_on_the_fluid_fabric() {
    let r = measure(
        FabricModel::FairShare,
        SchedulerKind::ByteScheduler {
            partition: 8 << 20,
            credit: 32 << 20,
        },
    );
    let cfg = Setup::MxnetPsRdma.config(zoo::vgg16(), 32, 100.0, SchedulerKind::Baseline);
    let per_iter = 2 * cfg.num_workers as u64 * zoo::vgg16().total_param_bytes();
    let fid = Fidelity::quick();
    assert!(
        r.p2p_bytes >= (fid.iters - 1) * per_iter && r.p2p_bytes <= fid.iters * per_iter,
        "delivered {} for {} iterations of {} bytes",
        r.p2p_bytes,
        fid.iters,
        per_iter
    );
}
