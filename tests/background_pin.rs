//! Pins the co-tenant (`BackgroundLoad`) traffic model to a committed
//! fixture. The fixture was captured *before* the burst logic moved from
//! `World` into the shared [`bs_runtime`] traffic-source abstraction that
//! the cluster subsystem also uses, so it proves the rewire is
//! behaviour-preserving: the synthetic co-tenant's bursts, jittered gaps
//! and their interleaving with the job's transfers are bit-identical on
//! both fabrics.
//!
//! Regenerate (only for an *intentional* co-tenant model change) with:
//!
//! ```text
//! BS_UPDATE_GOLDEN=1 cargo test --test background_pin
//! ```

use bs_engine::EngineConfig;
use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::{run, Arch, BackgroundLoad, RunResult, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use serde_json::Value;

/// The comm-heavy toy shared with the golden-trace test.
fn comm_heavy() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            40_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l1",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l2",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l3",
            1_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .build()
}

fn scenario(fabric: FabricModel, sched: SchedulerKind, gap_us: u64) -> WorldConfig {
    let mut c = WorldConfig::new(
        comm_heavy(),
        2,
        Arch::ps(2),
        NetConfig::gbps(10.0, Transport::tcp()),
        EngineConfig::mxnet_ps(),
        sched,
    );
    c.fabric = fabric;
    c.background = Some(BackgroundLoad {
        burst_bytes: 4 << 20,
        gap_us,
    });
    c.iters = 8;
    c.warmup = 2;
    // Jitter exercises the engine RNG stream; the burst-gap RNG runs
    // regardless, and the fixture pins both.
    c.jitter = 0.02;
    c.seed = 7;
    c
}

fn fingerprint(label: &str, r: &RunResult) -> Value {
    Value::Object(vec![
        ("scenario".to_string(), Value::Str(label.to_string())),
        (
            "finished_at_ns".to_string(),
            Value::U64(r.finished_at.as_nanos()),
        ),
        (
            "iter_times".to_string(),
            Value::Array(r.iter_times.iter().map(|t| Value::F64(*t)).collect()),
        ),
        ("speed".to_string(), Value::F64(r.speed)),
        ("p2p_bytes".to_string(), Value::U64(r.p2p_bytes)),
        ("comm_events".to_string(), Value::U64(r.comm_events)),
    ])
}

fn render() -> String {
    let bs = SchedulerKind::ByteScheduler {
        partition: 1_000_000,
        credit: 4_000_000,
    };
    let cases = [
        (
            "bg_fifo_bytescheduler_gap500",
            scenario(FabricModel::SerialFifo, bs, 500),
        ),
        (
            "bg_fifo_baseline_gap500",
            scenario(FabricModel::SerialFifo, SchedulerKind::Baseline, 500),
        ),
        (
            "bg_fluid_bytescheduler_gap500",
            scenario(FabricModel::FairShare, bs, 500),
        ),
        (
            "bg_fifo_bytescheduler_saturating",
            scenario(FabricModel::SerialFifo, bs, 0),
        ),
    ];
    let doc = Value::Array(
        cases
            .iter()
            .map(|(label, cfg)| fingerprint(label, &run(cfg)))
            .collect(),
    );
    serde_json::to_string_pretty(&doc).expect("render fingerprint") + "\n"
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_background.json")
}

#[test]
fn background_load_matches_committed_fixture() {
    let actual = render();
    let path = fixture_path();
    if std::env::var("BS_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &actual).expect("write fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BS_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "co-tenant traffic diverged from the golden fixture; if the \
         behaviour change is intentional, regenerate with BS_UPDATE_GOLDEN=1 \
         and review the diff"
    );
}
