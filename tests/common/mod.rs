//! Golden-scenario helpers shared by the trace and telemetry test
//! binaries: the comm-heavy toy model, its pinned `WorldConfig`, and the
//! fingerprint rendering that `tests/fixtures/golden_comm_heavy.json`
//! stores. Kept here so `metrics_schema.rs` can prove telemetry-on runs
//! reproduce the *same* fixture `golden_trace.rs` pins for plain runs.

pub mod schema;

use bs_engine::EngineConfig;
use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::{run, Arch, RunResult, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use serde_json::Value;

/// The comm-heavy toy shared with the runtime tests and the perf runner:
/// a big first tensor so scheduling order matters.
pub fn comm_heavy() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            40_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l1",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l2",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l3",
            1_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .build()
}

/// The pinned golden configuration on the given fabric.
pub fn scenario(fabric: FabricModel) -> WorldConfig {
    let mut c = WorldConfig::new(
        comm_heavy(),
        2,
        Arch::ps(2),
        NetConfig::gbps(10.0, Transport::tcp()),
        EngineConfig::mxnet_ps(),
        SchedulerKind::ByteScheduler {
            partition: 1_000_000,
            credit: 4_000_000,
        },
    );
    c.fabric = fabric;
    c.iters = 8;
    c.warmup = 2;
    // Non-zero jitter so the fixture also pins the RNG stream.
    c.jitter = 0.02;
    c.seed = 7;
    c
}

/// The determinism-relevant surface of a run, rendered to JSON. Includes
/// every quantity a fabric or event-loop change could disturb: virtual
/// end time in nanoseconds, the full per-iteration timing vector, byte
/// and event counts.
pub fn fingerprint(label: &str, r: &RunResult) -> Value {
    let fields = vec![
        ("scenario".to_string(), Value::Str(label.to_string())),
        ("scheduler".to_string(), Value::Str(r.scheduler.to_string())),
        (
            "finished_at_ns".to_string(),
            Value::U64(r.finished_at.as_nanos()),
        ),
        (
            "iter_times".to_string(),
            Value::Array(r.iter_times.iter().map(|t| Value::F64(*t)).collect()),
        ),
        ("speed".to_string(), Value::F64(r.speed)),
        ("p2p_bytes".to_string(), Value::U64(r.p2p_bytes)),
        ("comm_events".to_string(), Value::U64(r.comm_events)),
        (
            "peak_in_flight".to_string(),
            Value::U64(r.peak_in_flight as u64),
        ),
    ];
    Value::Object(fields)
}

/// Where the committed fixture lives.
#[allow(dead_code)]
pub fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_comm_heavy.json")
}

/// Renders both-fabric fingerprints, optionally with telemetry recording
/// on. Telemetry is recording-only, so the rendered bytes must be the
/// same either way — `metrics_schema.rs` asserts exactly that.
// Each test binary compiles its own copy of this module; not all of them
// call the render helpers (`faults.rs` fingerprints custom configs).
#[allow(dead_code)]
pub fn render(record_metrics: bool) -> String {
    render_with(record_metrics, false)
}

/// [`render`] with independent control of both recording subsystems.
/// Xray is recording-only too, so `xray_schema.rs` demands the same
/// fixture bytes with `record_xray` on.
#[allow(dead_code)]
pub fn render_with(record_metrics: bool, record_xray: bool) -> String {
    let mut fifo_cfg = scenario(FabricModel::SerialFifo);
    let mut fluid_cfg = scenario(FabricModel::FairShare);
    for cfg in [&mut fifo_cfg, &mut fluid_cfg] {
        cfg.record_metrics = record_metrics;
        cfg.record_xray = record_xray;
    }
    let fifo = run(&fifo_cfg);
    let fluid = run(&fluid_cfg);
    let doc = Value::Array(vec![
        fingerprint("comm_heavy_ps_fifo", &fifo),
        fingerprint("comm_heavy_ps_fluid", &fluid),
    ]);
    serde_json::to_string_pretty(&doc).expect("render fingerprint") + "\n"
}
