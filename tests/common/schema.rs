//! Schema helpers shared by the export-contract tests
//! (`metrics_schema.rs`, `xray_schema.rs`, `faults.rs`,
//! `replay_ingest.rs`).
//!
//! The draft-07-subset validator itself was promoted into
//! `bs_replay::schema` (trace ingestion needs it at runtime, not just in
//! tests); this module re-exports it and keeps the committed-schema
//! loader, which is test-suite-specific (workspace-root `results/`
//! lookup).

#[allow(unused_imports)]
pub use bs_replay::schema::validate;

use serde_json::Value;

/// Loads a committed schema from `results/<name>` at the workspace root.
pub fn committed(name: &str) -> Value {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing schema {} ({e})", path.display()));
    serde_json::from_str(&text).expect("schema parses as JSON")
}
