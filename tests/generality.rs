//! The paper's headline claim, end-to-end: "ByteScheduler accelerates
//! training with all experimented system configurations and DNN models."
//!
//! These tests run the complete stack — engine simulator, PS / ring
//! backends, network, scheduler, auto-tuner — over the full setup × model
//! grid at smoke fidelity and assert the orderings every figure depends
//! on. (Exact magnitudes live in EXPERIMENTS.md at full fidelity.)

use bytescheduler::harness::{tune, Fidelity, Setup};
use bytescheduler::models::zoo;
use bytescheduler::runtime::{run, RunResult, SchedulerKind};

fn baseline_and_tuned(
    setup: Setup,
    model: bs_models::DnnModel,
    gpus: u64,
) -> (RunResult, RunResult) {
    let fid = Fidelity::quick();
    let mut base = setup.config(model, gpus, 100.0, SchedulerKind::Baseline);
    fid.apply(&mut base);
    let baseline = run(&base);
    let outcome = tune(&base, setup.search_space(), fid.tune_trials, 11);
    let mut bs = base.clone();
    bs.scheduler = SchedulerKind::ByteScheduler {
        partition: outcome.partition,
        credit: outcome.credit,
    };
    (baseline, run(&bs))
}

/// ByteScheduler never loses to the baseline across the full grid. A 2 %
/// tolerance absorbs profiling noise at smoke fidelity; the paper's
/// actual claim is strictly positive gains.
#[test]
fn bytescheduler_accelerates_every_setup_and_model() {
    for setup in Setup::all() {
        for model in zoo::benchmark_models() {
            let name = model.name.clone();
            let (baseline, tuned) = baseline_and_tuned(setup, model, 16);
            assert!(
                tuned.speed >= baseline.speed * 0.98,
                "{name} on {}: tuned {} vs baseline {}",
                setup.label(),
                tuned.speed,
                baseline.speed
            );
        }
    }
}

/// Nothing may exceed linear scaling (modulo measurement noise): the
/// sanity ceiling every panel of Figures 10–12 shares.
#[test]
fn nothing_beats_linear_scaling() {
    for setup in [Setup::MxnetPsRdma, Setup::MxnetNcclRdma] {
        let model = zoo::vgg16();
        let fid = Fidelity::quick();
        let mut base = setup.config(model, 16, 100.0, SchedulerKind::Baseline);
        fid.apply(&mut base);
        let linear = base.linear_scaling_speed();
        let (baseline, tuned) = baseline_and_tuned(setup, zoo::vgg16(), 16);
        for r in [&baseline, &tuned] {
            assert!(
                r.speed <= linear * 1.03,
                "{} {} exceeds linear {linear}",
                r.scheduler,
                r.speed
            );
        }
    }
}

/// §6.2's architecture ordering: PS gains exceed all-reduce gains for the
/// same communication-bound model, because PS benefits additionally from
/// duplex pipelining and load balancing.
#[test]
fn ps_gains_exceed_allreduce_gains() {
    let (b_ps, t_ps) = baseline_and_tuned(Setup::MxnetPsRdma, zoo::vgg16(), 16);
    let (b_ar, t_ar) = baseline_and_tuned(Setup::MxnetNcclRdma, zoo::vgg16(), 16);
    let ps_gain = t_ps.speedup_over(&b_ps);
    let ar_gain = t_ar.speedup_over(&b_ar);
    assert!(
        ps_gain > ar_gain,
        "PS gain {ps_gain:.2} must exceed all-reduce gain {ar_gain:.2}"
    );
}

/// §6.2's model ordering at 100 Gbps: ResNet-50 (compute-bound) gains the
/// least among the three benchmark models on PS RDMA.
#[test]
fn resnet_gains_least_at_100gbps() {
    let gain = |model| {
        let (b, t) = baseline_and_tuned(Setup::MxnetPsRdma, model, 16);
        t.speedup_over(&b)
    };
    let g_vgg = gain(zoo::vgg16());
    let g_res = gain(zoo::resnet50());
    let g_trn = gain(zoo::transformer());
    assert!(
        g_res <= g_vgg && g_res <= g_trn,
        "ResNet {g_res:.2} must gain least (vgg {g_vgg:.2}, transformer {g_trn:.2})"
    );
}

/// The P3 comparison in its only supported setup (MXNet PS TCP): baseline
/// < P3 < ByteScheduler, as Figure 10(a)/11(a)/12(a) show.
#[test]
fn p3_sits_between_baseline_and_bytescheduler() {
    let setup = Setup::MxnetPsTcp;
    let fid = Fidelity::quick();
    let (baseline, tuned) = baseline_and_tuned(setup, zoo::vgg16(), 32);
    let mut p3_cfg = setup.config(zoo::vgg16(), 32, 100.0, SchedulerKind::P3);
    fid.apply(&mut p3_cfg);
    let p3 = run(&p3_cfg);
    assert!(
        p3.speed > baseline.speed,
        "P3 {} vs baseline {}",
        p3.speed,
        baseline.speed
    );
    assert!(
        tuned.speed > p3.speed,
        "BS {} vs P3 {}",
        tuned.speed,
        p3.speed
    );
}

/// §6.1's aside, verified: "the training speedup of asynchronous mode is
/// similar" — the ByteScheduler gain under async PS lands near the sync
/// gain for the same workload.
#[test]
fn async_ps_speedup_is_similar_to_sync() {
    use bytescheduler::comm::PsMode;
    use bytescheduler::runtime::Arch;
    let fid = Fidelity::quick();
    let gain = |mode: PsMode| {
        let mk = |sched| {
            let mut cfg = Setup::MxnetPsRdma.config(zoo::vgg16(), 32, 100.0, sched);
            fid.apply(&mut cfg);
            cfg.arch = Arch::Ps {
                mode,
                num_servers: 4,
                baseline_bigarray_split: false,
            };
            run(&cfg).speed
        };
        let base = mk(SchedulerKind::Baseline);
        let bs = mk(SchedulerKind::ByteScheduler {
            partition: 4 << 20,
            credit: 32 << 20,
        });
        bs / base - 1.0
    };
    let sync_gain = gain(PsMode::Synchronous);
    let async_gain = gain(PsMode::Asynchronous);
    // "Similar" at the paper's granularity: both substantial, same order
    // of magnitude. (The async *baseline* is already faster — no waiting
    // for the slowest pusher — so its headroom is genuinely smaller.)
    assert!(
        sync_gain > 0.3,
        "sync gain {sync_gain:.2} should be substantial"
    );
    assert!(
        async_gain > 0.3,
        "async gain {async_gain:.2} should be substantial"
    );
    assert!(
        async_gain > sync_gain * 0.25 && async_gain < sync_gain * 4.0,
        "gains should be the same order: sync {sync_gain:.2} vs async {async_gain:.2}"
    );
}

/// Crossing the barrier makes the engine flavour irrelevant: TF-style and
/// MXNet-style engines under ByteScheduler land within noise of each
/// other on identical hardware.
#[test]
fn scheduled_engines_converge_across_frameworks() {
    let fid = Fidelity::quick();
    let sched = SchedulerKind::ByteScheduler {
        partition: 4 << 20,
        credit: 16 << 20,
    };
    let speed = |setup: Setup| {
        let mut cfg = setup.config(zoo::vgg16(), 16, 100.0, sched);
        fid.apply(&mut cfg);
        cfg.jitter = 0.0;
        run(&cfg).speed
    };
    let mxnet = speed(Setup::MxnetPsTcp);
    let tf = speed(Setup::TfPsTcp);
    let rel = (mxnet - tf).abs() / mxnet;
    assert!(rel < 0.02, "MXNet {mxnet} vs TF {tf}: {rel:.3} apart");
}
