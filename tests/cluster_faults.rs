//! Cluster-scope fault-plan contract tests: the committed cluster fault
//! fixture (the one `cluster --faults` and the migration study default
//! to), loss projection onto co-scheduled jobs, and the fail-closed
//! retry cap at cluster scope.

mod common;

use bytescheduler::cluster::{run_cluster, ClusterConfig, JobSpec, PlacementPolicy};
use bytescheduler::faults::{
    FaultPlan, LinkDir, LinkEvent, MachineFailure, RecoveryPolicy, StragglerSpec,
};
use bytescheduler::net::FabricModel;
use bytescheduler::runtime::RunOutcome;
use serde_json::Value;

/// The committed cluster fault plan, defined in code so the fixture file
/// is provably a render of this value (byte-stable round trip).
///
/// Machine 1 fails at 150 ms and restores at 60 s — long past both jobs'
/// natural finish, so riding out the outage is always the losing arm of
/// the migration study. The link event halves machine 2's NIC for a
/// second, one worker straggles for two iterations, and a trickle of
/// loss keeps the recovery path exercised.
fn fixture_plan() -> FaultPlan {
    FaultPlan {
        link_events: vec![
            LinkEvent {
                at_us: 200_000,
                node: 2,
                dir: LinkDir::Up,
                scale: 0.5,
            },
            LinkEvent {
                at_us: 200_000,
                node: 2,
                dir: LinkDir::Down,
                scale: 0.5,
            },
            LinkEvent {
                at_us: 1_200_000,
                node: 2,
                dir: LinkDir::Up,
                scale: 1.0,
            },
            LinkEvent {
                at_us: 1_200_000,
                node: 2,
                dir: LinkDir::Down,
                scale: 1.0,
            },
        ],
        flaps: Vec::new(),
        loss_rate: 0.001,
        stragglers: vec![StragglerSpec {
            worker: 1,
            from_iter: 2,
            to_iter: 4,
            factor: 1.3,
        }],
        machine_failures: vec![MachineFailure {
            machine: 1,
            at_us: 150_000,
            restore_us: Some(60_000_000),
        }],
        recovery: RecoveryPolicy {
            timeout_us: 5_000,
            max_retries: 10,
        },
    }
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/cluster_fault_plan.json")
}

/// The committed fixture file is byte-for-byte the render of
/// [`fixture_plan`]. Regenerate after an intentional change with
/// `BS_UPDATE_GOLDEN=1 cargo test --test cluster_faults`.
#[test]
fn committed_cluster_plan_is_a_render_of_the_code_plan() {
    let rendered = fixture_plan().to_json();
    let path = fixture_path();
    if std::env::var("BS_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &rendered).expect("write fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing cluster fault fixture {} ({e}); run with BS_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, committed,
        "tests/fixtures/cluster_fault_plan.json diverged from fixture_plan(); \
         regenerate with BS_UPDATE_GOLDEN=1 and review the diff"
    );
}

/// The committed plan round-trips through its JSON form and validates
/// against the committed v2 schema (machine_failures included).
#[test]
fn committed_cluster_plan_round_trips_and_matches_schema() {
    let plan = fixture_plan();
    assert!(!plan.is_empty());
    let again = FaultPlan::from_json(&plan.to_json()).expect("rendered plan parses");
    assert_eq!(plan, again);
    let schema = common::schema::committed("fault_plan.schema.json");
    let doc: Value = serde_json::from_str(&plan.to_json()).expect("rendered parses");
    let mut errs = Vec::new();
    common::schema::validate(&schema, &doc, "$", &mut errs);
    assert!(errs.is_empty(), "schema violations:\n{}", errs.join("\n"));
}

/// Two co-scheduled jobs sharing 4 machines under the golden toy config.
fn two_job_cluster(plan: FaultPlan) -> bytescheduler::cluster::ClusterResult {
    // Same seed on purpose: any divergence between the two jobs under a
    // cluster-scope loss plan comes from the per-job RNG split alone.
    let a = common::scenario(FabricModel::SerialFifo);
    let b = common::scenario(FabricModel::SerialFifo);
    let mut cluster = ClusterConfig::new(4, a.net);
    cluster.placement = PlacementPolicy::Packed;
    cluster.faults = Some(plan);
    run_cluster(
        &cluster,
        &[JobSpec::train("job0", a), JobSpec::train("job1", b)],
    )
}

/// A cluster-scope loss plan projects onto every co-scheduled training
/// job through the per-job RNG split: same seed, different drop streams.
/// Both jobs recover (DegradedCompleted), their retry counts differ, and
/// the whole run replays bit-identically.
#[test]
fn cluster_loss_splits_per_job_and_replays_deterministically() {
    let plan = FaultPlan {
        loss_rate: 0.05,
        recovery: RecoveryPolicy {
            timeout_us: 1_000,
            max_retries: 40,
        },
        ..FaultPlan::empty()
    };
    let r = two_job_cluster(plan.clone());
    let retries: Vec<u64> = r
        .jobs
        .iter()
        .map(|j| match j.result.outcome {
            RunOutcome::DegradedCompleted { retries, .. } => {
                assert!(retries > 0, "{}: loss must force retransmits", j.name);
                retries
            }
            ref o => panic!("{}: expected DegradedCompleted, got {o:?}", j.name),
        })
        .collect();
    assert_ne!(
        retries[0], retries[1],
        "identically-seeded jobs must draw from split loss streams"
    );
    // Determinism: an in-process rerun agrees on every nanosecond.
    let again = two_job_cluster(plan);
    for (x, y) in r.jobs.iter().zip(again.jobs.iter()) {
        assert_eq!(x.finished_at, y.finished_at, "{}: finish time", x.name);
        assert_eq!(x.result.outcome, y.result.outcome, "{}: outcome", x.name);
        assert_eq!(x.result.iter_times, y.result.iter_times, "{}", x.name);
    }
    assert_eq!(r.makespan, again.makespan);
}

/// The retry cap fails closed at cluster scope exactly as it does solo:
/// crushing loss with a one-retry budget aborts the job rather than
/// spinning forever, and the failure is reported per job.
#[test]
fn cluster_retry_cap_fails_closed() {
    let plan = FaultPlan {
        loss_rate: 0.9,
        recovery: RecoveryPolicy {
            timeout_us: 100,
            max_retries: 1,
        },
        ..FaultPlan::empty()
    };
    let r = two_job_cluster(plan);
    for j in &r.jobs {
        match &j.result.outcome {
            RunOutcome::Failed { reason } => {
                assert!(!reason.is_empty(), "{}: failure must carry a cause", j.name)
            }
            o => panic!("{}: expected Failed under a 1-retry cap, got {o:?}", j.name),
        }
    }
}
