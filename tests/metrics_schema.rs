//! The telemetry export contract, pinned two ways:
//!
//! 1. `results/metrics.schema.json` is the checked-in JSON-Schema for
//!    every `metrics.json` the harness writes. A real run's metrics are
//!    serialised, re-parsed, and validated against it here, with a
//!    validator that implements exactly the draft-07 subset the schema
//!    uses (`type`, `enum`, `required`, `properties`,
//!    `additionalProperties`, `oneOf`, `minimum`).
//! 2. Telemetry must be *recording-only*: re-rendering the golden
//!    comm-heavy fingerprints with `record_metrics = true` must
//!    reproduce `tests/fixtures/golden_comm_heavy.json` byte-for-byte.

#[allow(dead_code)]
mod common;

use bs_net::FabricModel;
use bs_runtime::run;
use serde_json::Value;

// --- A minimal JSON-Schema (draft-07 subset) validator. -----------------

fn obj(v: &Value) -> Option<&[(String, Value)]> {
    match v {
        Value::Object(entries) => Some(entries),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::I64(n) => Some(n as f64),
        Value::U64(n) => Some(n as f64),
        Value::F64(n) => Some(n),
        _ => None,
    }
}

fn type_matches(ty: &str, v: &Value) -> bool {
    match ty {
        "object" => matches!(v, Value::Object(_)),
        "array" => matches!(v, Value::Array(_)),
        "string" => matches!(v, Value::Str(_)),
        "boolean" => matches!(v, Value::Bool(_)),
        "null" => matches!(v, Value::Null),
        "integer" => matches!(v, Value::I64(_) | Value::U64(_)),
        "number" => matches!(v, Value::I64(_) | Value::U64(_) | Value::F64(_)),
        other => panic!("schema uses unsupported type {other:?}"),
    }
}

/// Literal equality for `enum`, with numbers compared numerically so
/// `1`, `1.0`, and an i64/u64 split all agree.
fn value_eq(a: &Value, b: &Value) -> bool {
    match (as_f64(a), as_f64(b)) {
        (Some(x), Some(y)) => x == y,
        _ => match (a, b) {
            (Value::Str(x), Value::Str(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Null, Value::Null) => true,
            _ => false,
        },
    }
}

fn validate(schema: &Value, v: &Value, path: &str, errs: &mut Vec<String>) {
    if let Some(Value::Array(options)) = schema.get("enum") {
        if !options.iter().any(|o| value_eq(o, v)) {
            errs.push(format!("{path}: {v:?} not in enum {options:?}"));
            return;
        }
    }
    if let Some(Value::Str(ty)) = schema.get("type") {
        if !type_matches(ty, v) {
            errs.push(format!("{path}: expected {ty}, got {v:?}"));
            return;
        }
    }
    if let Some(min) = schema.get("minimum").and_then(as_f64) {
        if let Some(x) = as_f64(v) {
            if x < min {
                errs.push(format!("{path}: {x} below minimum {min}"));
            }
        }
    }
    if let Some(Value::Array(options)) = schema.get("oneOf") {
        let matching = options
            .iter()
            .filter(|opt| {
                let mut sub = Vec::new();
                validate(opt, v, path, &mut sub);
                sub.is_empty()
            })
            .count();
        if matching != 1 {
            errs.push(format!(
                "{path}: matched {matching} of {} oneOf branches (need exactly 1)",
                options.len()
            ));
        }
    }

    let Some(entries) = obj(v) else { return };
    if let Some(Value::Array(required)) = schema.get("required") {
        for name in required {
            if let Value::Str(name) = name {
                if !entries.iter().any(|(k, _)| k == name) {
                    errs.push(format!("{path}: missing required property {name:?}"));
                }
            }
        }
    }
    let props = schema.get("properties").and_then(obj).unwrap_or(&[]);
    let additional = schema.get("additionalProperties");
    for (key, val) in entries {
        match props.iter().find(|(name, _)| name == key) {
            Some((_, sub)) => validate(sub, val, &format!("{path}/{key}"), errs),
            None => match additional {
                Some(Value::Bool(false)) => {
                    errs.push(format!("{path}: unexpected property {key:?}"));
                }
                Some(sub) if sub.is_object() => validate(sub, val, &format!("{path}/{key}"), errs),
                _ => {}
            },
        }
    }
}

fn committed_schema() -> Value {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results/metrics.schema.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing schema {} ({e})", path.display()));
    serde_json::from_str(&text).expect("schema parses as JSON")
}

/// A real run's metrics, serialised exactly as `write_metrics_json`
/// writes them and re-parsed.
fn run_metrics_doc() -> Value {
    let mut cfg = common::scenario(FabricModel::SerialFifo);
    cfg.record_metrics = true;
    let r = run(&cfg);
    let ms = r.metrics.expect("metrics recorded");
    assert!(
        ms.entries().len() > 10,
        "golden scenario should produce a non-trivial metric set"
    );
    let text = serde_json::to_string_pretty(&ms).expect("serialise metrics");
    serde_json::from_str(&text).expect("metrics.json round-trips through the parser")
}

#[test]
fn metrics_json_validates_against_committed_schema() {
    let schema = committed_schema();
    let doc = run_metrics_doc();
    let mut errs = Vec::new();
    validate(&schema, &doc, "$", &mut errs);
    assert!(errs.is_empty(), "schema violations: {errs:#?}");
}

/// The validator itself must have teeth: corrupt the document three
/// different ways and demand a complaint each time.
#[test]
fn validator_rejects_malformed_documents() {
    let schema = committed_schema();
    let good = run_metrics_doc();
    type Corruption = Box<dyn Fn(&mut Vec<(String, Value)>)>;
    let corrupt: Vec<(&str, Corruption)> = vec![
        (
            "bogus metric kind",
            Box::new(|top| {
                let Value::Object(metrics) = &mut top[2].1 else {
                    panic!("metrics object")
                };
                let Value::Object(body) = &mut metrics[0].1 else {
                    panic!("metric body")
                };
                body[0].1 = Value::Str("bogus".into());
            }),
        ),
        (
            "missing horizon_us",
            Box::new(|top| {
                top.retain(|(k, _)| k != "horizon_us");
            }),
        ),
        (
            "unexpected top-level key",
            Box::new(|top| {
                top.push(("extra".into(), Value::Null));
            }),
        ),
    ];
    for (what, mutate) in corrupt {
        let mut doc = good.clone();
        let Value::Object(top) = &mut doc else {
            panic!("top-level object")
        };
        mutate(top);
        let mut errs = Vec::new();
        validate(&schema, &doc, "$", &mut errs);
        assert!(
            !errs.is_empty(),
            "validator accepted a document with {what}"
        );
    }
}

#[test]
fn telemetry_on_reproduces_the_golden_fixture() {
    let actual = common::render(true);
    let expected = std::fs::read_to_string(common::fixture_path())
        .expect("golden fixture is committed; see tests/golden_trace.rs");
    assert_eq!(
        actual, expected,
        "recording telemetry perturbed the simulation: the golden \
         fingerprints must be identical with record_metrics on and off"
    );
}
