//! The telemetry export contract, pinned two ways:
//!
//! 1. `results/metrics.schema.json` is the checked-in JSON-Schema for
//!    every `metrics.json` the harness writes. A real run's metrics are
//!    serialised, re-parsed, and validated against it here with the
//!    shared draft-07-subset validator in `common::schema`.
//! 2. Telemetry must be *recording-only*: re-rendering the golden
//!    comm-heavy fingerprints with `record_metrics = true` must
//!    reproduce `tests/fixtures/golden_comm_heavy.json` byte-for-byte.

#[allow(dead_code)]
mod common;

use bs_net::FabricModel;
use bs_runtime::run;
use common::schema::{committed, validate};
use serde_json::Value;

/// A real run's metrics, serialised exactly as `write_metrics_json`
/// writes them and re-parsed.
fn run_metrics_doc() -> Value {
    let mut cfg = common::scenario(FabricModel::SerialFifo);
    cfg.record_metrics = true;
    let r = run(&cfg);
    let ms = r.metrics.expect("metrics recorded");
    assert!(
        ms.entries().len() > 10,
        "golden scenario should produce a non-trivial metric set"
    );
    let text = serde_json::to_string_pretty(&ms).expect("serialise metrics");
    serde_json::from_str(&text).expect("metrics.json round-trips through the parser")
}

#[test]
fn metrics_json_validates_against_committed_schema() {
    let schema = committed("metrics.schema.json");
    let doc = run_metrics_doc();
    let mut errs = Vec::new();
    validate(&schema, &doc, "$", &mut errs);
    assert!(errs.is_empty(), "schema violations: {errs:#?}");
}

/// The validator itself must have teeth: corrupt the document three
/// different ways and demand a complaint each time.
#[test]
fn validator_rejects_malformed_documents() {
    let schema = committed("metrics.schema.json");
    let good = run_metrics_doc();
    type Corruption = Box<dyn Fn(&mut Vec<(String, Value)>)>;
    let corrupt: Vec<(&str, Corruption)> = vec![
        (
            "bogus metric kind",
            Box::new(|top| {
                let Value::Object(metrics) = &mut top[2].1 else {
                    panic!("metrics object")
                };
                let Value::Object(body) = &mut metrics[0].1 else {
                    panic!("metric body")
                };
                body[0].1 = Value::Str("bogus".into());
            }),
        ),
        (
            "missing horizon_us",
            Box::new(|top| {
                top.retain(|(k, _)| k != "horizon_us");
            }),
        ),
        (
            "unexpected top-level key",
            Box::new(|top| {
                top.push(("extra".into(), Value::Null));
            }),
        ),
    ];
    for (what, mutate) in corrupt {
        let mut doc = good.clone();
        let Value::Object(top) = &mut doc else {
            panic!("top-level object")
        };
        mutate(top);
        let mut errs = Vec::new();
        validate(&schema, &doc, "$", &mut errs);
        assert!(
            !errs.is_empty(),
            "validator accepted a document with {what}"
        );
    }
}

#[test]
fn telemetry_on_reproduces_the_golden_fixture() {
    let actual = common::render(true);
    let expected = std::fs::read_to_string(common::fixture_path())
        .expect("golden fixture is committed; see tests/golden_trace.rs");
    assert_eq!(
        actual, expected,
        "recording telemetry perturbed the simulation: the golden \
         fingerprints must be identical with record_metrics on and off"
    );
}
