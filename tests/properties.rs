//! Property-based tests over the full stack: random models, random
//! configurations — the invariants must hold for *all* of them, not just
//! the benchmark trio.

use bytescheduler::core::{partition_tensor, CommKind, CommTask};
use bytescheduler::core::{ByteScheduler, FifoScheduler, P3Scheduler, Scheduler, WorkItem};
use bytescheduler::engine::EngineConfig;
use bytescheduler::models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bytescheduler::net::{NetConfig, Transport};
use bytescheduler::runtime::{run, Arch, SchedulerKind, WorldConfig};
use bytescheduler::sim::SimTime;
use proptest::prelude::*;

/// Strategy: a random small DNN (2–6 layers, 0.1–8 MB tensors, 0.5–4 ms
/// compute per pass).
fn arb_model() -> impl Strategy<Value = DnnModel> {
    proptest::collection::vec((100_000u64..8_000_000, 500u64..4_000, 500u64..4_000), 2..=6)
        .prop_map(|layers| {
            let gpu = GpuSpec::custom(1e12, 2.0);
            let mut b = ModelBuilder::new("prop", gpu, 4, SampleUnit::Images);
            for (i, (bytes, fp_us, bp_us)) in layers.into_iter().enumerate() {
                b = b.explicit(
                    format!("l{i}"),
                    bytes,
                    SimTime::from_micros(fp_us),
                    SimTime::from_micros(bp_us),
                );
            }
            b.build()
        })
}

fn small_cfg(model: DnnModel, ps: bool, sched: SchedulerKind) -> WorldConfig {
    let (workers, arch, engine) = if ps {
        (2, Arch::ps(2), EngineConfig::mxnet_ps())
    } else {
        (3, Arch::allreduce(), EngineConfig::mxnet_allreduce())
    };
    let mut cfg = WorldConfig::new(
        model,
        workers,
        arch,
        NetConfig::gbps(10.0, Transport::tcp()),
        engine,
        sched,
    );
    cfg.iters = 5;
    cfg.warmup = 1;
    cfg.jitter = 0.0;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random model trains to completion under every scheduler on
    /// both architectures, and the measured speed is positive and below
    /// linear scaling.
    #[test]
    fn any_model_runs_under_any_scheduler(model in arb_model(), ps in any::<bool>()) {
        for sched in [
            SchedulerKind::Baseline,
            SchedulerKind::P3,
            SchedulerKind::ByteScheduler { partition: 1 << 20, credit: 4 << 20 },
        ] {
            let cfg = small_cfg(model.clone(), ps, sched);
            let r = run(&cfg);
            prop_assert!(r.speed > 0.0);
            prop_assert!(r.speed <= cfg.linear_scaling_speed() * 1.01,
                "{} speed {} vs linear {}", sched.label(), r.speed, cfg.linear_scaling_speed());
        }
    }

    /// Conservation: in a PS run, the bytes crossing the wire equal
    /// iterations × workers × model size × 2 (push + pull), minus only the
    /// final iteration's possibly-dangling tail.
    #[test]
    fn ps_byte_conservation(model in arb_model()) {
        let cfg = small_cfg(model.clone(), true,
            SchedulerKind::ByteScheduler { partition: 1 << 20, credit: 4 << 20 });
        let r = run(&cfg);
        let per_iter = 2 * cfg.num_workers as u64 * model.total_param_bytes();
        let lo = (cfg.iters - 1) * per_iter;
        let hi = cfg.iters * per_iter;
        prop_assert!(r.p2p_bytes >= lo && r.p2p_bytes <= hi,
            "delivered {} outside [{lo}, {hi}]", r.p2p_bytes);
    }

    /// Partitioning is a partition: sizes sum to the original, every piece
    /// respects δ, indices are dense.
    #[test]
    fn partitioning_is_lossless(bytes in 1u64..1_000_000_000, unit in 1u64..50_000_000) {
        let task = CommTask { tensor: 0, kind: CommKind::Push, bytes };
        let parts = partition_tensor(&task, Some(unit));
        prop_assert_eq!(parts.iter().map(|p| p.bytes).sum::<u64>(), bytes);
        prop_assert!(parts.iter().all(|p| p.bytes <= unit));
        for (i, p) in parts.iter().enumerate() {
            prop_assert_eq!(p.part as usize, i);
            prop_assert_eq!(p.num_parts as usize, parts.len());
        }
    }

    /// Scheduler contract for random workloads: no items lost, FIFO lanes
    /// conserve work, and ByteScheduler drains in priority order when
    /// everything is submitted before the first poll.
    #[test]
    fn schedulers_lose_nothing(
        items in proptest::collection::vec((0usize..2, 0u64..100, 1u64..1_000_000), 1..60),
        which in 0usize..3,
    ) {
        let mut sched: Box<dyn Scheduler> = match which {
            0 => Box::new(ByteScheduler::new(500_000, 1_000_000, 2)),
            1 => Box::new(FifoScheduler::new(2)),
            _ => Box::new(P3Scheduler::new(2)),
        };
        let now = SimTime::ZERO;
        let total = items.len();
        for (i, (lane, priority, bytes)) in items.iter().enumerate() {
            sched.submit(now, WorkItem { lane: *lane, priority: *priority, bytes: *bytes, token: i as u64 });
        }
        let mut seen = std::collections::HashSet::new();
        let mut in_flight: Vec<WorkItem> = Vec::new();
        let mut rounds = 0;
        while seen.len() < total {
            for item in sched.poll(now) {
                prop_assert!(seen.insert(item.token), "token {} started twice", item.token);
                in_flight.push(item);
            }
            if let Some(done) = in_flight.pop() {
                sched.complete(now, done.lane, done.bytes);
            } else if seen.len() < total {
                prop_assert!(false, "stalled with {} queued", sched.queued());
            }
            rounds += 1;
            prop_assert!(rounds < 10_000, "did not drain");
        }
        prop_assert_eq!(sched.queued(), 0);
    }

    /// Algorithm 1's credit invariant: the bytes ByteScheduler has
    /// released-but-uncompleted on a lane never exceed
    /// `max(credit, largest single item)` (the anti-stall rule may ship
    /// one oversized item alone, never more).
    #[test]
    fn bytescheduler_respects_its_credit_window(
        ops in proptest::collection::vec((1u64..2_000_000, 0u64..8, any::<bool>()), 1..200),
        credit in 100_000u64..4_000_000,
    ) {
        let mut s = ByteScheduler::new(1 << 20, credit, 1);
        let now = SimTime::ZERO;
        let mut in_flight: Vec<WorkItem> = Vec::new();
        let mut in_flight_bytes = 0u64;
        let mut max_item = 0u64;
        for (token, (bytes, priority, complete_one)) in ops.into_iter().enumerate() {
            s.submit(now, WorkItem { lane: 0, priority, bytes, token: token as u64 });
            max_item = max_item.max(bytes);
            for item in s.poll(now) {
                in_flight_bytes += item.bytes;
                in_flight.push(item);
            }
            prop_assert!(
                in_flight_bytes <= credit.max(max_item),
                "in flight {in_flight_bytes} exceeds window {credit} (max item {max_item})"
            );
            if complete_one {
                if let Some(done) = in_flight.pop() {
                    in_flight_bytes -= done.bytes;
                    s.complete(now, 0, done.bytes);
                }
            }
        }
    }

    /// ByteScheduler releases strictly by (priority, arrival) within a
    /// lane when credit admits one item at a time.
    #[test]
    fn bytescheduler_release_order_is_priority_sorted(
        priorities in proptest::collection::vec(0u64..50, 2..40),
    ) {
        let size = 1_000u64;
        let mut s = ByteScheduler::new(size, size, 1); // stop-and-wait
        let now = SimTime::ZERO;
        for (i, &p) in priorities.iter().enumerate() {
            s.submit(now, WorkItem { lane: 0, priority: p, bytes: size, token: i as u64 });
        }
        let mut released: Vec<u64> = Vec::new();
        loop {
            let batch = s.poll(now);
            if batch.is_empty() {
                break;
            }
            for item in batch {
                released.push(item.priority);
                s.complete(now, 0, size);
            }
        }
        prop_assert_eq!(released.len(), priorities.len());
        let mut sorted = priorities.clone();
        sorted.sort_unstable();
        prop_assert_eq!(released, sorted);
    }
}
