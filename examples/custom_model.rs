//! Define your own model and see whether communication scheduling helps.
//!
//! ```text
//! cargo run --release --example custom_model
//! ```
//!
//! The scheduler is generic over models: it only sees per-layer tensor
//! sizes and compute times. This example builds a custom CNN with
//! [`ModelBuilder`], checks its communication-to-computation ratio, and
//! measures baseline vs ByteScheduler across *every* framework setup the
//! paper evaluates — the generality claim, on your own architecture.

use bytescheduler::harness::{Fidelity, Setup};
use bytescheduler::models::{GpuSpec, ModelBuilder, SampleUnit};
use bytescheduler::runtime::{run, SchedulerKind};

fn main() {
    // A deliberately communication-unfriendly CNN: a wide embedding-like
    // layer right at the input (highest priority, yet FIFO sends it last).
    let gpu = GpuSpec::custom(12e12, 2.0);
    let model = ModelBuilder::new("MyNet", gpu, 64, SampleUnit::Images)
        .fc("wide_in", 4096, 16384)
        .conv2d("conv1", 3, 64, 128, 56, 56)
        .conv2d("conv2", 3, 128, 256, 28, 28)
        .conv2d("conv3", 3, 256, 256, 28, 28)
        .fc("head", 4096, 1000)
        .build();

    println!(
        "{}: {} layers, {:.0} MB of gradients, {:.1} ms compute/iter",
        model.name,
        model.num_layers(),
        model.total_param_bytes() as f64 / 1e6,
        model.compute_time().as_millis_f64()
    );
    let bw = 25e9 / 8.0;
    println!(
        "comm/compute ratio at 25 Gbps: {:.2} (>1 means communication-bound)\n",
        model.comm_compute_ratio(bw)
    );

    let fid = Fidelity::quick();
    println!(
        "{:24} {:>10} {:>14} {:>8}",
        "setup", "baseline", "bytescheduler", "gain"
    );
    for setup in Setup::all() {
        let gpus = 32;
        let mut base = setup.config(model.clone(), gpus, 25.0, SchedulerKind::Baseline);
        fid.apply(&mut base);
        let baseline = run(&base);

        let outcome = bytescheduler::harness::tune(&base, setup.search_space(), fid.tune_trials, 5);
        let mut bs = base.clone();
        bs.scheduler = SchedulerKind::ByteScheduler {
            partition: outcome.partition,
            credit: outcome.credit,
        };
        let scheduled = run(&bs);
        println!(
            "{:24} {:>10.0} {:>14.0} {:>7.0}%",
            setup.label(),
            baseline.speed,
            scheduled.speed,
            100.0 * scheduled.speedup_over(&baseline)
        );
    }
}
