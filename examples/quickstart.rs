//! Quickstart: accelerate VGG16 data-parallel training with ByteScheduler.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's flagship workload — VGG16 on 4 worker machines
//! (32 GPUs) with a sharded parameter server over 100 Gbps RDMA — and
//! compares the vanilla framework against ByteScheduler with auto-tuned
//! partition and credit sizes.

use bytescheduler::harness::{tune, Fidelity, Setup};
use bytescheduler::models::zoo::vgg16;
use bytescheduler::runtime::{run, SchedulerKind};
use bytescheduler::tune::SearchSpace;

fn main() {
    let setup = Setup::MxnetPsRdma;
    let gpus = 32;
    let fid = Fidelity::full();

    // 1. Vanilla baseline: FIFO communication, whole-tensor keys.
    let mut base_cfg = setup.config(vgg16(), gpus, 100.0, SchedulerKind::Baseline);
    fid.apply(&mut base_cfg);
    let baseline = run(&base_cfg);
    println!(
        "baseline:      {:8.0} images/sec  (linear scaling would be {:.0})",
        baseline.speed,
        base_cfg.linear_scaling_speed()
    );

    // 2. Auto-tune ByteScheduler's two knobs with Bayesian Optimization.
    let outcome = tune(&base_cfg, SearchSpace::ps(), fid.tune_trials, 42);
    println!(
        "auto-tuned:    partition = {:.1} MB, credit = {:.1} MB ({} profiling trials)",
        outcome.partition as f64 / 1e6,
        outcome.credit as f64 / 1e6,
        outcome.trials
    );

    // 3. Run with the scheduler enabled (in the real system: two lines of
    //    user code wrapping the KVStore; here: one config field).
    let mut bs_cfg = base_cfg.clone();
    bs_cfg.scheduler = SchedulerKind::ByteScheduler {
        partition: outcome.partition,
        credit: outcome.credit,
    };
    let scheduled = run(&bs_cfg);
    println!(
        "bytescheduler: {:8.0} images/sec  ({:+.0}% vs baseline)",
        scheduled.speed,
        100.0 * scheduled.speedup_over(&baseline)
    );
}
