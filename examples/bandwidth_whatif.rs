//! What-if: how much does communication scheduling buy at *your*
//! bandwidth?
//!
//! ```text
//! cargo run --release --example bandwidth_whatif [model]
//! ```
//!
//! where `model` is `vgg16` (default), `resnet50`, `alexnet`, `vgg19` or
//! `transformer`. Sweeps 1–100 Gbps RDMA on the PS architecture and
//! prints baseline vs auto-tuned ByteScheduler — a self-serve Figure 13.

use bytescheduler::harness::{tune, Fidelity, Setup};
use bytescheduler::models::zoo;
use bytescheduler::models::DnnModel;
use bytescheduler::runtime::{run, SchedulerKind};

fn pick_model() -> DnnModel {
    match std::env::args().nth(1).as_deref() {
        None | Some("vgg16") => zoo::vgg16(),
        Some("vgg19") => zoo::vgg19(),
        Some("alexnet") => zoo::alexnet(),
        Some("resnet50") => zoo::resnet50(),
        Some("transformer") => zoo::transformer(),
        Some(other) => {
            eprintln!("unknown model {other:?}; try vgg16 / resnet50 / transformer");
            std::process::exit(2);
        }
    }
}

fn main() {
    let model = pick_model();
    let setup = Setup::MxnetPsRdma;
    let fid = Fidelity::quick();
    println!(
        "{} on {}, 32 GPUs — {}\n",
        model.name,
        setup.label(),
        model.sample_unit.label()
    );
    println!(
        "{:>6} {:>12} {:>14} {:>8}   tuned (δ MB, c MB)",
        "Gbps", "baseline", "bytescheduler", "gain"
    );
    for gbps in [1.0, 5.0, 10.0, 25.0, 50.0, 100.0] {
        let mut base = setup.config(model.clone(), 32, gbps, SchedulerKind::Baseline);
        fid.apply(&mut base);
        let baseline = run(&base);
        let outcome = tune(&base, setup.search_space(), fid.tune_trials, 3);
        let mut bs = base.clone();
        bs.scheduler = SchedulerKind::ByteScheduler {
            partition: outcome.partition,
            credit: outcome.credit,
        };
        let scheduled = run(&bs);
        println!(
            "{:>6.0} {:>12.0} {:>14.0} {:>7.0}%   ({:.1}, {:.1})",
            gbps,
            baseline.speed,
            scheduled.speed,
            100.0 * scheduled.speedup_over(&baseline),
            outcome.partition as f64 / 1e6,
            outcome.credit as f64 / 1e6,
        );
    }
    println!(
        "\nShape to expect: large gains while communication-bound, shrinking\n\
         as bandwidth grows and compute becomes the bottleneck (§6.2)."
    );
}
