//! Crossing the global barrier (§3.4), demonstrated.
//!
//! ```text
//! cargo run --release --example barrier_crossing
//! ```
//!
//! TensorFlow and PyTorch put a global barrier between iterations
//! (Figure 3): the next forward pass cannot start until *all* of the
//! previous iteration's communication finished, so reordering transfers
//! buys nothing. ByteScheduler replaces in-graph communication with async
//! no-ops (the barrier passes immediately) and re-imposes *per-layer*
//! dependencies from outside the engine (Figure 8). This example measures
//! the same model and network under four combinations to isolate each
//! mechanism's contribution.

use bytescheduler::engine::EngineConfig;
use bytescheduler::harness::Fidelity;
use bytescheduler::models::zoo::vgg16;
use bytescheduler::net::{NetConfig, Transport};
use bytescheduler::runtime::{run, Arch, SchedulerKind, WorldConfig};

fn measure(engine: EngineConfig, sched: SchedulerKind) -> f64 {
    let mut cfg = WorldConfig::new(
        vgg16(),
        4,
        Arch::ps(4),
        NetConfig::gbps(25.0, Transport::tcp()),
        engine,
        sched,
    );
    Fidelity::quick().apply(&mut cfg);
    run(&cfg).speed
}

fn main() {
    let bs = SchedulerKind::ByteScheduler {
        partition: 4 << 20,
        credit: 16 << 20,
    };
    let rows = [
        (
            "MXNet-style engine (per-layer deps), vanilla",
            measure(EngineConfig::mxnet_ps(), SchedulerKind::Baseline),
        ),
        (
            "TF-style engine (global barrier), vanilla",
            measure(EngineConfig::tensorflow_ps(), SchedulerKind::Baseline),
        ),
        (
            "TF-style engine + ByteScheduler (barrier crossed)",
            measure(EngineConfig::tensorflow_ps(), bs),
        ),
        (
            "MXNet-style engine + ByteScheduler",
            measure(EngineConfig::mxnet_ps(), bs),
        ),
    ];
    println!("VGG16, 32 GPUs, PS over 25 Gbps TCP\n");
    for (label, speed) in rows {
        println!("{label:52} {speed:8.0} images/sec");
    }
    println!(
        "\nThe two ByteScheduler rows should match: once the barrier is\n\
         crossed and layer-wise out-of-engine dependencies are installed,\n\
         the engine's own gating style no longer matters — the property\n\
         that makes the scheduler generic."
    );
}
