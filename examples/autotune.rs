//! Watch Bayesian Optimization tune the scheduler's knobs, trial by trial.
//!
//! ```text
//! cargo run --release --example autotune
//! ```
//!
//! Reproduces the §4.3 workflow interactively: the training speed
//! `D(δ, c)` is a noisy black box; BO proposes a (partition, credit)
//! pair, the simulator profiles it, and the Gaussian-process posterior
//! sharpens. Compare the trial count against a grid: 14 trials here vs
//! 25+ for a coarse 5×5 grid.

use bytescheduler::harness::{Fidelity, Setup};
use bytescheduler::models::zoo::transformer;
use bytescheduler::runtime::{run, SchedulerKind};
use bytescheduler::tune::{BayesOpt, Tuner};

fn main() {
    let setup = Setup::MxnetNcclRdma;
    let fid = Fidelity::quick();
    let mut base = setup.config(transformer(), 32, 100.0, SchedulerKind::Baseline);
    fid.apply(&mut base);
    let baseline = run(&base).speed;
    let space = setup.search_space();

    println!(
        "tuning Transformer on {} (baseline {:.0} tokens/sec)\n",
        setup.label(),
        baseline
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10}",
        "trial", "δ (MB)", "c (MB)", "speed", "best"
    );

    let mut bo = BayesOpt::new(2026);
    let mut best = f64::MIN;
    for trial in 1..=14 {
        let x = bo.suggest();
        let (partition, credit) = space.decode(x);
        let mut cfg = base.clone();
        cfg.scheduler = SchedulerKind::ByteScheduler { partition, credit };
        cfg.seed = 100 + trial;
        let speed = run(&cfg).speed;
        bo.observe(x, speed);
        best = best.max(speed);
        println!(
            "{:>5} {:>12.1} {:>12.1} {:>12.0} {:>10.0}",
            trial,
            partition as f64 / 1e6,
            credit as f64 / 1e6,
            speed,
            best
        );
    }

    let (x, y) = bo.best().expect("trials ran");
    let (p, c) = space.decode(x);
    println!(
        "\nbest: δ = {:.1} MB, c = {:.1} MB -> {:.0} tokens/sec ({:+.0}% over baseline)",
        p as f64 / 1e6,
        c as f64 / 1e6,
        y,
        100.0 * (y / baseline - 1.0)
    );
}
