//! ByteScheduler-rs: a Rust reproduction of *"A Generic Communication
//! Scheduler for Distributed DNN Training Acceleration"* (SOSP 2019).
//!
//! This facade crate re-exports the workspace so that downstream users (and
//! the examples and integration tests in this repository) can depend on a
//! single crate:
//!
//! ```
//! use bytescheduler::models::zoo::vgg16;
//!
//! let model = vgg16();
//! assert_eq!(model.name, "VGG16");
//! ```
//!
//! The crates, bottom-up:
//!
//! * [`sim`] — discrete-event kernel (virtual time, event queue, RNG, stats).
//! * [`telemetry`] — simulation-clock metrics: counters, gauges,
//!   piecewise-constant time series with time-weighted summaries.
//! * [`models`] — DNN zoo with per-layer tensor sizes and compute times.
//! * [`net`] — duplex FIFO network ports with per-message overhead; TCP/RDMA.
//! * [`comm`] — Parameter Server and ring all-reduce architectures.
//! * [`engine`] — framework-engine simulator (declarative / imperative,
//!   global barrier, Dependency Proxies).
//! * [`core`] — the paper's contribution: the generic scheduler Core
//!   (CommTask abstraction, tensor partitioning, priority queue with
//!   credit-based preemption) plus the FIFO and P3 baselines.
//! * [`faults`] — deterministic fault injection: JSON fault plans (link
//!   degradation, flaps, transfer loss, stragglers) and the recovery
//!   policy (timeout, exponential backoff, retry cap) the runtime applies.
//! * [`runtime`] — the world driver wiring all of the above into a
//!   multi-worker training simulation.
//! * [`cluster`] — multi-job cluster simulation: N concurrent training
//!   jobs contending on one shared fabric, placement policies, and
//!   cluster-level metrics (JCT, makespan, Jain's fairness).
//! * [`scope`] — in-run observation bus: live structured lifecycle
//!   events on the simulation clock, windowed rollups, the flight
//!   recorder behind `events.jsonl` and the `--watch` live table.
//! * [`xray`] — causal event tracing and critical-path attribution:
//!   per-partition lifecycle records analyzed into per-iteration
//!   {compute, wire, credit-wait, queue-wait, aggregation, barrier}
//!   breakdowns (`critical_path.json`).
//! * [`tune`] — Bayesian-Optimization auto-tuning of partition and credit
//!   sizes, with grid / random / SGD-momentum comparison tuners.
//! * [`harness`] — one experiment runner per paper table and figure.

pub use bs_cluster as cluster;
pub use bs_comm as comm;
pub use bs_core as core;
pub use bs_engine as engine;
pub use bs_faults as faults;
pub use bs_harness as harness;
pub use bs_models as models;
pub use bs_net as net;
pub use bs_runtime as runtime;
pub use bs_scope as scope;
pub use bs_sim as sim;
pub use bs_telemetry as telemetry;
pub use bs_tune as tune;
pub use bs_xray as xray;
