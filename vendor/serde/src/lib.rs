//! Offline stand-in for [serde](https://serde.rs).
//!
//! This workspace is built and tested in environments with no access to
//! crates.io, so the real serde dependency tree cannot be fetched. The
//! code base only needs one capability from serde — `#[derive(Serialize)]`
//! feeding `serde_json::to_string_pretty` for experiment result files —
//! so this stub provides exactly that: a [`Serialize`] trait that renders
//! a value into an owned JSON [`Value`] tree, a derive macro for it, and
//! a no-op `Deserialize` derive for signature compatibility.
//!
//! The API is intentionally *not* the real serde data model (no
//! `Serializer` visitors); nothing in the workspace implements or calls
//! `Serialize` manually, so the simple tree-building form suffices and
//! keeps the stub auditable.

/// An owned JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number (non-finite values render as `null`).
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered, matching struct field order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// True if this is a JSON array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True if this is a JSON object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Object field / array index lookup; `None` on kind mismatch.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Renders `self` into a JSON [`Value`] tree.
pub trait Serialize {
    /// The value as a JSON document tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort object keys for hash maps.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

/// Marker trait mirroring serde's `Deserialize`; never used for actual
/// decoding in this workspace (only `serde_json::Value` is ever parsed).
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_kinds() {
        assert_eq!(3u64.to_value(), Value::U64(3));
        assert_eq!((-2i32).to_value(), Value::I64(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u64, "a")].to_value();
        assert!(v.is_array());
        let Value::Array(items) = v else {
            unreachable!()
        };
        assert_eq!(
            items[0],
            Value::Array(vec![Value::U64(1), Value::Str("a".into())])
        );
    }
}
