//! Offline stand-in for `serde_json`.
//!
//! Provides the two entry points the workspace uses: [`to_string_pretty`]
//! for writing experiment results, and [`from_str`] for parsing a JSON
//! document into a [`Value`] tree (used by tests to validate emitted
//! JSON). The number formatting follows Rust's shortest-round-trip `f64`
//! display, which is stable across runs and platforms for identical bits.

pub use serde::Value;

/// Serialisation / parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for Error {}

/// Renders `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integral value: render without a fractional part, with `.0`
        // so it survives a JSON round-trip as a float.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_number(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_value(out, item, indent + 1);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_number(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

/// Parses a JSON document into a [`Value`] tree.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed for the
                            // workspace's output; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
            ("we\"ird\\s".into(), Value::Str("x\ny".into())),
        ]);
        let s = {
            let mut out = String::new();
            write_value(&mut out, &v, 0);
            out
        };
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn parses_chrome_trace_shapes() {
        let v = from_str(r#"[{"ph":"M","ts":50.000,"args":{"name":"w"}},{"ph":"X"}]"#).unwrap();
        assert!(v.is_array());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn integral_floats_keep_a_fraction_marker() {
        let mut out = String::new();
        write_number(&mut out, 3.0);
        assert_eq!(out, "3.0");
    }
}
