//! Offline stand-in for [proptest](https://proptest-rs.github.io/proptest).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, range / tuple / `collection::vec`
//! strategies, `any::<T>()`, `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking** — a failing case reports its inputs (via the
//!   panic message of the underlying `assert!`) but is not minimised.
//! * **Deterministic seeding** — cases derive from a fixed seed hashed
//!   with the test's name, so failures reproduce exactly; there is no
//!   `PROPTEST_` environment-variable machinery and no persistence
//!   (`*.proptest-regressions` files are ignored).

use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator state (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from the test's name, so every test
    /// gets a distinct but reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform fraction in `[0, 1)`.
    pub fn fraction(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.fraction() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]: a usize, `a..b`, or `a..=b`.
    pub trait IntoSizeRange {
        /// Inclusive (min, max) length bounds.
        fn bounds(&self) -> (usize, usize);
    }
    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }
    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }
    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + (rng.below((self.max - self.min + 1) as u64) as usize);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
    /// Alias so `proptest::prelude::prop::collection::vec` style paths work.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test (no shrinking: forwards to
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn` runs its body for every generated
/// case. Accepts an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(2usize..=6), &mut rng);
            assert!((2..=6).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("lens");
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0u64..10, 1..5), &mut rng);
            assert!((1..=4).contains(&v.len()));
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 1u64..100, flag in any::<bool>(), xs in collection::vec(0u32..5, 0..4)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(xs.len() < 4);
        }
    }
}
