//! Derive macros for the offline serde stand-in.
//!
//! Implements `#[derive(Serialize)]` by hand-parsing the item's token
//! stream (no `syn`/`quote` — those are exactly the dependencies the
//! offline environment cannot fetch) and emitting an impl of the stub's
//! tree-building `Serialize` trait. `#[derive(Deserialize)]` is accepted
//! and expands to nothing; the workspace never decodes typed values.
//!
//! Supported shapes — the full set used by this workspace:
//! * structs with named fields → JSON object in field order
//! * newtype structs → transparent (the inner value)
//! * tuple structs (arity ≥ 2) → JSON array
//! * unit structs → `null`
//! * enums with unit / tuple / struct variants → externally tagged,
//!   matching real serde (`"Variant"` / `{"Variant": ...}`)
//!
//! Generic types are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match parse_item(&tokens) {
        Ok(item) => emit_impl(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

enum Item {
    Struct {
        name: String,
        body: StructBody,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum StructBody {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    body: StructBody,
}

fn parse_item(tokens: &[TokenTree]) -> Result<Item, String> {
    let mut i = 0;
    skip_attrs_and_vis(tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub: generic type `{name}` cannot derive Serialize"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    StructBody::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    StructBody::Tuple(count_tuple_fields(g.stream()))
                }
                _ => StructBody::Unit,
            };
            Ok(Item::Struct { name, body })
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                return Err("expected enum body".into());
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        other => Err(format!("serde stub: cannot derive Serialize for `{other}`")),
    }
}

/// Advances `i` past any leading attributes (`#[...]`) and a visibility
/// modifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

/// Skips a field's type (or a discriminant expression): everything up to
/// the next comma at angle-bracket depth zero. Returns with `i` on the
/// comma or at end-of-stream.
fn skip_to_toplevel_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err("expected field name".into());
        };
        fields.push(id.to_string());
        i += 1; // name
        i += 1; // ':'
        skip_to_toplevel_comma(&tokens, &mut i);
        i += 1; // ','
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        skip_to_toplevel_comma(&tokens, &mut i);
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err("expected variant name".into());
        };
        let name = id.to_string();
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                StructBody::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                StructBody::Tuple(count_tuple_fields(g.stream()))
            }
            _ => StructBody::Unit,
        };
        // Skip an optional discriminant, then the trailing comma.
        skip_to_toplevel_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

fn object_expr(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value({access_prefix}{f}))"
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn emit_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let value_expr = match body {
                StructBody::Unit => "::serde::Value::Null".to_string(),
                StructBody::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                StructBody::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                StructBody::Named(fields) => object_expr(fields, "&self."),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {value_expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        StructBody::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        StructBody::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vname:?}), {inner})]),",
                                binds.join(", ")
                            )
                        }
                        StructBody::Named(fields) => {
                            let inner = object_expr(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from({vname:?}), {inner})]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}
