//! Offline stand-in for [criterion](https://bheisler.github.io/criterion.rs).
//!
//! Provides the API surface `crates/bench/benches/*.rs` uses —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — with plain mean-of-N wall-clock
//! timing instead of criterion's statistical machinery. Good enough to
//! smoke the benches and print comparable numbers in an environment that
//! cannot fetch the real dependency tree; the tracked perf trajectory
//! lives in the `perf_baseline` runner and `BENCH_*.json`, not here.

use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` with a [`Bencher`] and prints the mean sample time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mean = if b.samples.is_empty() {
            0.0
        } else {
            b.samples.iter().sum::<f64>() / b.samples.len() as f64
        };
        println!(
            "bench {id}: {:.3} ms/iter (mean of {})",
            mean * 1e3,
            b.samples.len()
        );
        self
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `body` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(body());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

/// Declares a benchmark group; both the `name/config/targets` form and
/// the positional form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
