//! In-run observation bus: live structured lifecycle events on the
//! simulation clock.
//!
//! Everything observability-shaped before this crate was *post hoc*:
//! bs-telemetry summarises time series after the run, bs-xray analyses a
//! causal log after the run, the contention observatory reduces spans
//! after the run. The paper's §3.5 adaptation loop — and every adaptive
//! follow-up on the roadmap (AutoByte-style online re-tuning, reactive
//! cluster operations) — needs the opposite: signals *while the run is
//! in progress*, at the simulated instant they happen.
//!
//! [`ScopeBus`] is that substrate. Run loops publish [`ScopeEvent`]s as
//! they occur (iteration boundaries with their wall/stall split,
//! retransmits, fault firings, replay wave admissions, what-if batches);
//! the bus keeps a bounded ring of recent events, derives **windowed
//! rollups** online (iteration-time EMA, tumbling comm-stall windows;
//! NIC-utilisation windows arrive pre-aggregated from the fabrics), and
//! fans everything out to subscribers: the [`FlightRecorder`] serialises
//! a schema-versioned `events.jsonl`, the [`WatchTable`] prints a live
//! progress/anomaly table, and bs-tune's live drift detector turns
//! iteration events into mid-run `Drift` events.
//!
//! Ordering contract: publishers deliver events in exact simulation
//! order per job (the conservative-parallel cluster driver re-publishes
//! its replayed epochs in the sequential interleaving), and a derived
//! event is dispatched immediately after the event that caused it, so
//! the recorded stream is byte-deterministic for a given seed.
//!
//! Like every recording layer in this repo the bus is off by default and
//! recording-only: it borrows copies of values the run loops already
//! compute and never feeds anything back, so enabling it cannot change a
//! result (pinned by equality tests in bs-runtime and bs-cluster).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use bs_sim::SimTime;
use serde_json::Value;

/// Schema version stamped on every flight-recorder row (`"v"`).
pub const EVENTS_SCHEMA_VERSION: u64 = 1;

/// The committed `events.jsonl` row schema, embedded so validation never
/// depends on the working directory. Byte-identity with the committed
/// file is pinned by test.
pub const EVENTS_SCHEMA: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/events.schema.json"
));

/// EMA weight of the newest iteration in the online iteration-time
/// rollup — the same smoothing horizon as `DriftDetector::paper_default`.
pub const EMA_ALPHA: f64 = 0.3;

/// Default tumbling-window width for the online stall rollup.
pub const DEFAULT_WINDOW: SimTime = SimTime::from_millis(100);

/// Default bound on the in-memory ring of recent events.
pub const DEFAULT_RING: usize = 1024;

/// One structured lifecycle event on the simulation clock.
///
/// Events are small `Copy` rows; `at` is the simulated instant the event
/// happened (after the publishing bus applied its epoch offset).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScopeEvent {
    /// Worker 0 finished an iteration: the per-iteration progress pulse.
    /// `iter` is the 0-based iteration mark index (warmup included),
    /// `wall_secs` the time since the previous mark, split into GPU-busy
    /// and communication-stall seconds exactly as bs-telemetry accounts
    /// them. `retries` counts retransmits scheduled during the iteration.
    IterDone {
        job: usize,
        at: SimTime,
        iter: u64,
        wall_secs: f64,
        busy_secs: f64,
        stall_secs: f64,
        retries: u64,
    },
    /// A lost partition was scheduled for retransmission (bs-faults).
    Retransmit {
        job: usize,
        at: SimTime,
        worker: usize,
        tensor: u32,
        part: u32,
        iter: u64,
        bytes: u64,
        attempt: u32,
        rerouted: bool,
    },
    /// A timed link event from the fault plan fired on the fabric.
    FaultFired {
        job: usize,
        at: SimTime,
        kind: &'static str,
        node: usize,
        scale: f64,
    },
    /// Tumbling-window NIC utilisation, pre-aggregated by the fabric:
    /// `util_secs` is the exact port-seconds of utilisation inside
    /// [`start`, `at`), `mean_util` that integral divided by the window
    /// width (utilisation is summed over all port directions).
    NetWindow {
        start: SimTime,
        at: SimTime,
        util_secs: f64,
        mean_util: f64,
    },
    /// Tumbling-window communication-stall fraction for one job, derived
    /// online from `IterDone` events (an iteration is attributed to the
    /// window containing its completion).
    StallWindow {
        job: usize,
        start: SimTime,
        at: SimTime,
        wall_secs: f64,
        stall_secs: f64,
        stall_frac: f64,
    },
    /// Online iteration-time EMA, updated on every `IterDone`.
    IterEma {
        job: usize,
        at: SimTime,
        iter: u64,
        ema_secs: f64,
    },
    /// A live drift subscriber detected a throughput shift mid-run.
    Drift {
        job: usize,
        at: SimTime,
        iter: u64,
        baseline: f64,
        observed: f64,
    },
    /// A replay wave was admitted to the cluster (bs-replay).
    WaveAdmitted {
        wave: usize,
        at: SimTime,
        jobs: usize,
    },
    /// A replay wave drained; JCT summary over its jobs.
    WaveDone {
        wave: usize,
        at: SimTime,
        jobs: usize,
        jct_mean_secs: f64,
        jct_max_secs: f64,
    },
    /// One what-if batch answered by the `ReplayService` (the service
    /// runs on the wall clock, so `at` is the bus offset — zero unless
    /// the publisher set one).
    WhatIfBatch {
        batch: u64,
        at: SimTime,
        queries: usize,
        computed: usize,
        cache_hits: usize,
        batch_dedup: usize,
    },
    /// A machine failure forced the job to checkpoint: `iter` is the
    /// iteration barrier it checkpointed at, `machine` the failed machine,
    /// `cost_secs` the §7 checkpoint-restart price it will pay before
    /// resuming.
    Checkpoint {
        job: usize,
        at: SimTime,
        machine: usize,
        iter: u64,
        cost_secs: f64,
    },
    /// One of a checkpointed job's nodes was remapped onto a surviving
    /// machine: job-local `node` moves `from_machine` → `to_machine`.
    Migrate {
        job: usize,
        at: SimTime,
        node: usize,
        from_machine: usize,
        to_machine: usize,
    },
    /// A checkpointed job resumed on its new placement: `iter` is the
    /// barrier it restarts from, `lost_iters` the iterations it re-runs.
    Resume {
        job: usize,
        at: SimTime,
        iter: u64,
        lost_iters: u64,
    },
}

impl ScopeEvent {
    /// The `"type"` discriminator used in flight-recorder rows.
    pub fn kind(&self) -> &'static str {
        match self {
            ScopeEvent::IterDone { .. } => "iter_done",
            ScopeEvent::Retransmit { .. } => "retransmit",
            ScopeEvent::FaultFired { .. } => "fault_fired",
            ScopeEvent::NetWindow { .. } => "net_window",
            ScopeEvent::StallWindow { .. } => "stall_window",
            ScopeEvent::IterEma { .. } => "iter_ema",
            ScopeEvent::Drift { .. } => "drift",
            ScopeEvent::WaveAdmitted { .. } => "wave_admitted",
            ScopeEvent::WaveDone { .. } => "wave_done",
            ScopeEvent::WhatIfBatch { .. } => "whatif_batch",
            ScopeEvent::Checkpoint { .. } => "checkpoint",
            ScopeEvent::Migrate { .. } => "migrate",
            ScopeEvent::Resume { .. } => "resume",
        }
    }

    /// The simulated instant of the event.
    pub fn at(&self) -> SimTime {
        match *self {
            ScopeEvent::IterDone { at, .. }
            | ScopeEvent::Retransmit { at, .. }
            | ScopeEvent::FaultFired { at, .. }
            | ScopeEvent::NetWindow { at, .. }
            | ScopeEvent::StallWindow { at, .. }
            | ScopeEvent::IterEma { at, .. }
            | ScopeEvent::Drift { at, .. }
            | ScopeEvent::WaveAdmitted { at, .. }
            | ScopeEvent::WaveDone { at, .. }
            | ScopeEvent::WhatIfBatch { at, .. }
            | ScopeEvent::Checkpoint { at, .. }
            | ScopeEvent::Migrate { at, .. }
            | ScopeEvent::Resume { at, .. } => at,
        }
    }

    /// The job the event belongs to, if it is job-scoped.
    pub fn job(&self) -> Option<usize> {
        match *self {
            ScopeEvent::IterDone { job, .. }
            | ScopeEvent::Retransmit { job, .. }
            | ScopeEvent::FaultFired { job, .. }
            | ScopeEvent::StallWindow { job, .. }
            | ScopeEvent::IterEma { job, .. }
            | ScopeEvent::Drift { job, .. }
            | ScopeEvent::Checkpoint { job, .. }
            | ScopeEvent::Migrate { job, .. }
            | ScopeEvent::Resume { job, .. } => Some(job),
            _ => None,
        }
    }

    /// Shifts every timestamp by `off` — how a bus with a nonzero epoch
    /// offset maps run-relative events to absolute trace time.
    fn shift(mut self, off: SimTime) -> ScopeEvent {
        if off == SimTime::ZERO {
            return self;
        }
        let add = |t: SimTime| SimTime::from_nanos(t.as_nanos().saturating_add(off.as_nanos()));
        match &mut self {
            ScopeEvent::IterDone { at, .. }
            | ScopeEvent::Retransmit { at, .. }
            | ScopeEvent::FaultFired { at, .. }
            | ScopeEvent::IterEma { at, .. }
            | ScopeEvent::Drift { at, .. }
            | ScopeEvent::WaveAdmitted { at, .. }
            | ScopeEvent::WaveDone { at, .. }
            | ScopeEvent::WhatIfBatch { at, .. }
            | ScopeEvent::Checkpoint { at, .. }
            | ScopeEvent::Migrate { at, .. }
            | ScopeEvent::Resume { at, .. } => *at = add(*at),
            ScopeEvent::NetWindow { start, at, .. } | ScopeEvent::StallWindow { start, at, .. } => {
                *start = add(*start);
                *at = add(*at);
            }
        }
        self
    }

    /// Serialises the event as one flat flight-recorder row:
    /// `{"v": 1, "type": ..., "t_ns": ..., <variant fields>}`, matching
    /// `results/events.schema.json`.
    pub fn to_json(&self) -> Value {
        let mut row = vec![
            ("v".to_string(), Value::U64(EVENTS_SCHEMA_VERSION)),
            ("type".to_string(), Value::Str(self.kind().to_string())),
            ("t_ns".to_string(), Value::U64(self.at().as_nanos())),
        ];
        let mut put = |k: &str, v: Value| row.push((k.to_string(), v));
        let u = |x: u64| Value::U64(x);
        let f = Value::F64;
        match *self {
            ScopeEvent::IterDone {
                job,
                at: _,
                iter,
                wall_secs,
                busy_secs,
                stall_secs,
                retries,
            } => {
                put("job", u(job as u64));
                put("iter", u(iter));
                put("wall_secs", f(wall_secs));
                put("busy_secs", f(busy_secs));
                put("stall_secs", f(stall_secs));
                put("retries", u(retries));
            }
            ScopeEvent::Retransmit {
                job,
                at: _,
                worker,
                tensor,
                part,
                iter,
                bytes,
                attempt,
                rerouted,
            } => {
                put("job", u(job as u64));
                put("worker", u(worker as u64));
                put("tensor", u(tensor as u64));
                put("part", u(part as u64));
                put("iter", u(iter));
                put("bytes", u(bytes));
                put("attempt", u(attempt as u64));
                put("rerouted", Value::Bool(rerouted));
            }
            ScopeEvent::FaultFired {
                job,
                at: _,
                kind,
                node,
                scale,
            } => {
                put("job", u(job as u64));
                put("kind", Value::Str(kind.to_string()));
                put("node", u(node as u64));
                put("scale", f(scale));
            }
            ScopeEvent::NetWindow {
                start,
                at: _,
                util_secs,
                mean_util,
            } => {
                put("start_ns", u(start.as_nanos()));
                put("util_secs", f(util_secs));
                put("mean_util", f(mean_util));
            }
            ScopeEvent::StallWindow {
                job,
                start,
                at: _,
                wall_secs,
                stall_secs,
                stall_frac,
            } => {
                put("job", u(job as u64));
                put("start_ns", u(start.as_nanos()));
                put("wall_secs", f(wall_secs));
                put("stall_secs", f(stall_secs));
                put("stall_frac", f(stall_frac));
            }
            ScopeEvent::IterEma {
                job,
                at: _,
                iter,
                ema_secs,
            } => {
                put("job", u(job as u64));
                put("iter", u(iter));
                put("ema_secs", f(ema_secs));
            }
            ScopeEvent::Drift {
                job,
                at: _,
                iter,
                baseline,
                observed,
            } => {
                put("job", u(job as u64));
                put("iter", u(iter));
                put("baseline", f(baseline));
                put("observed", f(observed));
            }
            ScopeEvent::WaveAdmitted { wave, at: _, jobs } => {
                put("wave", u(wave as u64));
                put("jobs", u(jobs as u64));
            }
            ScopeEvent::WaveDone {
                wave,
                at: _,
                jobs,
                jct_mean_secs,
                jct_max_secs,
            } => {
                put("wave", u(wave as u64));
                put("jobs", u(jobs as u64));
                put("jct_mean_secs", f(jct_mean_secs));
                put("jct_max_secs", f(jct_max_secs));
            }
            ScopeEvent::WhatIfBatch {
                batch,
                at: _,
                queries,
                computed,
                cache_hits,
                batch_dedup,
            } => {
                put("batch", u(batch));
                put("queries", u(queries as u64));
                put("computed", u(computed as u64));
                put("cache_hits", u(cache_hits as u64));
                put("batch_dedup", u(batch_dedup as u64));
            }
            ScopeEvent::Checkpoint {
                job,
                at: _,
                machine,
                iter,
                cost_secs,
            } => {
                put("job", u(job as u64));
                put("machine", u(machine as u64));
                put("iter", u(iter));
                put("cost_secs", f(cost_secs));
            }
            ScopeEvent::Migrate {
                job,
                at: _,
                node,
                from_machine,
                to_machine,
            } => {
                put("job", u(job as u64));
                put("node", u(node as u64));
                put("from_machine", u(from_machine as u64));
                put("to_machine", u(to_machine as u64));
            }
            ScopeEvent::Resume {
                job,
                at: _,
                iter,
                lost_iters,
            } => {
                put("job", u(job as u64));
                put("iter", u(iter));
                put("lost_iters", u(lost_iters));
            }
        }
        Value::Object(row)
    }
}

/// A bus subscriber. `on_event` sees every event (published and derived)
/// in dispatch order and may emit *derived* events by pushing onto
/// `out`; derived events are dispatched — to every subscriber and the
/// ring — immediately after the batch containing their cause, in push
/// order. Timestamps pushed onto `out` must already be absolute (the
/// bus's epoch offset is applied only to externally published events).
pub trait ScopeSubscriber: Send {
    /// Handles one event; may push derived events onto `out`.
    fn on_event(&mut self, ev: &ScopeEvent, out: &mut Vec<ScopeEvent>);
    /// Called once when the publisher closes the stream at `now`.
    fn on_finish(&mut self, _now: SimTime, _out: &mut Vec<ScopeEvent>) {}
}

/// Per-job state of the built-in rollups.
#[derive(Default)]
struct JobRoll {
    /// Iteration-time EMA.
    ema: Option<f64>,
    /// Open stall window: (window index, wall seconds, stall seconds).
    win: Option<(u64, f64, f64)>,
}

/// The observation bus: bounded ring of recent events, built-in windowed
/// rollups, and fan-out to subscribers. See the module docs for the
/// ordering and recording-only contracts.
pub struct ScopeBus {
    capacity: usize,
    ring: VecDeque<ScopeEvent>,
    subs: Vec<Box<dyn ScopeSubscriber>>,
    /// Epoch offset added to every published event's timestamps — how
    /// bs-replay maps per-wave run-relative clocks onto trace time.
    offset: SimTime,
    /// Tumbling-window width of the stall and NIC rollups.
    window: SimTime,
    rolls: Vec<JobRoll>,
    scratch: Vec<ScopeEvent>,
    published: u64,
}

impl Default for ScopeBus {
    fn default() -> ScopeBus {
        ScopeBus::new()
    }
}

impl ScopeBus {
    /// A bus with the default ring bound and window width.
    pub fn new() -> ScopeBus {
        ScopeBus::with_capacity(DEFAULT_RING)
    }

    /// A bus whose ring keeps at most `capacity` recent events.
    pub fn with_capacity(capacity: usize) -> ScopeBus {
        ScopeBus {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            subs: Vec::new(),
            offset: SimTime::ZERO,
            window: DEFAULT_WINDOW,
            rolls: Vec::new(),
            scratch: Vec::new(),
            published: 0,
        }
    }

    /// Attaches a subscriber; it sees every subsequent event.
    pub fn subscribe(&mut self, sub: Box<dyn ScopeSubscriber>) {
        self.subs.push(sub);
    }

    /// Sets the epoch offset applied to subsequently published events.
    pub fn set_offset(&mut self, offset: SimTime) {
        self.offset = offset;
    }

    /// The tumbling-window width rollups (and fabric NIC windows) use.
    pub fn window(&self) -> SimTime {
        self.window
    }

    /// Overrides the tumbling-window width (before the run starts).
    pub fn set_window(&mut self, window: SimTime) {
        assert!(window > SimTime::ZERO, "window width must be positive");
        self.window = window;
    }

    /// Publishes one event: applies the epoch offset, feeds the rollups,
    /// fans out to subscribers (dispatching any derived events in
    /// order), and records everything in the ring.
    pub fn publish(&mut self, ev: ScopeEvent) {
        let ev = ev.shift(self.offset);
        self.dispatch(ev);
    }

    /// Closes the stream at `now` (absolute time; the offset is not
    /// applied): flushes open rollup windows and lets every subscriber
    /// emit its final derived events.
    pub fn finish(&mut self, now: SimTime) {
        let window = self.window;
        let mut flush = Vec::new();
        for (job, roll) in self.rolls.iter_mut().enumerate() {
            if let Some(win) = roll.win.take() {
                flush.push(close_window(job, win, window, Some(now)));
            }
        }
        let mut subs = std::mem::take(&mut self.subs);
        for s in &mut subs {
            s.on_finish(now, &mut flush);
        }
        self.subs = subs;
        for ev in flush {
            self.dispatch(ev);
        }
    }

    /// The most recent events, oldest first (bounded by the ring size).
    pub fn recent(&self) -> impl Iterator<Item = &ScopeEvent> {
        self.ring.iter()
    }

    /// Total events dispatched (published + derived), ignoring the ring
    /// bound.
    pub fn events_seen(&self) -> u64 {
        self.published
    }

    /// Worklist dispatch: processes `first` and then, in FIFO order,
    /// every event derived from it (transitively).
    fn dispatch(&mut self, first: ScopeEvent) {
        let mut queue = std::mem::take(&mut self.scratch);
        queue.clear();
        queue.push(first);
        let mut i = 0;
        while i < queue.len() {
            let e = queue[i];
            i += 1;
            self.rollup(&e, &mut queue);
            for s in &mut self.subs {
                s.on_event(&e, &mut queue);
            }
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(e);
            self.published += 1;
        }
        queue.clear();
        self.scratch = queue;
    }

    /// Built-in rollups: iteration-time EMA and per-job tumbling stall
    /// windows, both derived from `IterDone`.
    fn rollup(&mut self, ev: &ScopeEvent, out: &mut Vec<ScopeEvent>) {
        let ScopeEvent::IterDone {
            job,
            at,
            iter,
            wall_secs,
            stall_secs,
            ..
        } = *ev
        else {
            return;
        };
        if self.rolls.len() <= job {
            self.rolls.resize_with(job + 1, JobRoll::default);
        }
        let window = self.window;
        let roll = &mut self.rolls[job];

        let ema = match roll.ema {
            None => wall_secs,
            Some(prev) => EMA_ALPHA * wall_secs + (1.0 - EMA_ALPHA) * prev,
        };
        roll.ema = Some(ema);
        out.push(ScopeEvent::IterEma {
            job,
            at,
            iter,
            ema_secs: ema,
        });

        let idx = at.as_nanos() / window.as_nanos().max(1);
        match &mut roll.win {
            Some((open, wall, stall)) if *open == idx => {
                *wall += wall_secs;
                *stall += stall_secs;
            }
            other => {
                if let Some(win) = other.take() {
                    out.push(close_window(job, win, window, None));
                }
                *other = Some((idx, wall_secs, stall_secs));
            }
        }
    }
}

/// Closes a stall window accumulator into its event. `now` clamps the
/// window end when the stream finishes mid-window.
fn close_window(
    job: usize,
    (idx, wall, stall): (u64, f64, f64),
    window: SimTime,
    now: Option<SimTime>,
) -> ScopeEvent {
    let w = window.as_nanos().max(1);
    let start = SimTime::from_nanos(idx.saturating_mul(w));
    let mut end = SimTime::from_nanos(idx.saturating_add(1).saturating_mul(w));
    if let Some(now) = now {
        if now > start && now < end {
            end = now;
        }
    }
    ScopeEvent::StallWindow {
        job,
        start,
        at: end,
        wall_secs: wall,
        stall_secs: stall,
        stall_frac: if wall > 0.0 { stall / wall } else { 0.0 },
    }
}

/// Shared view of a [`FlightRecorder`]'s rows, alive after the recorder
/// itself was boxed into the bus.
#[derive(Clone, Default)]
pub struct FlightHandle {
    rows: Arc<Mutex<Vec<String>>>,
}

impl FlightHandle {
    /// Rows recorded so far, one compact-JSON event per row.
    pub fn rows(&self) -> Vec<String> {
        self.rows.lock().expect("flight recorder lock").clone()
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("flight recorder lock").len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole stream as `events.jsonl` text (one row per line,
    /// newline-terminated; empty stream ⇒ empty string).
    pub fn to_jsonl(&self) -> String {
        let rows = self.rows.lock().expect("flight recorder lock");
        let mut out = String::new();
        for r in rows.iter() {
            out.push_str(r);
            out.push('\n');
        }
        out
    }
}

/// Flight-recorder sink: serialises every event — published and derived
/// — as one schema-versioned JSON row, in dispatch order.
#[derive(Default)]
pub struct FlightRecorder {
    handle: FlightHandle,
}

impl FlightRecorder {
    /// A recorder plus the handle that can read its rows later.
    pub fn new() -> (FlightRecorder, FlightHandle) {
        let rec = FlightRecorder::default();
        let handle = rec.handle.clone();
        (rec, handle)
    }
}

impl ScopeSubscriber for FlightRecorder {
    fn on_event(&mut self, ev: &ScopeEvent, _out: &mut Vec<ScopeEvent>) {
        let row = serde_json::to_string(&ev.to_json()).expect("event rows serialise");
        self.handle
            .rows
            .lock()
            .expect("flight recorder lock")
            .push(row);
    }
}

/// Shared view of a [`Collector`]'s captured events (tests and
/// experiments poke at the typed stream instead of JSON).
#[derive(Clone, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<ScopeEvent>>>,
}

impl EventLog {
    /// Everything captured so far, in dispatch order.
    pub fn events(&self) -> Vec<ScopeEvent> {
        self.events.lock().expect("collector lock").clone()
    }

    /// Events captured so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("collector lock").len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Capture-everything sink for tests and experiments.
#[derive(Default)]
pub struct Collector {
    log: EventLog,
}

impl Collector {
    /// A collector plus the handle that can read its events later.
    pub fn new() -> (Collector, EventLog) {
        let col = Collector::default();
        let log = col.log.clone();
        (col, log)
    }
}

impl ScopeSubscriber for Collector {
    fn on_event(&mut self, ev: &ScopeEvent, _out: &mut Vec<ScopeEvent>) {
        self.log.events.lock().expect("collector lock").push(*ev);
    }
}

/// Formats the live `--watch` line for an event, or `None` for the
/// high-frequency rollup rows the table elides.
pub fn watch_line(ev: &ScopeEvent) -> Option<String> {
    let secs = |t: SimTime| t.as_secs_f64();
    Some(match *ev {
        ScopeEvent::IterDone {
            job,
            at,
            iter,
            wall_secs,
            stall_secs,
            retries,
            ..
        } => {
            let stall_pct = if wall_secs > 0.0 {
                100.0 * stall_secs / wall_secs
            } else {
                0.0
            };
            format!(
                "watch job{job} iter {iter:>3}  t={:>9.4}s  wall {:>8.2} ms  stall {stall_pct:>5.1}%  retries {retries}",
                secs(at),
                wall_secs * 1e3,
            )
        }
        ScopeEvent::Retransmit {
            job,
            at,
            tensor,
            part,
            attempt,
            bytes,
            rerouted,
            ..
        } => format!(
            "watch job{job} RETRANSMIT  t={:>9.4}s  tensor {tensor} part {part} attempt {attempt} ({:.1} MB{})",
            secs(at),
            bytes as f64 / 1e6,
            if rerouted { ", rerouted" } else { "" },
        ),
        ScopeEvent::FaultFired {
            job,
            at,
            kind,
            node,
            scale,
        } => format!(
            "watch job{job} FAULT      t={:>9.4}s  {kind} node {node} scale {scale:.2}",
            secs(at)
        ),
        ScopeEvent::Drift {
            job,
            at,
            iter,
            baseline,
            observed,
        } => format!(
            "watch job{job} DRIFT      t={:>9.4}s  iter {iter}: observed {observed:.1} vs baseline {baseline:.1} iters/s",
            secs(at)
        ),
        ScopeEvent::WaveAdmitted { wave, at, jobs } => {
            format!("watch wave {wave} admitted  t={:>9.4}s  {jobs} jobs", secs(at))
        }
        ScopeEvent::WaveDone {
            wave,
            at,
            jobs,
            jct_mean_secs,
            jct_max_secs,
        } => format!(
            "watch wave {wave} done      t={:>9.4}s  {jobs} jobs, jct mean {jct_mean_secs:.2}s max {jct_max_secs:.2}s",
            secs(at)
        ),
        ScopeEvent::WhatIfBatch {
            batch,
            queries,
            computed,
            cache_hits,
            batch_dedup,
            ..
        } => format!(
            "watch batch {batch}: {queries} queries ({computed} computed, {cache_hits} cache hits, {batch_dedup} dedup)"
        ),
        ScopeEvent::Checkpoint {
            job,
            at,
            machine,
            iter,
            cost_secs,
        } => format!(
            "watch job{job} CHECKPOINT t={:>9.4}s  machine {machine} down, barrier iter {iter}, restart {cost_secs:.1}s",
            secs(at)
        ),
        ScopeEvent::Migrate {
            job,
            at,
            node,
            from_machine,
            to_machine,
        } => format!(
            "watch job{job} MIGRATE    t={:>9.4}s  node {node}: machine {from_machine} -> {to_machine}",
            secs(at)
        ),
        ScopeEvent::Resume {
            job,
            at,
            iter,
            lost_iters,
        } => format!(
            "watch job{job} RESUME     t={:>9.4}s  from iter {iter} ({lost_iters} iters re-run)",
            secs(at)
        ),
        ScopeEvent::NetWindow { .. }
        | ScopeEvent::StallWindow { .. }
        | ScopeEvent::IterEma { .. } => return None,
    })
}

/// Live progress/anomaly table: prints one `watch ...` line per
/// iteration, retransmit, fault, drift, wave, and what-if batch.
#[derive(Default)]
pub struct WatchTable;

impl WatchTable {
    /// A table printing to stdout.
    pub fn new() -> WatchTable {
        WatchTable
    }
}

impl ScopeSubscriber for WatchTable {
    fn on_event(&mut self, ev: &ScopeEvent, _out: &mut Vec<ScopeEvent>) {
        if let Some(line) = watch_line(ev) {
            println!("{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter_done(job: usize, at_ms: u64, wall: f64, stall: f64) -> ScopeEvent {
        ScopeEvent::IterDone {
            job,
            at: SimTime::from_millis(at_ms),
            iter: 0,
            wall_secs: wall,
            busy_secs: wall - stall,
            stall_secs: stall,
            retries: 0,
        }
    }

    #[test]
    fn rows_are_flat_versioned_and_typed() {
        let ev = iter_done(2, 150, 0.010, 0.004);
        let row = serde_json::to_string(&ev.to_json()).expect("row serialises");
        assert!(
            row.starts_with(r#"{"v":1,"type":"iter_done","t_ns":150000000"#),
            "{row}"
        );
        assert!(row.contains(r#""job":2"#), "{row}");
        assert!(row.contains(r#""stall_secs":0.004"#), "{row}");
    }

    #[test]
    fn derived_events_follow_their_cause_in_order() {
        let mut bus = ScopeBus::new();
        let (col, log) = Collector::new();
        bus.subscribe(Box::new(col));
        bus.publish(iter_done(0, 10, 0.010, 0.002));
        let kinds: Vec<_> = log.events().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["iter_done", "iter_ema"]);
    }

    #[test]
    fn ema_matches_the_closed_form() {
        let mut bus = ScopeBus::new();
        let (col, log) = Collector::new();
        bus.subscribe(Box::new(col));
        bus.publish(iter_done(0, 10, 0.010, 0.0));
        bus.publish(iter_done(0, 30, 0.020, 0.0));
        let emas: Vec<f64> = log
            .events()
            .iter()
            .filter_map(|e| match *e {
                ScopeEvent::IterEma { ema_secs, .. } => Some(ema_secs),
                _ => None,
            })
            .collect();
        assert_eq!(emas[0], 0.010);
        assert_eq!(emas[1], EMA_ALPHA * 0.020 + (1.0 - EMA_ALPHA) * 0.010);
    }

    #[test]
    fn stall_windows_tumble_and_flush() {
        let mut bus = ScopeBus::new(); // 100 ms windows
        let (col, log) = Collector::new();
        bus.subscribe(Box::new(col));
        bus.publish(iter_done(0, 40, 0.040, 0.010));
        bus.publish(iter_done(0, 80, 0.040, 0.010));
        bus.publish(iter_done(0, 140, 0.060, 0.030)); // rolls the window
        bus.finish(SimTime::from_millis(150));
        let wins: Vec<ScopeEvent> = log
            .events()
            .into_iter()
            .filter(|e| matches!(e, ScopeEvent::StallWindow { .. }))
            .collect();
        assert_eq!(wins.len(), 2);
        match wins[0] {
            ScopeEvent::StallWindow {
                start,
                at,
                wall_secs,
                stall_secs,
                stall_frac,
                ..
            } => {
                assert_eq!(start, SimTime::ZERO);
                assert_eq!(at, SimTime::from_millis(100));
                assert_eq!(wall_secs, 0.080);
                assert_eq!(stall_secs, 0.020);
                assert_eq!(stall_frac, 0.25);
            }
            _ => unreachable!(),
        }
        match wins[1] {
            ScopeEvent::StallWindow { start, at, .. } => {
                assert_eq!(start, SimTime::from_millis(100));
                assert_eq!(at, SimTime::from_millis(150), "flush clamps to now");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn ring_is_bounded_but_counts_everything() {
        let mut bus = ScopeBus::with_capacity(3);
        for i in 0..10 {
            bus.publish(iter_done(0, 10 * (i + 1), 0.010, 0.0));
        }
        assert_eq!(bus.recent().count(), 3);
        assert_eq!(
            bus.events_seen(),
            21,
            "10 published + 10 derived EMAs + the stall window the 100 ms event closed"
        );
    }

    #[test]
    fn offset_shifts_published_but_not_derived_anchors() {
        let mut bus = ScopeBus::new();
        let (col, log) = Collector::new();
        bus.subscribe(Box::new(col));
        bus.set_offset(SimTime::from_millis(1000));
        bus.publish(iter_done(0, 40, 0.040, 0.010));
        let evs = log.events();
        assert_eq!(evs[0].at(), SimTime::from_millis(1040));
        // The derived EMA anchors to the already-shifted instant.
        assert_eq!(evs[1].at(), SimTime::from_millis(1040));
    }

    #[test]
    fn watch_lines_cover_anomalies_and_elide_rollups() {
        let ev = iter_done(1, 40, 0.040, 0.010);
        let line = watch_line(&ev).expect("iterations are watched");
        assert!(line.starts_with("watch job1 iter"), "{line}");
        assert!(line.contains("stall  25.0%"), "{line}");
        let ema = ScopeEvent::IterEma {
            job: 0,
            at: SimTime::ZERO,
            iter: 0,
            ema_secs: 0.01,
        };
        assert!(watch_line(&ema).is_none());
    }
}
