//! ByteScheduler Core — the paper's contribution.
//!
//! This crate implements the *generic* communication scheduler of §3–§4:
//!
//! * [`task`] — the unified communication abstraction: a [`task::CommTask`]
//!   is one tensor's communication (push, pull or all-reduce), partitioned
//!   into [`task::SubCommTask`]s no larger than the partition size δ
//!   (`CommTask.partition(size)` in the paper's interface, §3.2).
//! * [`scheduler`] — the [`scheduler::Scheduler`] trait: the engine-facing
//!   contract every scheduling policy implements. Exactly four verbs —
//!   submit a ready item, return credit on completion, poll for what to
//!   start, report the partition size — mirror the paper's
//!   `notify_ready / notify_finish / start / partition` interfaces, recast
//!   as a poll-based state machine so the same policy code drives every
//!   engine × architecture × transport combination in the runtime.
//! * [`bytescheduler`] — Algorithm 1: per-lane priority queues with
//!   credit-based preemption (§4.2). Lanes model independent network
//!   resources (PS push vs pull directions; the single all-reduce stream).
//! * [`baselines`] — the comparators: vanilla FIFO (optionally with
//!   framework-style fixed partitioning, for Figure 4) and P3
//!   (priority + 160 KB partitions + stop-and-wait credit, §2.3/§6.2).
//! * [`analysis`] — the §4.1 delay bounds: the provable gap between a real
//!   schedule (finite δ, overhead θ) and the Theorem 1 ideal, used by the
//!   property tests to check the implementation against the theory.

pub mod analysis;
pub mod baselines;
pub mod bytescheduler;
pub mod scheduler;
pub mod task;

pub use baselines::{FifoScheduler, P3Scheduler};
pub use bytescheduler::ByteScheduler;
pub use scheduler::{Scheduler, WorkItem};
pub use task::{partition_tensor, CommKind, CommTask, SubCommTask};
