//! The unified communication-task abstraction (§3.2).
//!
//! A [`CommTask`] is the communication of one tensor — a push, pull or
//! all-reduce — the single input type ByteScheduler Core accepts from every
//! framework plugin. `Core.enqueue(CommTask)` first calls
//! `CommTask.partition(size)`, producing [`SubCommTask`]s no larger than the
//! partition size; those are what the priority queue schedules.

use serde::Serialize;

/// What kind of communication a task performs. The scheduler itself is
/// agnostic; the kind determines which *lane* (network resource) the task's
/// subtasks occupy and how the runtime executes `start()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum CommKind {
    /// Worker → parameter-server shard (uses the worker's uplink).
    Push,
    /// Parameter-server shard → worker (uses the worker's downlink).
    Pull,
    /// Ring all-reduce (uses the collective stream).
    AllReduce,
}

impl CommKind {
    /// The lane index this kind occupies. PS architectures run two lanes
    /// (upload and download are independent duplex resources, §2.2);
    /// all-reduce runs one.
    pub fn lane(self) -> usize {
        match self {
            CommKind::Push => 0,
            CommKind::Pull => 1,
            CommKind::AllReduce => 0,
        }
    }
}

/// One tensor's communication, as handed to the Core by a plugin.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct CommTask {
    /// Tensor (layer) index — also the scheduling priority: the paper
    /// assigns priority by topological order in declarative engines and by
    /// creation order in imperative engines; for layered models both equal
    /// the layer index, with *lower = closer to the input = more urgent*.
    pub tensor: u32,
    /// Communication kind.
    pub kind: CommKind,
    /// Total tensor size in bytes.
    pub bytes: u64,
}

/// One partition of a [`CommTask`] — the unit the priority queue schedules
/// and the credit system meters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct SubCommTask {
    /// Parent tensor index (and priority).
    pub tensor: u32,
    /// Partition index within the tensor.
    pub part: u32,
    /// Number of partitions of the parent tensor.
    pub num_parts: u32,
    /// Communication kind (inherited).
    pub kind: CommKind,
    /// Partition size in bytes (≤ the partition size δ).
    pub bytes: u64,
}

/// Partitions `bytes` into chunks of at most `unit` bytes, the paper's
/// `CommTask.partition(size)`. `unit = None` disables partitioning (one
/// subtask). Partitions are equal except the last, which carries the
/// remainder — matching the zero-copy slicing frameworks provide.
pub fn partition_tensor(task: &CommTask, unit: Option<u64>) -> Vec<SubCommTask> {
    let unit = match unit {
        None => {
            return vec![SubCommTask {
                tensor: task.tensor,
                part: 0,
                num_parts: 1,
                kind: task.kind,
                bytes: task.bytes,
            }]
        }
        Some(u) => {
            assert!(u > 0, "partition size must be positive");
            u
        }
    };
    let n = task.bytes.div_ceil(unit).max(1);
    let mut out = Vec::with_capacity(n as usize);
    let mut remaining = task.bytes;
    for part in 0..n {
        let sz = remaining.min(unit);
        remaining -= sz;
        out.push(SubCommTask {
            tensor: task.tensor,
            part: part as u32,
            num_parts: n as u32,
            kind: task.kind,
            bytes: sz,
        });
    }
    debug_assert_eq!(remaining, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(bytes: u64) -> CommTask {
        CommTask {
            tensor: 3,
            kind: CommKind::Push,
            bytes,
        }
    }

    #[test]
    fn partitioning_preserves_total_bytes() {
        let parts = partition_tensor(&task(1_000_001), Some(65536));
        let total: u64 = parts.iter().map(|p| p.bytes).sum();
        assert_eq!(total, 1_000_001);
        assert!(parts.iter().all(|p| p.bytes <= 65536));
        assert_eq!(parts.len(), 16);
        assert_eq!(parts.last().unwrap().bytes, 1_000_001 - 15 * 65536);
    }

    #[test]
    fn exact_multiple_has_no_runt() {
        let parts = partition_tensor(&task(4 * 1024), Some(1024));
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.bytes == 1024));
    }

    #[test]
    fn small_tensor_is_a_single_partition() {
        let parts = partition_tensor(&task(100), Some(65536));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].bytes, 100);
        assert_eq!(parts[0].num_parts, 1);
    }

    #[test]
    fn no_partitioning_when_unit_is_none() {
        let parts = partition_tensor(&task(400_000_000), None);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].bytes, 400_000_000);
    }

    #[test]
    fn subtasks_inherit_identity() {
        let parts = partition_tensor(&task(2048), Some(1024));
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.tensor, 3);
            assert_eq!(p.kind, CommKind::Push);
            assert_eq!(p.part, i as u32);
            assert_eq!(p.num_parts, 2);
        }
    }

    #[test]
    fn lanes_separate_ps_directions() {
        assert_eq!(CommKind::Push.lane(), 0);
        assert_eq!(CommKind::Pull.lane(), 1);
        assert_eq!(CommKind::AllReduce.lane(), 0);
    }

    #[test]
    fn zero_byte_tensor_yields_one_empty_partition() {
        let parts = partition_tensor(&task(0), Some(1024));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].bytes, 0);
    }
}
