//! Baseline scheduling policies the paper compares against.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use bs_sim::SimTime;

use crate::scheduler::{Scheduler, WorkItem};

/// The vanilla-framework baseline: communication executes in FIFO order of
/// readiness (§2.2 — "ML framework engines execute communication operations
/// in a FIFO order"), with no scheduler-imposed pacing (the engine dumps
/// every ready tensor straight into the network stack).
///
/// `partition` is normally `None` (frameworks transmit whole tensors), but
/// can be set to reproduce Figure 4, which measures FIFO scheduling *with*
/// fixed-size partitioning to isolate the partition-overhead trade-off.
#[derive(Debug)]
pub struct FifoScheduler {
    partition: Option<u64>,
    /// Per-lane FIFO of ready items.
    queues: Vec<VecDeque<WorkItem>>,
}

impl FifoScheduler {
    /// Vanilla baseline: no partitioning, FIFO, `num_lanes` lanes.
    pub fn new(num_lanes: usize) -> Self {
        Self::with_partition(None, num_lanes)
    }

    /// FIFO with fixed partitioning (Figure 4's configuration).
    pub fn with_partition(partition: Option<u64>, num_lanes: usize) -> Self {
        assert!(num_lanes > 0, "need at least one lane");
        if let Some(p) = partition {
            assert!(p > 0, "partition size must be positive");
        }
        FifoScheduler {
            partition,
            queues: (0..num_lanes).map(|_| VecDeque::new()).collect(),
        }
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn partition_size(&self) -> Option<u64> {
        self.partition
    }

    fn submit(&mut self, _now: SimTime, item: WorkItem) {
        self.queues[item.lane].push_back(item);
    }

    fn complete(&mut self, _now: SimTime, _lane: usize, _bytes: u64) {}

    fn poll(&mut self, now: SimTime) -> Vec<WorkItem> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    fn poll_into(&mut self, _now: SimTime, out: &mut Vec<WorkItem>) {
        // Everything ready goes straight to the (FIFO) network stack.
        for q in &mut self.queues {
            out.extend(q.drain(..));
        }
    }

    fn num_lanes(&self) -> usize {
        self.queues.len()
    }

    fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

/// P3 (Jayarajan et al., 2019), as characterised by the paper: per-layer
/// priority scheduling with a fixed 160 KB partition size and stop-and-wait
/// transmission — at most one partition unacknowledged per lane (§2.3,
/// §4.2: "the sender keeps only one tensor unacknowledged and sends the
/// next tensor after receiving the acknowledgement").
#[derive(Debug)]
pub struct P3Scheduler {
    partition: u64,
    lanes: Vec<P3Lane>,
}

#[derive(Debug)]
struct P3Lane {
    queue: BinaryHeap<Reverse<(u64, u64, u64, u64)>>, // (priority, seq, bytes, token)
    in_flight: bool,
    next_seq: u64,
}

impl P3Scheduler {
    /// P3's published default partition size.
    pub const DEFAULT_PARTITION: u64 = 160 * 1024;

    /// Creates P3 with its default 160 KB partitions.
    pub fn new(num_lanes: usize) -> Self {
        Self::with_partition(Self::DEFAULT_PARTITION, num_lanes)
    }

    /// P3 with a non-default partition size (the paper tried others and
    /// "obtained no better results"; so can you).
    pub fn with_partition(partition: u64, num_lanes: usize) -> Self {
        assert!(partition > 0, "partition size must be positive");
        assert!(num_lanes > 0, "need at least one lane");
        P3Scheduler {
            partition,
            lanes: (0..num_lanes)
                .map(|_| P3Lane {
                    queue: BinaryHeap::new(),
                    in_flight: false,
                    next_seq: 0,
                })
                .collect(),
        }
    }
}

impl Scheduler for P3Scheduler {
    fn name(&self) -> &'static str {
        "P3"
    }

    fn partition_size(&self) -> Option<u64> {
        Some(self.partition)
    }

    fn submit(&mut self, _now: SimTime, item: WorkItem) {
        let lane = &mut self.lanes[item.lane];
        let seq = lane.next_seq;
        lane.next_seq += 1;
        lane.queue
            .push(Reverse((item.priority, seq, item.bytes, item.token)));
    }

    fn complete(&mut self, _now: SimTime, lane: usize, _bytes: u64) {
        debug_assert!(self.lanes[lane].in_flight, "completion on idle P3 lane");
        self.lanes[lane].in_flight = false;
    }

    fn poll(&mut self, now: SimTime) -> Vec<WorkItem> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    fn poll_into(&mut self, _now: SimTime, out: &mut Vec<WorkItem>) {
        for (lane_idx, lane) in self.lanes.iter_mut().enumerate() {
            if lane.in_flight {
                continue;
            }
            if let Some(Reverse((priority, _, bytes, token))) = lane.queue.pop() {
                lane.in_flight = true;
                out.push(WorkItem {
                    lane: lane_idx,
                    priority,
                    bytes,
                    token,
                });
            }
        }
    }

    fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    fn credit_on_release(&self) -> bool {
        // P3's sender thread issues the next slice as soon as the stack
        // accepts the current one (ps-lite send-queue semantics), not
        // after an application-level round trip.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(lane: usize, priority: u64, bytes: u64, token: u64) -> WorkItem {
        WorkItem {
            lane,
            priority,
            bytes,
            token,
        }
    }

    fn tokens(items: &[WorkItem]) -> Vec<u64> {
        items.iter().map(|i| i.token).collect()
    }

    #[test]
    fn fifo_ignores_priority() {
        let mut s = FifoScheduler::new(1);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 9, 10, 1));
        s.submit(now, item(0, 1, 10, 2));
        assert_eq!(tokens(&s.poll(now)), vec![1, 2]);
    }

    #[test]
    fn fifo_releases_everything_immediately() {
        let mut s = FifoScheduler::new(2);
        let now = SimTime::ZERO;
        for t in 0..10 {
            s.submit(now, item((t % 2) as usize, t, 1_000_000, t));
        }
        assert_eq!(s.poll(now).len(), 10);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn fifo_default_does_not_partition() {
        assert_eq!(FifoScheduler::new(1).partition_size(), None);
        assert_eq!(
            FifoScheduler::with_partition(Some(4096), 1).partition_size(),
            Some(4096)
        );
    }

    #[test]
    fn p3_is_stop_and_wait() {
        let mut s = P3Scheduler::new(1);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 1, 100, 1));
        s.submit(now, item(0, 2, 100, 2));
        assert_eq!(tokens(&s.poll(now)), vec![1]);
        // Nothing more until the ACK.
        assert!(s.poll(now).is_empty());
        s.complete(now, 0, 100);
        assert_eq!(tokens(&s.poll(now)), vec![2]);
    }

    #[test]
    fn p3_respects_priority_among_waiters() {
        // The §4.2 example under stop-and-wait: while tensor 1 is in
        // flight, 2, 3, 4 arrive (priority 2 < 3 < 4). P3 sends 1→2→3→4 by
        // priority... but if arrival order is 4, 3, 2 the wire order is
        // still priority order 1→2→3→4 — stop-and-wait always picks the
        // best waiter at ACK time.
        let mut s = P3Scheduler::new(1);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 1, 100, 1));
        s.poll(now);
        s.submit(now, item(0, 4, 100, 4));
        s.submit(now, item(0, 3, 100, 3));
        s.submit(now, item(0, 2, 100, 2));
        let mut order = vec![1];
        for _ in 0..3 {
            s.complete(now, 0, 100);
            order.extend(tokens(&s.poll(now)));
        }
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn p3_default_partition_is_160kb() {
        assert_eq!(P3Scheduler::new(1).partition_size(), Some(160 * 1024));
    }

    #[test]
    fn p3_lanes_are_independent() {
        let mut s = P3Scheduler::new(2);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 1, 100, 1));
        s.submit(now, item(1, 1, 100, 2));
        assert_eq!(s.poll(now).len(), 2);
    }

    #[test]
    fn both_baselines_conform_to_scheduler_contract() {
        let items: Vec<WorkItem> = (0..40)
            .map(|i| item((i % 2) as usize, 40 - i, 64 + i, i))
            .collect();
        crate::scheduler::contract::check_no_loss_and_conservation(
            Box::new(FifoScheduler::new(2)),
            items.clone(),
        );
        crate::scheduler::contract::check_no_loss_and_conservation(
            Box::new(P3Scheduler::new(2)),
            items,
        );
    }
}
