//! The engine-facing scheduler contract.
//!
//! The paper's Core exposes `enqueue(CommTask)` to plugins and drives the
//! four CommTask verbs (`partition`, `notify_ready`, `start`,
//! `notify_finish`). In this reproduction the whole system is a pull-based
//! discrete-event co-simulation, so the contract is recast as a state
//! machine with the same information flow:
//!
//! | paper                       | here                                     |
//! |-----------------------------|------------------------------------------|
//! | `CommTask.partition(size)`  | [`Scheduler::partition_size`] + [`crate::task::partition_tensor`] |
//! | `CommTask.notify_ready()`   | [`Scheduler::submit`]                    |
//! | `CommTask.start()`          | items returned by [`Scheduler::poll`]    |
//! | `CommTask.notify_finish()`  | [`Scheduler::complete`]                  |
//!
//! The runtime plugin translates engine and network events into these
//! calls; the policy (ByteScheduler, FIFO, P3, …) decides only *order and
//! pacing*. That separation is exactly what makes the scheduler generic
//! across engines, architectures and transports.

use bs_sim::SimTime;
use serde::Serialize;

/// One ready-to-send unit of work: a subtask that has cleared all engine
/// dependencies and awaits a transmission slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct WorkItem {
    /// Which network lane the item occupies (see [`crate::task::CommKind::lane`]).
    pub lane: usize,
    /// Scheduling priority: lower is more urgent. Plugins set this to the
    /// layer index (§3.2: topological order / creation order).
    pub priority: u64,
    /// Payload size in bytes — what the credit system meters.
    pub bytes: u64,
    /// Opaque token the runtime uses to identify the subtask on completion;
    /// the scheduler passes it through untouched.
    pub token: u64,
}

/// A communication-scheduling policy.
///
/// Implementations must uphold two contracts the runtime depends on:
///
/// 1. **No loss**: every submitted item is eventually returned by `poll`
///    (given that completions keep arriving).
/// 2. **Work conservation**: if a lane has queued items and no in-flight
///    bytes, `poll` returns at least one item for that lane.
pub trait Scheduler: Send {
    /// Human-readable policy name for result tables.
    fn name(&self) -> &'static str;

    /// Partition size δ this policy wants tensors sliced into
    /// (`None` = do not partition).
    fn partition_size(&self) -> Option<u64>;

    /// A subtask became ready (the paper's `notify_ready`).
    fn submit(&mut self, now: SimTime, item: WorkItem);

    /// A previously started item finished transmitting; its bytes return
    /// to the lane's credit (the paper's `notify_finish` / Algorithm 1
    /// FINISH).
    fn complete(&mut self, now: SimTime, lane: usize, bytes: u64);

    /// A previously started item was *lost* (transfer dropped or killed
    /// by a link fault) and its payload never arrived. The bytes must
    /// still return to the lane's credit — a lost partition that kept its
    /// credit would shrink the window forever and eventually deadlock the
    /// lane — but the policy may account the reclamation separately from
    /// a successful `complete`. The default treats loss like completion.
    fn reclaim(&mut self, now: SimTime, lane: usize, bytes: u64) {
        self.complete(now, lane, bytes);
    }

    /// The lane set is being torn down mid-run (e.g. a fault-aborted
    /// run): close any open recording intervals at `now` so stall totals
    /// cover only the time the lanes actually existed. Policies without
    /// instrumentation ignore this; it never changes scheduling state.
    fn teardown(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Items to hand to the network *now*, in order (the paper's
    /// `start()` calls made by the SCHEDULE loop).
    fn poll(&mut self, now: SimTime) -> Vec<WorkItem>;

    /// Like [`Scheduler::poll`] but appends into a caller-provided buffer,
    /// so the runtime's event loop can reuse one allocation across the
    /// millions of polls a long run performs. The default delegates to
    /// `poll`; hot implementations override both to share one code path.
    fn poll_into(&mut self, now: SimTime, out: &mut Vec<WorkItem>) {
        out.extend(self.poll(now));
    }

    /// Number of lanes this scheduler manages.
    fn num_lanes(&self) -> usize;

    /// When the runtime should call [`Scheduler::complete`]: `false`
    /// (default) on end-to-end delivery — the paper's `notify_finish`,
    /// which includes the transport's acknowledgement latency; `true` on
    /// wire release — what a ps-lite-style sender thread observes the
    /// moment the stack accepts the message. P3's stop-and-wait advances
    /// on the latter; ByteScheduler's credits deliberately account for
    /// the full round trip and hide it behind the window (§4.2).
    fn credit_on_release(&self) -> bool {
        false
    }

    /// Queued (submitted but not yet started) items across lanes.
    fn queued(&self) -> usize;

    /// Starts recording per-lane telemetry (credit occupancy, queue
    /// depth, stall intervals). Policies without instrumentation ignore
    /// this; recording never changes scheduling decisions.
    fn enable_telemetry(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Takes the recorded metrics with summaries closed at `now`.
    /// `None` if telemetry was never enabled or the policy has none.
    fn take_metrics(&mut self, now: SimTime) -> Option<bs_telemetry::MetricSet> {
        let _ = now;
        None
    }

    /// Starts recording causal-tracing (xray) state: per-lane
    /// credit-stall intervals. Like telemetry, recording never changes
    /// scheduling decisions; policies without instrumentation ignore it.
    fn enable_xray(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Takes the recorded credit-stall intervals as `(lane, start, end)`
    /// tuples, closing any open interval at `now`. `None` if xray was
    /// never enabled or the policy has no instrumentation.
    fn take_xray(&mut self, now: SimTime) -> Option<Vec<(usize, SimTime, SimTime)>> {
        let _ = now;
        None
    }
}

#[cfg(test)]
pub(crate) mod contract {
    //! Shared conformance checks run against every `Scheduler` impl.

    use super::*;

    /// Drives a scheduler through a submit/poll/complete cycle and checks
    /// the no-loss and work-conservation contracts.
    pub fn check_no_loss_and_conservation(mut s: Box<dyn Scheduler>, items: Vec<WorkItem>) {
        let now = SimTime::ZERO;
        let total = items.len();
        let mut started = 0usize;
        let mut in_flight: Vec<WorkItem> = Vec::new();
        for it in items {
            s.submit(now, it);
        }
        // Repeatedly poll and complete until everything drains.
        let mut guard = 0;
        loop {
            let polled = s.poll(now);
            started += polled.len();
            in_flight.extend(polled);
            if started == total && in_flight.is_empty() {
                break;
            }
            if in_flight.is_empty() {
                panic!(
                    "{}: stalled with {} queued and nothing in flight",
                    s.name(),
                    s.queued()
                );
            }
            let done = in_flight.remove(0);
            s.complete(now, done.lane, done.bytes);
            guard += 1;
            assert!(guard < 100_000, "{}: did not drain", s.name());
        }
        assert_eq!(s.queued(), 0, "{}: items lost", s.name());
    }
}
