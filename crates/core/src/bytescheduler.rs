//! Algorithm 1: priority queuing with credit-based preemption (§4.2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bs_sim::SimTime;
use bs_telemetry::{Counter, MetricSet, TimeSeries};

use crate::scheduler::{Scheduler, WorkItem};

/// One lane = one independent network resource (PS upload, PS download, or
/// the all-reduce stream), with its own priority queue and credit.
#[derive(Debug)]
struct Lane {
    /// Min-heap on (priority, seq): highest-priority first, FIFO within a
    /// priority level.
    queue: BinaryHeap<Reverse<(u64, u64, StoredItem)>>,
    /// Remaining credit in bytes. Signed: when a single subtask exceeds
    /// the whole credit (mis-tuned δ > c) the lane still makes progress by
    /// letting the credit go negative while that item is alone in flight.
    credit: i64,
    /// Bytes currently on the wire.
    in_flight: u64,
    /// Monotonic sequence for the FIFO tie-break.
    next_seq: u64,
}

/// Heap payload; ordered solely through the wrapping tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct StoredItem {
    bytes: u64,
    token: u64,
}

impl Lane {
    fn new(credit: u64) -> Self {
        Lane {
            queue: BinaryHeap::new(),
            credit: credit as i64,
            in_flight: 0,
            next_seq: 0,
        }
    }

    /// Credit-blocked: work is waiting but the head does not fit the
    /// remaining credit and the anti-stall path is not active. This is
    /// the interval form of the contract check's "stalled with N queued"
    /// condition — here it is a *normal* windowing state whose duration
    /// telemetry accounts, not a bug.
    fn credit_blocked(&self) -> bool {
        match self.queue.peek() {
            Some(&Reverse((_, _, head))) => self.credit < head.bytes as i64 && self.in_flight != 0,
            None => false,
        }
    }
}

/// Per-lane recording state; exists only while telemetry is enabled.
#[derive(Debug, Default)]
struct LaneTelemetry {
    /// Credit bytes committed to the wire window (c − remaining credit).
    credit_in_use: TimeSeries,
    /// Bytes submitted but not yet started.
    queued_bytes: TimeSeries,
    /// 1 while the lane is credit-blocked, else 0; its integral is the
    /// lane's total credit-stall time.
    stalled: TimeSeries,
    /// Submissions that outranked the queue head (jumped the line).
    preemptions: Counter,
    /// Items handed to the network.
    released: Counter,
    /// Anti-stall releases of items larger than the remaining credit.
    forced: Counter,
    /// Credit bytes reclaimed from lost (never-delivered) items.
    reclaimed: Counter,
}

impl LaneTelemetry {
    fn record_stall(&mut self, now: SimTime, blocked: bool) {
        self.stalled.record(now, if blocked { 1.0 } else { 0.0 });
    }

    /// Entries into the credit-blocked state: rising edges of the
    /// (collapsed) stall series, so a zero-duration unblock-and-reblock
    /// at one instant does not count as a new stall.
    fn stall_events(&self) -> u64 {
        self.stalled
            .samples()
            .iter()
            .filter(|&&(_, v)| v != 0.0)
            .count() as u64
    }
}

/// Per-lane credit-stall interval recorder; exists only while xray
/// recording is enabled. An interval that closes and reopens at the same
/// instant — e.g. a completion whose freed credit is immediately
/// re-consumed around a preemption — coalesces into one continuous
/// interval, mirroring the collapse semantics of the telemetry series.
#[derive(Debug, Default)]
struct LaneXray {
    /// Start of the currently open stall, if the lane is credit-blocked.
    open: Option<SimTime>,
    /// Closed `(start, end)` stall intervals, in time order.
    closed: Vec<(SimTime, SimTime)>,
}

impl LaneXray {
    fn note(&mut self, now: SimTime, blocked: bool) {
        match (self.open, blocked) {
            (None, true) => {
                // Reopening at the instant the last interval closed
                // continues that interval rather than starting a new one.
                if let Some(&(start, end)) = self.closed.last() {
                    if end == now {
                        self.closed.pop();
                        self.open = Some(start);
                        return;
                    }
                }
                self.open = Some(now);
            }
            (Some(start), false) => {
                self.open = None;
                if start < now {
                    self.closed.push((start, now));
                }
            }
            _ => {}
        }
    }
}

/// The ByteScheduler policy: Algorithm 1 of the paper.
///
/// * `PARTITION`: tensors are sliced into subtasks of at most
///   [`Self::partition_bytes`] (`unit` in the paper).
/// * `READY`: [`Scheduler::submit`] enqueues by (priority, arrival).
/// * `SCHEDULE`: [`Scheduler::poll`] pops the highest-priority subtask
///   whenever the lane's credit covers its size, deducting the size.
/// * `FINISH`: [`Scheduler::complete`] returns the size to the credit.
///
/// The credit acts as a sliding window (§4.2): with credit ≥ 2δ several
/// subtasks ride the wire back-to-back, filling the send buffer; once an
/// item is handed to the FIFO network stack it can no longer be preempted,
/// so a larger credit trades preemption timeliness for utilisation — the
/// trade-off the auto-tuner (crate `bs-tune`) optimises.
#[derive(Debug)]
pub struct ByteScheduler {
    partition_bytes: u64,
    credit_bytes: u64,
    lanes: Vec<Lane>,
    /// `Some` only while telemetry is recording (one entry per lane);
    /// the disabled path costs one branch per scheduler call.
    telemetry: Option<Vec<LaneTelemetry>>,
    /// `Some` only while xray recording is on (one entry per lane).
    xray: Option<Vec<LaneXray>>,
    /// Total credit bytes returned through [`Scheduler::reclaim`] — lost
    /// partitions whose credit came back without a delivery. Always
    /// counted (no recording gate): the runtime reports it on
    /// `RunResult` regardless of telemetry.
    reclaimed_bytes: u64,
}

impl ByteScheduler {
    /// Creates the scheduler with partition size δ, credit size c, and the
    /// given number of lanes (2 for PS, 1 for all-reduce).
    pub fn new(partition_bytes: u64, credit_bytes: u64, num_lanes: usize) -> Self {
        assert!(partition_bytes > 0, "partition size must be positive");
        assert!(credit_bytes > 0, "credit size must be positive");
        assert!(num_lanes > 0, "need at least one lane");
        ByteScheduler {
            partition_bytes,
            credit_bytes,
            lanes: (0..num_lanes).map(|_| Lane::new(credit_bytes)).collect(),
            telemetry: None,
            xray: None,
            reclaimed_bytes: 0,
        }
    }

    /// Total credit bytes reclaimed from lost items so far.
    pub fn reclaimed_bytes(&self) -> u64 {
        self.reclaimed_bytes
    }

    /// Re-examines one lane's blocked state for the xray recorder; a
    /// no-op unless xray recording is on.
    fn note_xray(&mut self, lane: usize, now: SimTime) {
        if let Some(x) = self.xray.as_mut() {
            let blocked = self.lanes[lane].credit_blocked();
            x[lane].note(now, blocked);
        }
    }

    /// The configured partition size δ.
    pub fn partition_bytes(&self) -> u64 {
        self.partition_bytes
    }

    /// The configured credit size c.
    pub fn credit_bytes(&self) -> u64 {
        self.credit_bytes
    }
}

impl Scheduler for ByteScheduler {
    fn name(&self) -> &'static str {
        "ByteScheduler"
    }

    fn partition_size(&self) -> Option<u64> {
        Some(self.partition_bytes)
    }

    fn submit(&mut self, now: SimTime, item: WorkItem) {
        let lane = &mut self.lanes[item.lane];
        if let Some(telem) = self.telemetry.as_mut() {
            let t = &mut telem[item.lane];
            if let Some(&Reverse((head_priority, _, _))) = lane.queue.peek() {
                if item.priority < head_priority {
                    t.preemptions.inc();
                }
            }
            t.queued_bytes.step(now, item.bytes as f64);
        }
        let seq = lane.next_seq;
        lane.next_seq += 1;
        lane.queue.push(Reverse((
            item.priority,
            seq,
            StoredItem {
                bytes: item.bytes,
                token: item.token,
            },
        )));
        if let Some(telem) = self.telemetry.as_mut() {
            let blocked = self.lanes[item.lane].credit_blocked();
            telem[item.lane].record_stall(now, blocked);
        }
        self.note_xray(item.lane, now);
    }

    fn complete(&mut self, now: SimTime, lane: usize, bytes: u64) {
        let l = &mut self.lanes[lane];
        debug_assert!(l.in_flight >= bytes, "completion exceeds in-flight bytes");
        l.in_flight -= bytes;
        l.credit += bytes as i64;
        debug_assert!(l.credit <= self.credit_bytes as i64);
        if let Some(telem) = self.telemetry.as_mut() {
            let t = &mut telem[lane];
            let l = &self.lanes[lane];
            t.credit_in_use
                .record(now, (self.credit_bytes as i64 - l.credit) as f64);
            t.record_stall(now, l.credit_blocked());
        }
        self.note_xray(lane, now);
    }

    fn reclaim(&mut self, now: SimTime, lane: usize, bytes: u64) {
        self.reclaimed_bytes += bytes;
        if let Some(telem) = self.telemetry.as_mut() {
            telem[lane].reclaimed.add(bytes);
        }
        // Credit-wise a loss is a completion: the window slot frees and
        // the lane re-evaluates its blocked state.
        self.complete(now, lane, bytes);
    }

    fn teardown(&mut self, now: SimTime) {
        if let Some(telem) = self.telemetry.as_mut() {
            for t in telem.iter_mut() {
                t.record_stall(now, false);
            }
        }
        if let Some(xray) = self.xray.as_mut() {
            for lx in xray.iter_mut() {
                lx.note(now, false);
            }
        }
    }

    fn poll(&mut self, now: SimTime) -> Vec<WorkItem> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    fn poll_into(&mut self, now: SimTime, out: &mut Vec<WorkItem>) {
        for (lane_idx, lane) in self.lanes.iter_mut().enumerate() {
            let mut released = 0u32;
            while let Some(Reverse((priority, _, item))) = lane.queue.peek().copied() {
                let fits = lane.credit >= item.bytes as i64;
                // Anti-stall: a mis-tuned δ > c must not deadlock the lane;
                // send the oversized head alone.
                let force = lane.in_flight == 0;
                if !(fits || force) {
                    break;
                }
                lane.queue.pop();
                lane.credit -= item.bytes as i64;
                lane.in_flight += item.bytes;
                if let Some(telem) = self.telemetry.as_mut() {
                    let t = &mut telem[lane_idx];
                    t.released.inc();
                    if !fits {
                        t.forced.inc();
                    }
                    t.queued_bytes.step(now, -(item.bytes as f64));
                }
                released += 1;
                out.push(WorkItem {
                    lane: lane_idx,
                    priority,
                    bytes: item.bytes,
                    token: item.token,
                });
            }
            if released > 0 {
                if let Some(telem) = self.telemetry.as_mut() {
                    let t = &mut telem[lane_idx];
                    t.credit_in_use
                        .record(now, (self.credit_bytes as i64 - lane.credit) as f64);
                    t.record_stall(now, lane.credit_blocked());
                }
                if let Some(x) = self.xray.as_mut() {
                    x[lane_idx].note(now, lane.credit_blocked());
                }
            }
        }
    }

    fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    fn enable_telemetry(&mut self, now: SimTime) {
        let telem = self.telemetry.get_or_insert_with(|| {
            (0..self.lanes.len())
                .map(|_| LaneTelemetry::default())
                .collect()
        });
        for t in telem.iter_mut() {
            t.credit_in_use.record(now, 0.0);
            t.queued_bytes.record(now, 0.0);
            t.stalled.record(now, 0.0);
        }
    }

    fn take_metrics(&mut self, now: SimTime) -> Option<MetricSet> {
        let telem = self.telemetry.take()?;
        let mut set = MetricSet::new();
        set.horizon = now;
        set.gauge("credit_bytes", self.credit_bytes as f64);
        set.gauge("partition_bytes", self.partition_bytes as f64);
        for (i, t) in telem.into_iter().enumerate() {
            set.counter(format!("lane{i}/preemptions"), t.preemptions.get());
            set.counter(format!("lane{i}/released"), t.released.get());
            set.counter(format!("lane{i}/forced_oversize"), t.forced.get());
            set.counter(format!("lane{i}/reclaimed_bytes"), t.reclaimed.get());
            set.counter(format!("lane{i}/stall_events"), t.stall_events());
            set.series(format!("lane{i}/credit_in_use"), t.credit_in_use);
            set.series(format!("lane{i}/queued_bytes"), t.queued_bytes);
            set.series(format!("lane{i}/credit_stalled"), t.stalled);
        }
        Some(set)
    }

    fn enable_xray(&mut self, _now: SimTime) {
        self.xray
            .get_or_insert_with(|| (0..self.lanes.len()).map(|_| LaneXray::default()).collect());
    }

    fn take_xray(&mut self, now: SimTime) -> Option<Vec<(usize, SimTime, SimTime)>> {
        let lanes = self.xray.take()?;
        let mut out = Vec::new();
        for (i, mut lx) in lanes.into_iter().enumerate() {
            lx.note(now, false);
            out.extend(lx.closed.into_iter().map(|(s, e)| (i, s, e)));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(lane: usize, priority: u64, bytes: u64, token: u64) -> WorkItem {
        WorkItem {
            lane,
            priority,
            bytes,
            token,
        }
    }

    fn tokens(items: &[WorkItem]) -> Vec<u64> {
        items.iter().map(|i| i.token).collect()
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut s = ByteScheduler::new(100, 1_000, 1);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 5, 10, 1));
        s.submit(now, item(0, 2, 10, 2));
        s.submit(now, item(0, 2, 10, 3));
        s.submit(now, item(0, 1, 10, 4));
        assert_eq!(tokens(&s.poll(now)), vec![4, 2, 3, 1]);
    }

    /// The paper's §4.2 worked example: credit = 2 tensors; while tensor 1
    /// transmits, tensors 2, 3, 4 arrive in that order with priorities
    /// p1 < p2 < p3 < p4 (1 most urgent). Stop-and-wait would send
    /// 1→4→3→2; the sliding window sends 1→2→4→3, because tensor 2 was
    /// already committed to the FIFO stack when 3 and 4 arrived.
    #[test]
    fn sliding_window_example_from_paper() {
        let sz = 100;
        let mut s = ByteScheduler::new(sz, 2 * sz, 1);
        let now = SimTime::ZERO;
        // Tensor 1 arrives and starts.
        s.submit(now, item(0, 1, sz, 1));
        assert_eq!(tokens(&s.poll(now)), vec![1]);
        // Tensor 2 arrives; credit has one slot left: committed immediately.
        s.submit(now, item(0, 2, sz, 2));
        assert_eq!(tokens(&s.poll(now)), vec![2]);
        // Tensors 3 and 4 arrive; no credit, they wait in priority order.
        s.submit(now, item(0, 3, sz, 3));
        s.submit(now, item(0, 4, sz, 4));
        assert!(s.poll(now).is_empty());
        // Tensor 1 finishes: 4 would be wrong — 3 outranks it.
        s.complete(now, 0, sz);
        assert_eq!(tokens(&s.poll(now)), vec![3]);
        s.complete(now, 0, sz);
        assert_eq!(tokens(&s.poll(now)), vec![4]);
        // Overall wire order: 1, 2, 3, 4? No: 2 jumped ahead of 3 and 4
        // (window), and among the waiters priority won: 1→2→3→4 here since
        // 3 arrived before 4 with better priority. The paper's 1→2→4→3
        // order arises when arrival is 4 before 3; check that too.
        let mut s = ByteScheduler::new(sz, 2 * sz, 1);
        s.submit(now, item(0, 1, sz, 1));
        s.poll(now);
        s.submit(now, item(0, 2, sz, 2));
        s.poll(now);
        s.submit(now, item(0, 4, sz, 4));
        s.submit(now, item(0, 3, sz, 3));
        s.complete(now, 0, sz);
        assert_eq!(tokens(&s.poll(now)), vec![3]);
    }

    #[test]
    fn stop_and_wait_when_credit_equals_partition() {
        // credit == δ degenerates to P3-style stop-and-wait.
        let mut s = ByteScheduler::new(100, 100, 1);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 9, 100, 1));
        s.submit(now, item(0, 1, 100, 2));
        // Both ready; only one slot: the urgent one goes first.
        assert_eq!(tokens(&s.poll(now)), vec![2]);
        assert!(s.poll(now).is_empty());
        s.complete(now, 0, 100);
        assert_eq!(tokens(&s.poll(now)), vec![1]);
    }

    #[test]
    fn credit_meters_bytes_not_items() {
        let mut s = ByteScheduler::new(100, 250, 1);
        let now = SimTime::ZERO;
        for t in 0..5 {
            s.submit(now, item(0, t, 100, t));
        }
        // 250 bytes of credit fit two 100-byte items (not three).
        assert_eq!(tokens(&s.poll(now)), vec![0, 1]);
        s.complete(now, 0, 100);
        assert_eq!(tokens(&s.poll(now)), vec![2]);
    }

    #[test]
    fn lanes_are_independent() {
        let mut s = ByteScheduler::new(100, 100, 2);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 1, 100, 1));
        s.submit(now, item(1, 1, 100, 2));
        let started = s.poll(now);
        assert_eq!(started.len(), 2, "both lanes start concurrently");
    }

    #[test]
    fn oversized_item_does_not_deadlock() {
        // δ mis-tuned above c: the item must still go, alone.
        let mut s = ByteScheduler::new(1_000, 100, 1);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 1, 1_000, 1));
        s.submit(now, item(0, 2, 1_000, 2));
        assert_eq!(tokens(&s.poll(now)), vec![1]);
        assert!(s.poll(now).is_empty(), "second oversized item must wait");
        s.complete(now, 0, 1_000);
        assert_eq!(tokens(&s.poll(now)), vec![2]);
    }

    #[test]
    fn conforms_to_scheduler_contract() {
        let items: Vec<WorkItem> = (0..50)
            .map(|i| item((i % 2) as usize, 50 - i, 64 + i, i))
            .collect();
        crate::scheduler::contract::check_no_loss_and_conservation(
            Box::new(ByteScheduler::new(128, 256, 2)),
            items,
        );
    }

    #[test]
    #[should_panic(expected = "partition size must be positive")]
    fn zero_partition_rejected() {
        ByteScheduler::new(0, 100, 1);
    }

    /// Telemetry records the windowing story without changing it: replay
    /// the paper's §4.2 example and check credit occupancy, the stall
    /// interval while tensors 3/4 wait, and the preemption count.
    #[test]
    fn telemetry_accounts_credit_stalls_and_preemptions() {
        let sz = 100u64;
        let mut s = ByteScheduler::new(sz, 2 * sz, 1);
        s.enable_telemetry(SimTime::ZERO);
        let at = SimTime::from_micros;
        s.submit(at(0), item(0, 2, sz, 1));
        assert_eq!(tokens(&s.poll(at(0))), vec![1]);
        s.submit(at(1), item(0, 3, sz, 2));
        assert_eq!(tokens(&s.poll(at(1))), vec![2]);
        // Queue head priority 4, then 1 jumps it: one preemption; the
        // lane is credit-blocked from t=2 until the first completion.
        s.submit(at(2), item(0, 4, sz, 3));
        s.submit(at(3), item(0, 1, sz, 4));
        assert!(s.poll(at(3)).is_empty());
        s.complete(at(10), 0, sz);
        assert_eq!(tokens(&s.poll(at(10))), vec![4]);

        let m = s.take_metrics(at(20)).expect("telemetry enabled");
        assert_eq!(m.get_counter("lane0/preemptions"), Some(1));
        assert_eq!(m.get_counter("lane0/released"), Some(3));
        assert_eq!(m.get_counter("lane0/stall_events"), Some(1));
        let stalled = m.get_series("lane0/credit_stalled").expect("series");
        // Blocked from t=2 on: tensor 4's release at t=10 re-consumes the
        // returned credit with tensor 3 still waiting, so the stall runs
        // through the whole window: [2, 20)µs = 18µs, one stall event.
        assert!((stalled.integral_secs(at(20)) - 18e-6).abs() < 1e-12);
        let credit = m.get_series("lane0/credit_in_use").expect("series");
        // Both credit slots in use from t=1 (200 bytes), one returned at
        // t=10 and immediately re-consumed by tensor 4 → still 200.
        assert_eq!(credit.last_value(), 200.0);
        assert_eq!(credit.max_value(), 200.0);
        // Second take yields nothing and recording is off again.
        assert!(s.take_metrics(at(20)).is_none());
    }

    /// Regression: a preemption landing *mid-stall* must not split the
    /// stall interval. The higher-priority arrival (and the completion
    /// that immediately re-consumes the freed credit to release it)
    /// transiently re-evaluates the blocked state, but the lane never
    /// actually unblocks — so `comm_stall_secs` integrates the interval
    /// exactly once and both recorders report one continuous stall.
    #[test]
    fn preemption_mid_stall_closes_and_reopens_exactly_once() {
        let sz = 100u64;
        let mut s = ByteScheduler::new(sz, 2 * sz, 1);
        s.enable_telemetry(SimTime::ZERO);
        s.enable_xray(SimTime::ZERO);
        let at = SimTime::from_micros;
        // Fill the credit window: two items on the wire.
        s.submit(at(0), item(0, 2, sz, 1));
        assert_eq!(tokens(&s.poll(at(0))), vec![1]);
        s.submit(at(1), item(0, 3, sz, 2));
        assert_eq!(tokens(&s.poll(at(1))), vec![2]);
        // t=2: a third item arrives — the lane is now credit-blocked.
        s.submit(at(2), item(0, 4, sz, 3));
        assert!(s.poll(at(2)).is_empty());
        // t=3: a preemption arrives mid-stall (priority 1 jumps the head).
        s.submit(at(3), item(0, 1, sz, 4));
        assert!(s.poll(at(3)).is_empty());
        // t=10: a completion frees one credit slot which the preemptor
        // immediately re-consumes — the lane stays blocked throughout.
        s.complete(at(10), 0, sz);
        assert_eq!(tokens(&s.poll(at(10))), vec![4]);
        // t=15: the next completion releases the last item; the queue
        // drains and the stall ends.
        s.complete(at(15), 0, sz);
        assert_eq!(tokens(&s.poll(at(15))), vec![3]);

        let m = s.take_metrics(at(20)).expect("telemetry enabled");
        assert_eq!(m.get_counter("lane0/preemptions"), Some(1));
        // One stall event, not two: the interval survived the preemption.
        assert_eq!(m.get_counter("lane0/stall_events"), Some(1));
        let stalled = m.get_series("lane0/credit_stalled").expect("series");
        // Blocked [2, 15)µs exactly — no double-count from the close/
        // reopen at t=3 or t=10.
        assert!((stalled.integral_secs(at(20)) - 13e-6).abs() < 1e-12);

        // The xray recorder agrees: exactly one closed interval [2, 15].
        let spans = s.take_xray(at(20)).expect("xray enabled");
        assert_eq!(spans, vec![(0, at(2), at(15))]);
        assert!(s.take_xray(at(20)).is_none(), "take drains the recorder");
    }

    /// A lost item's credit comes back through `reclaim`: the window slot
    /// frees (so the lane unblocks exactly as it would on completion) and
    /// the reclamation is accounted separately from successful releases.
    #[test]
    fn reclaim_returns_credit_and_is_counted() {
        let sz = 100u64;
        let mut s = ByteScheduler::new(sz, 2 * sz, 1);
        s.enable_telemetry(SimTime::ZERO);
        let at = SimTime::from_micros;
        s.submit(at(0), item(0, 1, sz, 1));
        s.submit(at(0), item(0, 2, sz, 2));
        s.submit(at(0), item(0, 3, sz, 3));
        assert_eq!(tokens(&s.poll(at(0))), vec![1, 2], "window fills");
        assert!(s.poll(at(0)).is_empty(), "third item credit-blocked");
        // Item 1 is lost on the wire: reclaiming its credit must unblock
        // the lane just like a completion would.
        s.reclaim(at(5), 0, sz);
        assert_eq!(s.reclaimed_bytes(), sz);
        assert_eq!(tokens(&s.poll(at(5))), vec![3]);
        s.complete(at(9), 0, sz);
        s.complete(at(9), 0, sz);
        let m = s.take_metrics(at(10)).expect("telemetry enabled");
        assert_eq!(m.get_counter("lane0/reclaimed_bytes"), Some(sz));
        assert_eq!(m.get_counter("lane0/released"), Some(3));
    }

    /// Mid-run teardown (a fault-aborted run) closes open stall intervals
    /// at the teardown instant, so stall totals cover only the lane's
    /// lifetime — not the gap between abort and the metrics drain.
    #[test]
    fn teardown_closes_open_stall_intervals() {
        let sz = 100u64;
        let mut s = ByteScheduler::new(sz, 2 * sz, 1);
        s.enable_telemetry(SimTime::ZERO);
        s.enable_xray(SimTime::ZERO);
        let at = SimTime::from_micros;
        s.submit(at(0), item(0, 1, sz, 1));
        s.submit(at(0), item(0, 2, sz, 2));
        assert_eq!(s.poll(at(0)).len(), 2);
        // t=2: a third item blocks on credit, opening a stall.
        s.submit(at(2), item(0, 3, sz, 3));
        assert!(s.poll(at(2)).is_empty());
        // t=5: the run aborts and the lane is torn down mid-stall.
        s.teardown(at(5));
        // Draining later must report the stall as [2, 5), not [2, 20).
        let m = s.take_metrics(at(20)).expect("telemetry enabled");
        let stalled = m.get_series("lane0/credit_stalled").expect("series");
        assert!((stalled.integral_secs(at(20)) - 3e-6).abs() < 1e-12);
        let spans = s.take_xray(at(20)).expect("xray enabled");
        assert_eq!(spans, vec![(0, at(2), at(5))]);
    }
}
