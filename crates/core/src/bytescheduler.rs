//! Algorithm 1: priority queuing with credit-based preemption (§4.2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bs_sim::SimTime;

use crate::scheduler::{Scheduler, WorkItem};

/// One lane = one independent network resource (PS upload, PS download, or
/// the all-reduce stream), with its own priority queue and credit.
#[derive(Debug)]
struct Lane {
    /// Min-heap on (priority, seq): highest-priority first, FIFO within a
    /// priority level.
    queue: BinaryHeap<Reverse<(u64, u64, StoredItem)>>,
    /// Remaining credit in bytes. Signed: when a single subtask exceeds
    /// the whole credit (mis-tuned δ > c) the lane still makes progress by
    /// letting the credit go negative while that item is alone in flight.
    credit: i64,
    /// Bytes currently on the wire.
    in_flight: u64,
    /// Monotonic sequence for the FIFO tie-break.
    next_seq: u64,
}

/// Heap payload; ordered solely through the wrapping tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct StoredItem {
    bytes: u64,
    token: u64,
}

impl Lane {
    fn new(credit: u64) -> Self {
        Lane {
            queue: BinaryHeap::new(),
            credit: credit as i64,
            in_flight: 0,
            next_seq: 0,
        }
    }
}

/// The ByteScheduler policy: Algorithm 1 of the paper.
///
/// * `PARTITION`: tensors are sliced into subtasks of at most
///   [`Self::partition_bytes`] (`unit` in the paper).
/// * `READY`: [`Scheduler::submit`] enqueues by (priority, arrival).
/// * `SCHEDULE`: [`Scheduler::poll`] pops the highest-priority subtask
///   whenever the lane's credit covers its size, deducting the size.
/// * `FINISH`: [`Scheduler::complete`] returns the size to the credit.
///
/// The credit acts as a sliding window (§4.2): with credit ≥ 2δ several
/// subtasks ride the wire back-to-back, filling the send buffer; once an
/// item is handed to the FIFO network stack it can no longer be preempted,
/// so a larger credit trades preemption timeliness for utilisation — the
/// trade-off the auto-tuner (crate `bs-tune`) optimises.
#[derive(Debug)]
pub struct ByteScheduler {
    partition_bytes: u64,
    credit_bytes: u64,
    lanes: Vec<Lane>,
}

impl ByteScheduler {
    /// Creates the scheduler with partition size δ, credit size c, and the
    /// given number of lanes (2 for PS, 1 for all-reduce).
    pub fn new(partition_bytes: u64, credit_bytes: u64, num_lanes: usize) -> Self {
        assert!(partition_bytes > 0, "partition size must be positive");
        assert!(credit_bytes > 0, "credit size must be positive");
        assert!(num_lanes > 0, "need at least one lane");
        ByteScheduler {
            partition_bytes,
            credit_bytes,
            lanes: (0..num_lanes).map(|_| Lane::new(credit_bytes)).collect(),
        }
    }

    /// The configured partition size δ.
    pub fn partition_bytes(&self) -> u64 {
        self.partition_bytes
    }

    /// The configured credit size c.
    pub fn credit_bytes(&self) -> u64 {
        self.credit_bytes
    }
}

impl Scheduler for ByteScheduler {
    fn name(&self) -> &'static str {
        "ByteScheduler"
    }

    fn partition_size(&self) -> Option<u64> {
        Some(self.partition_bytes)
    }

    fn submit(&mut self, _now: SimTime, item: WorkItem) {
        let lane = &mut self.lanes[item.lane];
        let seq = lane.next_seq;
        lane.next_seq += 1;
        lane.queue.push(Reverse((
            item.priority,
            seq,
            StoredItem {
                bytes: item.bytes,
                token: item.token,
            },
        )));
    }

    fn complete(&mut self, _now: SimTime, lane: usize, bytes: u64) {
        let l = &mut self.lanes[lane];
        debug_assert!(l.in_flight >= bytes, "completion exceeds in-flight bytes");
        l.in_flight -= bytes;
        l.credit += bytes as i64;
        debug_assert!(l.credit <= self.credit_bytes as i64);
    }

    fn poll(&mut self, now: SimTime) -> Vec<WorkItem> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    fn poll_into(&mut self, _now: SimTime, out: &mut Vec<WorkItem>) {
        for (lane_idx, lane) in self.lanes.iter_mut().enumerate() {
            while let Some(Reverse((priority, _, item))) = lane.queue.peek().copied() {
                let fits = lane.credit >= item.bytes as i64;
                // Anti-stall: a mis-tuned δ > c must not deadlock the lane;
                // send the oversized head alone.
                let force = lane.in_flight == 0;
                if !(fits || force) {
                    break;
                }
                lane.queue.pop();
                lane.credit -= item.bytes as i64;
                lane.in_flight += item.bytes;
                out.push(WorkItem {
                    lane: lane_idx,
                    priority,
                    bytes: item.bytes,
                    token: item.token,
                });
            }
        }
    }

    fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(lane: usize, priority: u64, bytes: u64, token: u64) -> WorkItem {
        WorkItem {
            lane,
            priority,
            bytes,
            token,
        }
    }

    fn tokens(items: &[WorkItem]) -> Vec<u64> {
        items.iter().map(|i| i.token).collect()
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut s = ByteScheduler::new(100, 1_000, 1);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 5, 10, 1));
        s.submit(now, item(0, 2, 10, 2));
        s.submit(now, item(0, 2, 10, 3));
        s.submit(now, item(0, 1, 10, 4));
        assert_eq!(tokens(&s.poll(now)), vec![4, 2, 3, 1]);
    }

    /// The paper's §4.2 worked example: credit = 2 tensors; while tensor 1
    /// transmits, tensors 2, 3, 4 arrive in that order with priorities
    /// p1 < p2 < p3 < p4 (1 most urgent). Stop-and-wait would send
    /// 1→4→3→2; the sliding window sends 1→2→4→3, because tensor 2 was
    /// already committed to the FIFO stack when 3 and 4 arrived.
    #[test]
    fn sliding_window_example_from_paper() {
        let sz = 100;
        let mut s = ByteScheduler::new(sz, 2 * sz, 1);
        let now = SimTime::ZERO;
        // Tensor 1 arrives and starts.
        s.submit(now, item(0, 1, sz, 1));
        assert_eq!(tokens(&s.poll(now)), vec![1]);
        // Tensor 2 arrives; credit has one slot left: committed immediately.
        s.submit(now, item(0, 2, sz, 2));
        assert_eq!(tokens(&s.poll(now)), vec![2]);
        // Tensors 3 and 4 arrive; no credit, they wait in priority order.
        s.submit(now, item(0, 3, sz, 3));
        s.submit(now, item(0, 4, sz, 4));
        assert!(s.poll(now).is_empty());
        // Tensor 1 finishes: 4 would be wrong — 3 outranks it.
        s.complete(now, 0, sz);
        assert_eq!(tokens(&s.poll(now)), vec![3]);
        s.complete(now, 0, sz);
        assert_eq!(tokens(&s.poll(now)), vec![4]);
        // Overall wire order: 1, 2, 3, 4? No: 2 jumped ahead of 3 and 4
        // (window), and among the waiters priority won: 1→2→3→4 here since
        // 3 arrived before 4 with better priority. The paper's 1→2→4→3
        // order arises when arrival is 4 before 3; check that too.
        let mut s = ByteScheduler::new(sz, 2 * sz, 1);
        s.submit(now, item(0, 1, sz, 1));
        s.poll(now);
        s.submit(now, item(0, 2, sz, 2));
        s.poll(now);
        s.submit(now, item(0, 4, sz, 4));
        s.submit(now, item(0, 3, sz, 3));
        s.complete(now, 0, sz);
        assert_eq!(tokens(&s.poll(now)), vec![3]);
    }

    #[test]
    fn stop_and_wait_when_credit_equals_partition() {
        // credit == δ degenerates to P3-style stop-and-wait.
        let mut s = ByteScheduler::new(100, 100, 1);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 9, 100, 1));
        s.submit(now, item(0, 1, 100, 2));
        // Both ready; only one slot: the urgent one goes first.
        assert_eq!(tokens(&s.poll(now)), vec![2]);
        assert!(s.poll(now).is_empty());
        s.complete(now, 0, 100);
        assert_eq!(tokens(&s.poll(now)), vec![1]);
    }

    #[test]
    fn credit_meters_bytes_not_items() {
        let mut s = ByteScheduler::new(100, 250, 1);
        let now = SimTime::ZERO;
        for t in 0..5 {
            s.submit(now, item(0, t, 100, t));
        }
        // 250 bytes of credit fit two 100-byte items (not three).
        assert_eq!(tokens(&s.poll(now)), vec![0, 1]);
        s.complete(now, 0, 100);
        assert_eq!(tokens(&s.poll(now)), vec![2]);
    }

    #[test]
    fn lanes_are_independent() {
        let mut s = ByteScheduler::new(100, 100, 2);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 1, 100, 1));
        s.submit(now, item(1, 1, 100, 2));
        let started = s.poll(now);
        assert_eq!(started.len(), 2, "both lanes start concurrently");
    }

    #[test]
    fn oversized_item_does_not_deadlock() {
        // δ mis-tuned above c: the item must still go, alone.
        let mut s = ByteScheduler::new(1_000, 100, 1);
        let now = SimTime::ZERO;
        s.submit(now, item(0, 1, 1_000, 1));
        s.submit(now, item(0, 2, 1_000, 2));
        assert_eq!(tokens(&s.poll(now)), vec![1]);
        assert!(s.poll(now).is_empty(), "second oversized item must wait");
        s.complete(now, 0, 1_000);
        assert_eq!(tokens(&s.poll(now)), vec![2]);
    }

    #[test]
    fn conforms_to_scheduler_contract() {
        let items: Vec<WorkItem> = (0..50)
            .map(|i| item((i % 2) as usize, 50 - i, 64 + i, i))
            .collect();
        crate::scheduler::contract::check_no_loss_and_conservation(
            Box::new(ByteScheduler::new(128, 256, 2)),
            items,
        );
    }

    #[test]
    #[should_panic(expected = "partition size must be positive")]
    fn zero_partition_rejected() {
        ByteScheduler::new(0, 100, 1);
    }
}
