//! The §4.1 performance-gap analysis, as executable formulas.
//!
//! Theorem 1: with infinitely small partitions, zero per-partition overhead
//! and free preemption, priority queuing (layer 0 first) minimises
//! iteration time. Real systems have a finite partition size δ and a
//! per-partition overhead θ, and §4.1 bounds the extra delay per iteration
//! relative to that ideal:
//!
//! * PS: `Σᵢ ⌊sᵢ/δ⌋·θ  +  θ  +  2δ/B`
//! * all-reduce: `Σᵢ ⌊sᵢ/δ⌋·θ  +  δ/B`
//!
//! where `sᵢ` is layer i's tensor size and `B` the payload bandwidth. The
//! first term is the total overhead added by partitioning, the trailing
//! terms bound the pipeline-start and preemption-granularity delays. The
//! integration tests (`tests/theorem_bounds.rs`) verify that measured
//! schedules respect these bounds; the tuner exploits the formula's
//! fall-then-rise shape in δ.

use bs_sim::SimTime;

/// Per-iteration delay bound versus the Theorem 1 ideal, PS architecture.
///
/// `sizes` are the per-layer tensor bytes, `delta` the partition size δ,
/// `theta` the per-partition overhead, `bytes_per_sec` the payload
/// bandwidth B.
pub fn ps_delay_bound(sizes: &[u64], delta: u64, theta: SimTime, bytes_per_sec: f64) -> SimTime {
    overhead_term(sizes, delta, theta)
        + theta
        + SimTime::from_secs_f64(2.0 * delta as f64 / bytes_per_sec)
}

/// Per-iteration delay bound versus the Theorem 1 ideal, all-reduce.
pub fn allreduce_delay_bound(
    sizes: &[u64],
    delta: u64,
    theta: SimTime,
    bytes_per_sec: f64,
) -> SimTime {
    overhead_term(sizes, delta, theta) + SimTime::from_secs_f64(delta as f64 / bytes_per_sec)
}

/// The `Σᵢ ⌊sᵢ/δ⌋·θ` partitioning-overhead term shared by both bounds.
fn overhead_term(sizes: &[u64], delta: u64, theta: SimTime) -> SimTime {
    assert!(delta > 0, "partition size must be positive");
    let parts: u64 = sizes.iter().map(|s| s / delta).sum();
    SimTime::from_nanos(theta.as_nanos().saturating_mul(parts))
}

/// A universal lower bound on one iteration's duration under *any*
/// schedule: the GPU must run all compute, and each direction of the
/// worker NIC must carry the whole model once (push ≙ uplink, pull ≙
/// downlink; all-reduce carries `2(n−1)/n ≈ 2×` the shard size, bounded
/// below by `S/B` for simplicity).
///
/// Used by the optimality property tests: the priority scheduler in the
/// ideal regime must land between this bound and any other schedule.
pub fn iteration_lower_bound(compute: SimTime, total_bytes: u64, bytes_per_sec: f64) -> SimTime {
    let wire = SimTime::from_secs_f64(total_bytes as f64 / bytes_per_sec);
    compute.max(wire)
}

/// The per-layer dependency-cycle lower bound for PS training, valid for
/// *any* schedule: layer i's parameters travel
/// `pull_i^k → f_i^{k+1} → … → b_i^{k+1} → push_i^{k+1} → pull_i^{k+1}`,
/// so one iteration cannot beat `sᵢ/B + Σ_{j≥i}(fpⱼ + bpⱼ)` for any i
/// (the pull of a partition cannot complete before its push has been
/// aggregated, and the compute chain from `f_i` to `b_i` is serial on
/// the GPU). Layer 0's cycle — its tensor's wire time plus the *entire*
/// compute pass — is typically the binding term, which is exactly why the
/// paper prioritises layers near the input.
pub fn ps_cycle_lower_bound(
    sizes: &[u64],
    fp: &[SimTime],
    bp: &[SimTime],
    bytes_per_sec: f64,
) -> SimTime {
    assert_eq!(sizes.len(), fp.len());
    assert_eq!(sizes.len(), bp.len());
    let n = sizes.len();
    let mut best = SimTime::ZERO;
    // Suffix compute sums: from f_i through b_i.
    let mut suffix = SimTime::ZERO;
    for i in (0..n).rev() {
        suffix += fp[i] + bp[i];
        let wire = SimTime::from_secs_f64(sizes[i] as f64 / bytes_per_sec);
        best = best.max(wire + suffix);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;

    #[test]
    fn overhead_term_counts_floor_partitions() {
        // 10 MB at δ = 3 MB: ⌊10/3⌋ = 3 partitions charged.
        let theta = SimTime::from_micros(300);
        let t = overhead_term(&[10 * MB], 3 * MB, theta);
        assert_eq!(t, SimTime::from_micros(900));
    }

    #[test]
    fn ps_bound_has_fall_then_rise_shape() {
        // §4.1: the bound decreases (pipeline-start term) then increases
        // (overhead term) in δ; evaluate on VGG-ish sizes.
        let sizes: Vec<u64> = vec![400 * MB, 60 * MB, 16 * MB, 2 * MB];
        let theta = SimTime::from_micros(300);
        let bw = 1.25e9; // 10 Gbps
        let eval = |d: u64| ps_delay_bound(&sizes, d, theta, bw).as_secs_f64();
        let tiny = eval(64 * 1024);
        let mid = eval(8 * MB);
        let huge = eval(400 * MB);
        assert!(mid < tiny, "mid δ must beat tiny δ: {mid} vs {tiny}");
        assert!(mid < huge, "mid δ must beat huge δ: {mid} vs {huge}");
    }

    #[test]
    fn allreduce_bound_is_smaller_than_ps_bound() {
        // Same inputs: the PS bound carries the extra θ + δ/B pipeline
        // start term.
        let sizes = vec![100 * MB];
        let theta = SimTime::from_micros(300);
        let bw = 1.25e9;
        assert!(
            allreduce_delay_bound(&sizes, MB, theta, bw) < ps_delay_bound(&sizes, MB, theta, bw)
        );
    }

    #[test]
    fn zero_theta_leaves_only_bandwidth_terms() {
        let sizes = vec![100 * MB];
        let b = ps_delay_bound(&sizes, MB, SimTime::ZERO, 1e9);
        assert_eq!(b, SimTime::from_millis(2)); // 2δ/B = 2 MB / 1 GB/s
    }

    #[test]
    fn lower_bound_is_max_of_compute_and_wire() {
        let c = SimTime::from_millis(100);
        assert_eq!(iteration_lower_bound(c, 50 * MB, 1e9), c);
        assert_eq!(
            iteration_lower_bound(c, 500 * MB, 1e9),
            SimTime::from_millis(500)
        );
    }

    #[test]
    fn cycle_bound_is_layer0_dominated_for_input_heavy_models() {
        // Big tensor at the input: its cycle (wire + full compute) binds.
        let sizes = [24 * MB, 8 * MB, 4 * MB];
        let fp = [SimTime::from_millis(2); 3];
        let bp = [SimTime::from_millis(4); 3];
        let b = ps_cycle_lower_bound(&sizes, &fp, &bp, 1e9);
        // 24 ms wire + 18 ms compute.
        assert_eq!(b, SimTime::from_millis(42));
    }

    #[test]
    fn cycle_bound_can_bind_on_inner_layers() {
        // Giant tensor at the output: its own wire time dominates even
        // though its compute suffix is short.
        let sizes = [MB, MB, 100 * MB];
        let fp = [SimTime::from_millis(1); 3];
        let bp = [SimTime::from_millis(1); 3];
        let b = ps_cycle_lower_bound(&sizes, &fp, &bp, 1e9);
        // layer 2: 100 ms wire + 2 ms suffix compute.
        assert_eq!(b, SimTime::from_millis(102));
    }

    #[test]
    fn bound_shrinks_with_smaller_theta() {
        let sizes = vec![100 * MB, 10 * MB];
        let bw = 12.5e9;
        let tcp = ps_delay_bound(&sizes, MB, SimTime::from_micros(300), bw);
        let rdma = ps_delay_bound(&sizes, MB, SimTime::from_micros(50), bw);
        assert!(rdma < tcp, "RDMA's lower θ must shrink the gap (§6.2)");
    }
}
