//! Virtual simulation time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, measured in integer nanoseconds since the start
/// of the simulation.
///
/// `SimTime` is also used to represent durations (the difference of two
/// instants); the two roles are deliberately not separated into distinct
/// types because the arithmetic in the network and engine models mixes them
/// constantly and the extra type ceremony bought nothing in practice.
///
/// All arithmetic saturates: an absurd configuration (e.g. a zero-bandwidth
/// link) produces `SimTime::MAX` rather than a wrap-around that would
/// silently reorder the event queue.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future. Used as the "never" sentinel by idle subsystems.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Constructs a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Constructs a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Constructs a time from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero / `MAX`.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return if s > 0.0 { SimTime::MAX } else { SimTime::ZERO };
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The time as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference, useful when subtracting a possibly-later
    /// deadline from `now`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// True if this is the `MAX` ("never") sentinel.
    pub const fn is_never(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            return write!(f, "never");
        }
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_pathological_inputs() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(1).saturating_sub(SimTime::from_secs(2)),
            SimTime::ZERO
        );
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(20);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(SimTime::MAX.is_never());
        assert!(!SimTime::ZERO.is_never());
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000000s");
        assert_eq!(format!("{}", SimTime::MAX), "never");
    }
}
