//! Execution-trace recording, exportable to the Chrome tracing format.
//!
//! A [`Trace`] is a flat list of named [`Span`]s on named tracks (one
//! track per GPU, NIC direction, or collective stream). The
//! [`Trace::to_chrome_json`] output loads directly into
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev), turning a
//! simulated training run into the familiar timeline picture — Figure 1
//! of the paper, but measured.

use serde::Serialize;

use crate::time::SimTime;

/// One operation's lifetime on one track.
#[derive(Clone, Debug, Serialize)]
pub struct Span {
    /// Display name (e.g. `"fwd3@it2"`, `"push t13.p4"`).
    pub name: String,
    /// Track the span renders on (e.g. `"worker0/gpu"`, `"worker0/up"`).
    pub track: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant (≥ start).
    pub end: SimTime,
}

/// A recorded execution trace.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Trace {
    /// All spans, in no particular order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records one span.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        track: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(end >= start, "span ends before it starts");
        self.spans.push(Span {
            name: name.into(),
            track: track.into(),
            start,
            end,
        });
    }

    /// Appends another trace's spans.
    pub fn extend(&mut self, other: Trace) {
        self.spans.extend(other.spans);
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Serialises to the Chrome trace-event format (JSON array of
    /// complete events). Tracks become thread ids under one process;
    /// thread-name metadata makes them readable.
    pub fn to_chrome_json(&self) -> String {
        // Stable track → tid mapping in first-appearance order.
        let mut tracks: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !tracks.contains(&s.track.as_str()) {
                tracks.push(&s.track);
            }
        }
        let tid = |t: &str| tracks.iter().position(|x| *x == t).expect("seen") + 1;

        let mut out = String::from("[");
        let mut first = true;
        for (i, track) in tracks.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":{}}}}}"#,
                i + 1,
                json_string(track)
            ));
        }
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = s.start.as_micros_f64();
            let dur = (s.end.saturating_sub(s.start)).as_micros_f64();
            out.push_str(&format!(
                r#"{{"name":{},"ph":"X","pid":1,"tid":{},"ts":{ts:.3},"dur":{dur:.3}}}"#,
                json_string(&s.name),
                tid(&s.track)
            ));
        }
        out.push(']');
        out
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers in practice,
/// but be safe).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts_spans() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push("a", "gpu", SimTime::ZERO, SimTime::from_micros(5));
        t.push("b", "nic", SimTime::from_micros(2), SimTime::from_micros(9));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn chrome_json_is_wellformed_and_complete() {
        let mut t = Trace::new();
        t.push(
            "fwd0@it0",
            "worker0/gpu",
            SimTime::ZERO,
            SimTime::from_micros(100),
        );
        t.push(
            "push t0.p0",
            "worker0/up",
            SimTime::from_micros(50),
            SimTime::from_micros(150),
        );
        let j = t.to_chrome_json();
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        // Two metadata events + two spans.
        assert_eq!(j.matches(r#""ph":"M""#).count(), 2);
        assert_eq!(j.matches(r#""ph":"X""#).count(), 2);
        assert!(j.contains(r#""name":"fwd0@it0""#));
        assert!(j.contains(r#""ts":50.000"#));
        assert!(j.contains(r#""dur":100.000"#));
        // It must parse as JSON.
        let parsed: serde_json::Value = serde_json::from_str(&j).expect("valid JSON");
        assert!(parsed.is_array());
    }

    #[test]
    fn tracks_map_to_stable_tids() {
        let mut t = Trace::new();
        t.push("x", "a", SimTime::ZERO, SimTime::ZERO);
        t.push("y", "b", SimTime::ZERO, SimTime::ZERO);
        t.push("z", "a", SimTime::ZERO, SimTime::ZERO);
        let j = t.to_chrome_json();
        // "a" is tid 1, "b" is tid 2; "z" shares tid 1.
        assert_eq!(j.matches(r#""tid":1"#).count(), 3); // meta + x + z
        assert_eq!(j.matches(r#""tid":2"#).count(), 2); // meta + y
    }

    #[test]
    fn names_are_escaped() {
        let mut t = Trace::new();
        t.push("we\"ird\\name", "trk", SimTime::ZERO, SimTime::ZERO);
        let parsed: serde_json::Value =
            serde_json::from_str(&t.to_chrome_json()).expect("valid JSON");
        assert!(parsed.is_array());
    }
}
