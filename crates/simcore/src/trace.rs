//! Execution-trace recording, exportable to the Chrome tracing format.
//!
//! A [`Trace`] is a flat list of named [`Span`]s on named tracks (one
//! track per GPU, NIC direction, or collective stream). The
//! [`Trace::to_chrome_json`] output loads directly into
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev), turning a
//! simulated training run into the familiar timeline picture — Figure 1
//! of the paper, but measured.

use std::collections::HashMap;

use serde::Serialize;

use crate::time::SimTime;

/// One operation's lifetime on one track.
#[derive(Clone, Debug, Serialize)]
pub struct Span {
    /// Display name (e.g. `"fwd3@it2"`, `"push t13.p4"`).
    pub name: String,
    /// Track the span renders on (e.g. `"worker0/gpu"`, `"worker0/up"`).
    pub track: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant (≥ start).
    pub end: SimTime,
}

/// A quantity-over-time track: piecewise-constant samples rendered as
/// Perfetto counter (`"ph":"C"`) events next to the span timeline.
#[derive(Clone, Debug, Serialize)]
pub struct CounterTrack {
    /// Counter name (e.g. `"job0/credit_in_use"`).
    pub name: String,
    /// `(instant, value)` samples; the value holds until the next sample.
    pub samples: Vec<(SimTime, f64)>,
}

/// A causal arrow between two instants on two tracks, rendered as a
/// Perfetto flow event pair (`"ph":"s"` → `"ph":"f"`). Each end binds to
/// the slice enclosing its timestamp on its track, so an arrow from a BP
/// span to the wire span it produced draws as a connecting line.
#[derive(Clone, Debug, Serialize)]
pub struct FlowArrow {
    /// Display name shared by both ends (e.g. `"t13.p4@it2"`).
    pub name: String,
    /// Track the arrow starts on (e.g. `"worker0/gpu"`).
    pub from_track: String,
    /// Instant of the arrow's tail.
    pub from_ts: SimTime,
    /// Track the arrow ends on (e.g. `"worker0/up"`).
    pub to_track: String,
    /// Instant of the arrow's head.
    pub to_ts: SimTime,
}

/// A recorded execution trace.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Trace {
    /// All spans, in no particular order.
    pub spans: Vec<Span>,
    /// Counter tracks (empty unless metrics recording is enabled).
    pub counters: Vec<CounterTrack>,
    /// Causal flow arrows (empty unless xray recording is enabled).
    pub flows: Vec<FlowArrow>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records one span. A span whose `end` precedes its `start` is a
    /// caller bug (asserted in debug builds); release builds clamp it to
    /// zero duration rather than emitting a negative-duration event that
    /// corrupts the timeline render.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        track: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(end >= start, "span ends before it starts");
        self.spans.push(Span {
            name: name.into(),
            track: track.into(),
            start,
            end: end.max(start),
        });
    }

    /// Records one counter track.
    pub fn push_counter(&mut self, name: impl Into<String>, samples: Vec<(SimTime, f64)>) {
        self.counters.push(CounterTrack {
            name: name.into(),
            samples,
        });
    }

    /// Records one causal flow arrow.
    pub fn push_flow(
        &mut self,
        name: impl Into<String>,
        from_track: impl Into<String>,
        from_ts: SimTime,
        to_track: impl Into<String>,
        to_ts: SimTime,
    ) {
        self.flows.push(FlowArrow {
            name: name.into(),
            from_track: from_track.into(),
            from_ts,
            to_track: to_track.into(),
            to_ts,
        });
    }

    /// Appends another trace's spans, counters, and flows.
    pub fn extend(&mut self, other: Trace) {
        self.spans.extend(other.spans);
        self.counters.extend(other.counters);
        self.flows.extend(other.flows);
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Serialises to the Chrome trace-event format (JSON array of
    /// complete events). Tracks become thread ids under one process;
    /// thread-name metadata makes them readable. Flow arrows (if any)
    /// render as `"ph":"s"`/`"ph":"f"` pairs after the spans, and counter
    /// tracks as Perfetto counter events after those.
    ///
    /// The output is deterministic regardless of recording interleaving:
    /// spans are emitted stable-sorted by `(track, start, name)`, counters
    /// by name, and flows by `(from_track, from_ts, to_track, to_ts,
    /// name)`; the track → tid mapping follows the sorted span/flow order,
    /// so two traces with the same contents produce identical bytes.
    pub fn to_chrome_json(&self) -> String {
        let mut span_order: Vec<usize> = (0..self.spans.len()).collect();
        span_order.sort_by(|&a, &b| {
            let (sa, sb) = (&self.spans[a], &self.spans[b]);
            (sa.track.as_str(), sa.start, sa.name.as_str()).cmp(&(
                sb.track.as_str(),
                sb.start,
                sb.name.as_str(),
            ))
        });
        let mut counter_order: Vec<usize> = (0..self.counters.len()).collect();
        counter_order.sort_by(|&a, &b| self.counters[a].name.cmp(&self.counters[b].name));
        let mut flow_order: Vec<usize> = (0..self.flows.len()).collect();
        flow_order.sort_by(|&a, &b| {
            let (fa, fb) = (&self.flows[a], &self.flows[b]);
            (
                fa.from_track.as_str(),
                fa.from_ts,
                fa.to_track.as_str(),
                fa.to_ts,
                fa.name.as_str(),
            )
                .cmp(&(
                    fb.from_track.as_str(),
                    fb.from_ts,
                    fb.to_track.as_str(),
                    fb.to_ts,
                    fb.name.as_str(),
                ))
        });

        // Track → tid mapping in sorted first-appearance order; flow-only
        // tracks still get thread-name metadata.
        fn intern<'t>(
            tracks: &mut Vec<&'t str>,
            tid_of: &mut HashMap<&'t str, usize>,
            track: &'t str,
        ) {
            let next = tracks.len() + 1;
            tid_of.entry(track).or_insert_with(|| {
                tracks.push(track);
                next
            });
        }
        let mut tracks: Vec<&str> = Vec::new();
        let mut tid_of: HashMap<&str, usize> = HashMap::new();
        for &i in &span_order {
            intern(&mut tracks, &mut tid_of, &self.spans[i].track);
        }
        for &i in &flow_order {
            intern(&mut tracks, &mut tid_of, &self.flows[i].from_track);
            intern(&mut tracks, &mut tid_of, &self.flows[i].to_track);
        }

        let mut out = String::from("[");
        let mut first = true;
        for (i, track) in tracks.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":{}}}}}"#,
                i + 1,
                json_string(track)
            ));
        }
        for &i in &span_order {
            let s = &self.spans[i];
            if !first {
                out.push(',');
            }
            first = false;
            let ts = s.start.as_micros_f64();
            let dur = (s.end.saturating_sub(s.start)).as_micros_f64();
            out.push_str(&format!(
                r#"{{"name":{},"ph":"X","pid":1,"tid":{},"ts":{ts:.3},"dur":{dur:.3}}}"#,
                json_string(&s.name),
                tid_of[s.track.as_str()]
            ));
        }
        for (id, &i) in flow_order.iter().enumerate() {
            let f = &self.flows[i];
            let name = json_string(&f.name);
            let from_ts = f.from_ts.as_micros_f64();
            let to_ts = f.to_ts.as_micros_f64();
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                r#"{{"name":{name},"cat":"xray","ph":"s","id":{id},"pid":1,"tid":{},"ts":{from_ts:.3}}}"#,
                tid_of[f.from_track.as_str()]
            ));
            out.push(',');
            out.push_str(&format!(
                r#"{{"name":{name},"cat":"xray","ph":"f","bp":"e","id":{id},"pid":1,"tid":{},"ts":{to_ts:.3}}}"#,
                tid_of[f.to_track.as_str()]
            ));
        }
        for &i in &counter_order {
            let c = &self.counters[i];
            let name = json_string(&c.name);
            for &(at, value) in &c.samples {
                if !first {
                    out.push(',');
                }
                first = false;
                let ts = at.as_micros_f64();
                out.push_str(&format!(
                    r#"{{"name":{name},"ph":"C","pid":1,"ts":{ts:.3},"args":{{"value":{value:.3}}}}}"#,
                ));
            }
        }
        out.push(']');
        out
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers in practice,
/// but be safe).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts_spans() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push("a", "gpu", SimTime::ZERO, SimTime::from_micros(5));
        t.push("b", "nic", SimTime::from_micros(2), SimTime::from_micros(9));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn chrome_json_is_wellformed_and_complete() {
        let mut t = Trace::new();
        t.push(
            "fwd0@it0",
            "worker0/gpu",
            SimTime::ZERO,
            SimTime::from_micros(100),
        );
        t.push(
            "push t0.p0",
            "worker0/up",
            SimTime::from_micros(50),
            SimTime::from_micros(150),
        );
        let j = t.to_chrome_json();
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        // Two metadata events + two spans.
        assert_eq!(j.matches(r#""ph":"M""#).count(), 2);
        assert_eq!(j.matches(r#""ph":"X""#).count(), 2);
        assert!(j.contains(r#""name":"fwd0@it0""#));
        assert!(j.contains(r#""ts":50.000"#));
        assert!(j.contains(r#""dur":100.000"#));
        // It must parse as JSON.
        let parsed: serde_json::Value = serde_json::from_str(&j).expect("valid JSON");
        assert!(parsed.is_array());
    }

    #[test]
    fn tracks_map_to_stable_tids() {
        let mut t = Trace::new();
        t.push("x", "a", SimTime::ZERO, SimTime::ZERO);
        t.push("y", "b", SimTime::ZERO, SimTime::ZERO);
        t.push("z", "a", SimTime::ZERO, SimTime::ZERO);
        let j = t.to_chrome_json();
        // "a" is tid 1, "b" is tid 2; "z" shares tid 1.
        assert_eq!(j.matches(r#""tid":1"#).count(), 3); // meta + x + z
        assert_eq!(j.matches(r#""tid":2"#).count(), 2); // meta + y
    }

    #[test]
    fn chrome_json_event_count_scales_with_spans() {
        // Regression for the O(n²) track lookup: every span must emit
        // exactly one "X" event and every distinct track one "M" event,
        // for a span count large enough that quadratic scans would be
        // visible if reintroduced.
        let mut t = Trace::new();
        let n_tracks = 64;
        let n_spans = 20_000;
        for i in 0..n_spans {
            let at = SimTime::from_micros(i as u64);
            t.push(format!("op{i}"), format!("trk{}", i % n_tracks), at, at);
        }
        let j = t.to_chrome_json();
        assert_eq!(j.matches(r#""ph":"M""#).count(), n_tracks);
        assert_eq!(j.matches(r#""ph":"X""#).count(), n_spans);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_builds_clamp_reversed_spans() {
        let mut t = Trace::new();
        t.push(
            "r",
            "trk",
            SimTime::from_micros(10),
            SimTime::from_micros(4),
        );
        assert_eq!(t.spans[0].start, SimTime::from_micros(10));
        assert_eq!(t.spans[0].end, SimTime::from_micros(10));
        assert!(t.to_chrome_json().contains(r#""dur":0.000"#));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "span ends before it starts")]
    fn debug_builds_assert_on_reversed_spans() {
        let mut t = Trace::new();
        t.push(
            "r",
            "trk",
            SimTime::from_micros(10),
            SimTime::from_micros(4),
        );
    }

    #[test]
    fn counter_tracks_render_as_counter_events() {
        let mut t = Trace::new();
        t.push("a", "gpu", SimTime::ZERO, SimTime::from_micros(5));
        t.push_counter(
            "credit_in_use",
            vec![
                (SimTime::ZERO, 0.0),
                (SimTime::from_micros(2), 4.0),
                (SimTime::from_micros(5), 1.0),
            ],
        );
        let j = t.to_chrome_json();
        assert_eq!(j.matches(r#""ph":"C""#).count(), 3);
        assert!(j.contains(
            r#""name":"credit_in_use","ph":"C","pid":1,"ts":2.000,"args":{"value":4.000}"#
        ));
        let parsed: serde_json::Value = serde_json::from_str(&j).expect("valid JSON");
        assert!(parsed.is_array());
    }

    #[test]
    fn empty_counters_do_not_change_output() {
        let mut t = Trace::new();
        t.push("a", "gpu", SimTime::ZERO, SimTime::from_micros(5));
        let j = t.to_chrome_json();
        assert!(!j.contains(r#""ph":"C""#));
    }

    #[test]
    fn chrome_json_is_independent_of_recording_interleaving() {
        // Two traces with identical contents recorded in different orders
        // (as concurrent subsystems legitimately do) must serialise to
        // identical bytes — golden-fixture diffs depend on it.
        let a_spans = [
            ("fwd0", "worker0/gpu", 0u64, 10u64),
            ("push t0.p0", "worker0/up", 5, 20),
            ("bwd0", "worker1/gpu", 3, 12),
            ("push t0.p0", "worker1/up", 6, 21),
        ];
        let mut t1 = Trace::new();
        let mut t2 = Trace::new();
        for &(name, track, s, e) in &a_spans {
            t1.push(
                name,
                track,
                SimTime::from_micros(s),
                SimTime::from_micros(e),
            );
        }
        for &(name, track, s, e) in a_spans.iter().rev() {
            t2.push(
                name,
                track,
                SimTime::from_micros(s),
                SimTime::from_micros(e),
            );
        }
        t1.push_counter("cred", vec![(SimTime::ZERO, 1.0)]);
        t1.push_counter("busy", vec![(SimTime::ZERO, 0.0)]);
        t2.push_counter("busy", vec![(SimTime::ZERO, 0.0)]);
        t2.push_counter("cred", vec![(SimTime::ZERO, 1.0)]);
        t1.push_flow(
            "f",
            "worker0/gpu",
            SimTime::from_micros(9),
            "worker0/up",
            SimTime::from_micros(5),
        );
        t2.push_flow(
            "f",
            "worker0/gpu",
            SimTime::from_micros(9),
            "worker0/up",
            SimTime::from_micros(5),
        );
        assert_eq!(t1.to_chrome_json(), t2.to_chrome_json());
    }

    #[test]
    fn flow_arrows_render_as_start_finish_pairs() {
        let mut t = Trace::new();
        t.push(
            "bwd0",
            "worker0/gpu",
            SimTime::ZERO,
            SimTime::from_micros(10),
        );
        t.push_flow(
            "t0.p0@it0",
            "worker0/gpu",
            SimTime::from_micros(9),
            "worker0/up",
            SimTime::from_micros(12),
        );
        let j = t.to_chrome_json();
        // Flow-only track "worker0/up" still gets thread metadata.
        assert_eq!(j.matches(r#""ph":"M""#).count(), 2);
        assert_eq!(j.matches(r#""ph":"s""#).count(), 1);
        assert_eq!(j.matches(r#""ph":"f""#).count(), 1);
        assert!(j.contains(r#""ph":"f","bp":"e","id":0"#));
        let parsed: serde_json::Value = serde_json::from_str(&j).expect("valid JSON");
        assert!(parsed.is_array());
    }

    #[test]
    fn names_are_escaped() {
        let mut t = Trace::new();
        t.push("we\"ird\\name", "trk", SimTime::ZERO, SimTime::ZERO);
        let parsed: serde_json::Value =
            serde_json::from_str(&t.to_chrome_json()).expect("valid JSON");
        assert!(parsed.is_array());
    }
}
