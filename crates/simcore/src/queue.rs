//! A deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the calendar: fires `event` at `time`. `seq` provides the
/// deterministic FIFO tie-break for events scheduled at the same instant.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A calendar queue of timestamped events with deterministic ordering.
///
/// Two properties matter for reproducibility and are guaranteed here:
///
/// 1. Events pop in non-decreasing time order; popping also advances the
///    queue's notion of `now`.
/// 2. Events scheduled for the same instant pop in the order they were
///    scheduled (FIFO), independent of heap internals.
///
/// Scheduling an event in the past (before `now`) is a logic error in the
/// caller and panics in debug builds; in release builds the event is clamped
/// to `now` so a long experiment degrades rather than aborts.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The time of the most recently popped event (or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled an event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Pops the earliest event only if it fires at or before `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Removes all pending events, leaving `now` unchanged.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.pop();
        q.schedule_after(SimTime::from_micros(5), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        assert_eq!(q.pop_before(SimTime::from_micros(15)).unwrap().1, 1);
        assert!(q.pop_before(SimTime::from_micros(15)).is_none());
        assert_eq!(q.pop_before(SimTime::from_micros(25)).unwrap().1, 2);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn random_schedules_pop_in_nondecreasing_time_order() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(99);
        let mut q = EventQueue::new();
        for i in 0..5_000u64 {
            q.schedule(SimTime::from_nanos(rng.below(1 << 30)), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "time went backwards: {t} after {last}");
            last = t;
            count += 1;
        }
        assert_eq!(count, 5_000);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 10u64);
        q.schedule(SimTime::from_micros(30), 30u64);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 10);
        // Schedule something between the popped event and the remaining one.
        q.schedule(SimTime::from_micros(20), 20u64);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }
}
