//! A persistent worker pool for scoped, borrowing task fan-out.
//!
//! Both the harness (independent simulation runs) and the cluster
//! driver's conservative-parallel core (per-epoch job free-runs) need the
//! same shape of parallelism: hand N closures that borrow the caller's
//! stack to a fixed set of threads, and block until every one has
//! finished. `std::thread::scope` provides exactly that shape but spawns
//! fresh OS threads per scope — far too expensive for a driver that opens
//! a scope per simulation epoch (thousands per run). [`WorkerPool`] keeps
//! the threads alive across scopes.
//!
//! # Safety model
//!
//! [`WorkerPool::run_scoped`] accepts closures borrowing the caller's
//! stack (`'env`), erases the lifetime to move them onto the long-lived
//! workers, and *does not return until every closure has run to
//! completion* — even when one of them panics (the panic is re-raised on
//! the caller only after the stragglers finish). That completion barrier
//! is the entire safety argument, the same one `std::thread::scope`
//! makes: no borrow outlives the call that lent it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A queued unit of work plus the barrier of the scope that submitted it.
struct Job {
    f: Box<dyn FnOnce() + Send>,
    scope: Arc<ScopeState>,
}

/// Completion barrier for one `run_scoped` call.
struct ScopeState {
    /// (tasks not yet finished, first panic payload observed).
    done: Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
    cond: Condvar,
}

impl ScopeState {
    fn finish(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut d = self.done.lock().expect("scope lock");
        d.0 -= 1;
        if d.1.is_none() {
            d.1 = panic;
        }
        if d.0 == 0 {
            self.cond.notify_all();
        }
    }
}

struct Shared {
    queue: Mutex<(VecDeque<Job>, bool)>,
    cond: Condvar,
}

/// A fixed set of persistent worker threads executing scoped closures.
///
/// The pool contributes `workers` threads; the thread calling
/// [`Self::run_scoped`] also executes queued tasks while it waits, so a
/// pool of `N - 1` workers gives `N`-way parallelism with no idle driver.
/// A pool of zero workers is valid and degenerates to sequential
/// execution on the caller.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (zero is allowed).
    pub fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new((VecDeque::new(), false)),
            cond: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of pool-owned worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The process-wide shared pool, sized to `available_parallelism - 1`
    /// workers (the caller of [`Self::run_scoped`] contributes the last
    /// thread). Components that fan out independent work — the harness's
    /// sweep `parallel_map`, the replay what-if service — share these
    /// threads instead of spawning their own per call; the caller-assist
    /// loop in `run_scoped` keeps concurrent scopes from one another's
    /// pools deadlock-free (a waiting scope executes whatever is queued,
    /// including another scope's tasks). The cluster driver's
    /// conservative-parallel core keeps its own pool: its thread count is
    /// a per-run configuration knob, not a process property.
    pub fn shared() -> &'static WorkerPool {
        static SHARED: OnceLock<WorkerPool> = OnceLock::new();
        SHARED.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            WorkerPool::new(threads.saturating_sub(1))
        })
    }

    /// Runs every closure to completion, in parallel across the pool's
    /// workers and the calling thread. Closures may borrow from the
    /// caller's stack; none of those borrows outlive this call. If a
    /// closure panics, the panic is re-raised here — after all other
    /// closures have still run to completion, so the barrier holds even
    /// on the unwind path.
    pub fn run_scoped<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        let scope = Arc::new(ScopeState {
            done: Mutex::new((n, None)),
            cond: Condvar::new(),
        });
        {
            let mut q = self.shared.queue.lock().expect("pool lock");
            for t in tasks {
                // SAFETY: this function blocks until the scope's barrier
                // reports all `n` tasks finished, so the erased `'env`
                // borrows cannot be observed after they expire.
                let f: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(t) };
                q.0.push_back(Job {
                    f,
                    scope: Arc::clone(&scope),
                });
            }
        }
        self.shared.cond.notify_all();
        // Caller-assist: drain whatever is queued (possibly tasks from a
        // concurrent scope — executing those is equally correct and only
        // helps global progress) instead of idling at the barrier.
        loop {
            let job = {
                let mut q = self.shared.queue.lock().expect("pool lock");
                q.0.pop_front()
            };
            match job {
                Some(job) => run_job(job),
                None => break,
            }
        }
        let mut d = scope.done.lock().expect("scope lock");
        while d.0 > 0 {
            d = scope.cond.wait(d).expect("scope wait");
        }
        if let Some(p) = d.1.take() {
            drop(d);
            resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool lock");
            q.1 = true;
        }
        self.shared.cond.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool lock");
            loop {
                if let Some(job) = q.0.pop_front() {
                    break Some(job);
                }
                if q.1 {
                    break None;
                }
                q = shared.cond.wait(q).expect("pool wait");
            }
        };
        match job {
            Some(job) => run_job(job),
            None => return,
        }
    }
}

fn run_job(job: Job) {
    let result = catch_unwind(AssertUnwindSafe(job.f));
    job.scope.finish(result.err());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_borrowing_tasks_to_completion() {
        let pool = WorkerPool::new(2);
        let mut slots = vec![0u64; 64];
        // Reuse the pool across scopes — the persistent-threads property.
        for round in 1..=3u64 {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, s)| {
                    let t: Box<dyn FnOnce() + Send> = Box::new(move || *s = round * i as u64);
                    t
                })
                .collect();
            pool.run_scoped(tasks);
            for (i, s) in slots.iter().enumerate() {
                assert_eq!(*s, round * i as u64);
            }
        }
    }

    #[test]
    fn zero_worker_pool_runs_on_the_caller() {
        let pool = WorkerPool::new(0);
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..5)
            .map(|_| {
                let t: Box<dyn FnOnce() + Send> = Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                t
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn empty_scope_is_a_noop() {
        WorkerPool::new(1).run_scoped(Vec::new());
    }

    #[test]
    fn panic_propagates_after_the_barrier() {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let res = catch_unwind(AssertUnwindSafe(|| {
            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            tasks.push(Box::new(|| panic!("task exploded")));
            for _ in 0..8 {
                let finished = Arc::clone(&finished);
                tasks.push(Box::new(move || {
                    finished.fetch_add(1, Ordering::Relaxed);
                }));
            }
            pool.run_scoped(tasks);
        }));
        assert!(res.is_err(), "the task panic must re-raise on the caller");
        // The barrier held: every non-panicking task still ran.
        assert_eq!(finished.load(Ordering::Relaxed), 8);
    }
}
