//! Discrete-event simulation kernel for the ByteScheduler reproduction.
//!
//! This crate is deliberately free of any domain knowledge. It provides the
//! three primitives every other crate in the workspace builds on:
//!
//! * [`SimTime`] — virtual time with nanosecond resolution and saturating
//!   arithmetic, so that a mis-configured experiment degrades into an
//!   obviously-wrong huge time instead of a panic deep inside a binary heap.
//! * [`EventQueue`] — a deterministic calendar queue. Events that share a
//!   timestamp fire in insertion order (FIFO tie-break by sequence number),
//!   which is what makes every experiment in the repository exactly
//!   reproducible from a seed.
//! * [`rng`] and [`stats`] — a tiny deterministic PRNG (SplitMix64 core with
//!   Box–Muller normals) and online statistics (Welford mean/variance,
//!   percentiles), used for workload jitter and for the measurement side of
//!   the harness.
//!
//! The simulation style used across the workspace is *pull-based
//! co-simulation*: each subsystem (network, engine, parameter server, …) is a
//! plain state machine exposing `next_time()`/`advance()`-style methods, and
//! the runtime driver advances whichever subsystem owns the earliest event.
//! [`EventQueue`] is the building block those subsystems use internally.

pub mod pool;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use pool::WorkerPool;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{OnlineStats, Percentiles};
pub use time::SimTime;
pub use trace::{CounterTrack, Span, Trace};
