//! A small deterministic PRNG.
//!
//! The simulation crates avoid a dependency on `rand` so that the exact bit
//! stream backing every experiment is pinned by this repository, not by an
//! external crate version. SplitMix64 is statistically strong enough for
//! workload jitter and tuner seeding, passes BigCrush when used this way,
//! and is four lines of code.

/// Deterministic PRNG (SplitMix64) with convenience samplers.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
    /// Cached second output of the last Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng {
            // Avoid the all-zero fixed point without changing other seeds.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; used to give each worker or
    /// each tuner trial its own stream without coupling their consumption.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * n which is
        // immaterial for simulation workloads.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0,1] so ln() is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds_and_empty_range() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let x = r.uniform(3.0, 5.0);
            assert!((3.0..5.0).contains(&x));
        }
        assert_eq!(r.uniform(5.0, 3.0), 5.0);
    }

    #[test]
    fn below_covers_range_roughly_uniformly() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            // Each bucket should get ~10k; allow generous slack.
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = r.normal();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn fork_produces_decoupled_streams() {
        let mut parent = SimRng::new(5);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
