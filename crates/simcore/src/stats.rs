//! Online statistics used by the measurement side of the harness.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// This is what the harness uses to average steady-state iteration times
/// (the paper averages training speed over 500 iterations after a 10
/// iteration warm-up; we do the same at smaller scale).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentiles over a retained sample.
///
/// Experiments are small enough (hundreds of iterations) that retaining the
/// sample and sorting on demand is simpler and more accurate than a sketch.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Percentiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty sample.
    pub fn new() -> Self {
        Percentiles {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) with linear interpolation.
    /// Returns `NaN` when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.values[lo]
        } else {
            let w = pos - lo as f64;
            self.values[lo] * (1.0 - w) + self.values[hi] * w
        }
    }

    /// Median, a convenience for `quantile(0.5)`.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_equals_sequential_push() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut p = Percentiles::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            p.push(x);
        }
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.quantile(1.0), 4.0);
        assert!((p.median() - 2.5).abs() < 1e-12);
        assert!((p.quantile(0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_is_nan() {
        let mut p = Percentiles::new();
        assert!(p.quantile(0.5).is_nan());
    }

    #[test]
    fn quantile_after_interleaved_pushes() {
        let mut p = Percentiles::new();
        p.push(5.0);
        assert_eq!(p.median(), 5.0);
        p.push(1.0);
        assert!((p.median() - 3.0).abs() < 1e-12);
    }
}
