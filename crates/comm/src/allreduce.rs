//! Ring all-reduce as a serialised collective stream.
//!
//! NCCL executes collectives on a communicator one at a time, in the order
//! they are submitted on the stream; the scheduler's leverage is therefore
//! exactly (a) the submission order and (b) how large each submitted chunk
//! is — which is why the paper's all-reduce plugin schedules ops *before*
//! handing them to Horovod/NCCL and why the master Core must pick one global
//! order (§5, deadlock avoidance).
//!
//! Cost model for one ring all-reduce of `s` bytes over `n` workers with
//! per-NIC payload bandwidth `B`:
//!
//! ```text
//!   T(s) = sync(n) + 2·(n−1)/n · s / B
//! ```
//!
//! The bandwidth term is the textbook reduce-scatter + all-gather ring. The
//! synchronisation term is the per-operation price (kernel launch, rendezvous
//! of all `n` ranks, per-step latencies around the ring):
//! `sync(n) = base + step · 2(n−1)`, with `step` tied to the transport's
//! per-message overhead (heavily pipelined, hence the 1/8 factor below).
//! This per-op cost is what makes small partitions expensive in all-reduce
//! and pushes Table 1's optimal partition/credit sizes an order of magnitude
//! above the PS ones.

use std::collections::VecDeque;

use bs_net::NetConfig;
use bs_sim::SimTime;
use serde::Serialize;

/// Identifies one submitted all-reduce operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct OpId(pub u64);

/// All-reduce deployment configuration.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct AllReduceConfig {
    /// Number of ranks in the ring (one per GPU in the paper's NCCL runs).
    pub num_workers: usize,
    /// Link configuration (bandwidth + transport) of each rank's NIC.
    pub link: NetConfig,
    /// Fixed per-operation launch/rendezvous cost.
    pub sync_base: SimTime,
}

impl AllReduceConfig {
    /// Standard configuration used by the harness.
    pub fn new(num_workers: usize, link: NetConfig) -> Self {
        assert!(num_workers >= 2, "a ring needs at least two ranks");
        AllReduceConfig {
            num_workers,
            link,
            sync_base: SimTime::from_micros(150),
        }
    }

    /// Per-operation synchronisation overhead `sync(n)`.
    pub fn sync_overhead(&self) -> SimTime {
        let steps = 2 * (self.num_workers - 1) as u64;
        // Ring steps are pipelined; each exposes ~1/8 of the transport's
        // composite point-to-point per-message overhead θ.
        let step = SimTime::from_nanos(self.link.transport.total_overhead().as_nanos() / 8);
        self.sync_base + SimTime::from_nanos(step.as_nanos() * steps)
    }

    /// Wall time of one all-reduce of `bytes`.
    pub fn op_time(&self, bytes: u64) -> SimTime {
        let n = self.num_workers as f64;
        let wire = 2.0 * (n - 1.0) / n * bytes as f64 / self.link.bytes_per_sec();
        self.sync_overhead() + SimTime::from_secs_f64(wire)
    }
}

/// Which half of the ring algorithm a hop belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RingPhase {
    /// Steps `0 .. n-1`: each chunk is combined around the ring.
    ReduceScatter,
    /// Steps `n-1 .. 2(n-1)`: the reduced chunks are broadcast back.
    AllGather,
}

/// One chunk's traversal of one ring step.
///
/// The analytic cost model runs one op as `S = 2(n−1)` equal-duration
/// pipelined steps; at step `k` every chunk moves one hop concurrently.
/// Step boundaries are `t_k = start + D·k/S` in integer nanoseconds
/// (monotone, `t_0 = start`, `t_S = end` exactly), so the per-chunk hop
/// windows tile the op span without drift — the invariant the xray
/// analyzer's exact-tiling attribution leans on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingHop {
    /// The batch tag of the owning op.
    pub tag: u64,
    /// Chunk index `0 .. n`.
    pub chunk: u32,
    /// Hop index `0 .. 2(n−1)` (== the ring step the chunk moved in).
    pub hop: u32,
    /// Reduce-scatter or all-gather half.
    pub phase: RingPhase,
    /// When the chunk became ready for this hop: the op start for hop 0,
    /// the previous hop's deliver otherwise.
    pub enqueue: SimTime,
    /// When the hop's step window opened.
    pub submit: SimTime,
    /// When the hop's step window closed (chunk at the next rank).
    pub deliver: SimTime,
}

/// Step boundary `t_k = start + D·k/S` of an op spanning `[start, end]`.
fn step_boundary(start: SimTime, end: SimTime, k: u64, steps: u64) -> SimTime {
    let d = end.as_nanos().saturating_sub(start.as_nanos());
    let off = (d as u128 * k as u128 / steps as u128) as u64;
    SimTime::from_nanos(start.as_nanos() + off)
}

/// One finished all-reduce, reported by [`RingAllReduce::advance`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct CompletedOp {
    /// The handle returned by `submit`.
    pub id: OpId,
    /// Payload size.
    pub bytes: u64,
    /// Caller-defined tag, passed through verbatim.
    pub tag: u64,
    /// Virtual time at which every rank holds the reduced result.
    pub finished_at: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct PendingOp {
    id: OpId,
    bytes: u64,
    tag: u64,
    /// The op may not start before this instant (Horovod-style fusion
    /// cycle delay for baseline submissions; zero otherwise).
    earliest: SimTime,
}

/// The collective stream: ops run one at a time in submission order.
#[derive(Clone, Debug)]
pub struct RingAllReduce {
    cfg: AllReduceConfig,
    queue: VecDeque<PendingOp>,
    /// `(op, end time)` of the op currently on the ring.
    active: Option<(PendingOp, SimTime)>,
    /// Instant the ring last became free (a queued op eligible earlier
    /// than `now` starts here, not at the caller's clock).
    free_at: SimTime,
    next_id: u64,
    bytes_reduced: u64,
    ops_reduced: u64,
    /// When enabled, completed op spans split at the phase boundary:
    /// (tag, start, reduce-scatter end, end).
    trace: Option<Vec<(u64, SimTime, SimTime, SimTime)>>,
    /// When enabled, per-chunk per-hop lifecycle records for causal
    /// tracing (xray); a separate buffer so both consumers can drain
    /// independently.
    xray: Option<Vec<RingHop>>,
}

impl RingAllReduce {
    /// Creates an idle stream.
    pub fn new(cfg: AllReduceConfig) -> Self {
        RingAllReduce {
            cfg,
            queue: VecDeque::new(),
            active: None,
            free_at: SimTime::ZERO,
            next_id: 0,
            bytes_reduced: 0,
            ops_reduced: 0,
            trace: None,
            xray: None,
        }
    }

    /// Enables op-span recording (see [`Self::take_trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Drains the recorded op spans: `(tag, start, reduce-scatter end,
    /// end)` per collective, in completion order.
    pub fn take_trace(&mut self) -> Vec<(u64, SimTime, SimTime, SimTime)> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Enables per-chunk hop recording for causal tracing (xray).
    pub fn enable_xray(&mut self) {
        if self.xray.is_none() {
            self.xray = Some(Vec::new());
        }
    }

    /// Drains the recorded hop records, grouped per op in completion
    /// order (chunk-major, hop-minor within each op).
    pub fn take_xray(&mut self) -> Vec<RingHop> {
        self.xray.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Peeks at the recorded hop records without draining them, so trace
    /// assembly can emit per-chunk flow arrows before the xray log is
    /// taken. Empty unless xray recording is enabled.
    pub fn xray_hops(&self) -> &[RingHop] {
        self.xray.as_deref().unwrap_or_default()
    }

    /// The configuration.
    pub fn config(&self) -> &AllReduceConfig {
        &self.cfg
    }

    /// Submits an all-reduce of `bytes` at time `now`. All ranks are
    /// assumed to submit the same op in the same order — the invariant the
    /// master Core enforces (§5); the runtime asserts it.
    pub fn submit(&mut self, now: SimTime, bytes: u64, tag: u64) -> OpId {
        self.submit_after(now, SimTime::ZERO, bytes, tag)
    }

    /// Like [`Self::submit`], but the op may not start before
    /// `now + delay`. Models Horovod's fusion cycle: a baseline batch
    /// waits for the next coordinator cycle before launching.
    pub fn submit_after(&mut self, now: SimTime, delay: SimTime, bytes: u64, tag: u64) -> OpId {
        let id = OpId(self.next_id);
        self.next_id += 1;
        self.queue.push_back(PendingOp {
            id,
            bytes,
            tag,
            earliest: now + delay,
        });
        self.maybe_start(now);
        id
    }

    /// Earliest instant anything happens: the active op's completion, or
    /// — when idle — the queued head becoming eligible. `MAX` when idle
    /// and empty.
    pub fn next_event_time(&self) -> SimTime {
        if let Some((_, end)) = self.active {
            return end;
        }
        self.queue
            .front()
            .map(|op| op.earliest.max(self.free_at))
            .unwrap_or(SimTime::MAX)
    }

    /// Completes ops ending at or before `now` and starts queued ones.
    pub fn advance(&mut self, now: SimTime) -> Vec<CompletedOp> {
        let mut done = Vec::new();
        self.maybe_start(now);
        while let Some((op, end)) = self.active {
            if end > now {
                break;
            }
            self.active = None;
            self.free_at = end;
            self.bytes_reduced += op.bytes;
            self.ops_reduced += 1;
            if self.trace.is_some() || self.xray.is_some() {
                let start = end.saturating_sub(self.cfg.op_time(op.bytes));
                let n = self.cfg.num_workers as u64;
                let steps = 2 * (n - 1);
                let rs_end = step_boundary(start, end, n - 1, steps);
                if let Some(trace) = &mut self.trace {
                    trace.push((op.tag, start, rs_end, end));
                }
                if let Some(xray) = &mut self.xray {
                    // At step k every chunk moves one hop concurrently, so
                    // chunk c's hop h occupies step window [t_h, t_{h+1}].
                    for chunk in 0..n {
                        let mut enqueue = start;
                        for hop in 0..steps {
                            let submit = step_boundary(start, end, hop, steps);
                            let deliver = step_boundary(start, end, hop + 1, steps);
                            xray.push(RingHop {
                                tag: op.tag,
                                chunk: chunk as u32,
                                hop: hop as u32,
                                phase: if hop < n - 1 {
                                    RingPhase::ReduceScatter
                                } else {
                                    RingPhase::AllGather
                                },
                                enqueue,
                                submit,
                                deliver,
                            });
                            enqueue = deliver;
                        }
                    }
                }
            }
            done.push(CompletedOp {
                id: op.id,
                bytes: op.bytes,
                tag: op.tag,
                finished_at: end,
            });
            self.maybe_start(now);
        }
        done
    }

    /// Starts the queued head if it can begin by `horizon`. The start
    /// instant is `max(free_at, earliest)` — the ring may have freed in
    /// the past while the head only became eligible later (or vice
    /// versa).
    fn maybe_start(&mut self, horizon: SimTime) {
        if self.active.is_none() {
            let Some(head) = self.queue.front() else {
                return;
            };
            let start = self.free_at.max(head.earliest);
            if start > horizon {
                return; // eligible later; next_event_time reports when
            }
            let op = self.queue.pop_front().expect("head exists");
            let end = start + self.cfg.op_time(op.bytes);
            self.active = Some((op, end));
        }
    }

    /// Ops submitted but not yet finished.
    pub fn outstanding(&self) -> usize {
        self.queue.len() + usize::from(self.active.is_some())
    }

    /// True when nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// Total payload bytes reduced so far.
    pub fn bytes_reduced(&self) -> u64 {
        self.bytes_reduced
    }

    /// Collectives completed so far.
    pub fn ops_reduced(&self) -> u64 {
        self.ops_reduced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_net::Transport;

    fn cfg(n: usize) -> AllReduceConfig {
        // 8 Gbps, ideal transport => 1e9 B/s payload, zero θ.
        let link = NetConfig::gbps(8.0, Transport::ideal());
        AllReduceConfig {
            num_workers: n,
            link,
            sync_base: SimTime::from_micros(100),
        }
    }

    #[test]
    fn op_time_matches_ring_formula() {
        let c = cfg(4);
        // 2*(4-1)/4 = 1.5; 4 MB at 1e9 B/s => 6 ms wire + 100us sync.
        let t = c.op_time(4_000_000);
        assert_eq!(t, SimTime::from_micros(6_100));
    }

    #[test]
    fn sync_overhead_grows_with_ring_size() {
        let link = NetConfig::gbps(8.0, Transport::tcp());
        let small = AllReduceConfig::new(4, link);
        let large = AllReduceConfig::new(64, link);
        assert!(large.sync_overhead() > small.sync_overhead());
    }

    #[test]
    fn larger_rings_approach_bandwidth_limit() {
        // The 2(n-1)/n factor tends to 2: per-op wire time grows but stays
        // below 2x the naive size/bandwidth.
        let t4 = cfg(4).op_time(8_000_000).as_secs_f64();
        let t64 = cfg(64).op_time(8_000_000).as_secs_f64();
        assert!(t64 > t4);
        assert!(t64 < 2.0 * 8_000_000.0 / 1e9 + 0.001);
    }

    #[test]
    fn ops_serialise_in_submission_order() {
        let mut ring = RingAllReduce::new(cfg(4));
        ring.submit(SimTime::ZERO, 4_000_000, 1);
        ring.submit(SimTime::ZERO, 4_000_000, 2);
        assert_eq!(ring.outstanding(), 2);
        let done = ring.advance(SimTime::from_micros(6_100));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        assert_eq!(ring.next_event_time(), SimTime::from_micros(12_200));
        let done = ring.advance(SimTime::from_micros(12_200));
        assert_eq!(done[0].tag, 2);
        assert!(ring.is_idle());
    }

    #[test]
    fn advance_drains_multiple_completions() {
        let mut ring = RingAllReduce::new(cfg(4));
        for tag in 0..3 {
            ring.submit(SimTime::ZERO, 1_000_000, tag);
        }
        let done = ring.advance(SimTime::from_secs(1));
        assert_eq!(done.len(), 3);
        assert_eq!(
            done.iter().map(|c| c.tag).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(ring.bytes_reduced(), 3_000_000);
    }

    #[test]
    fn idle_stream_reports_never() {
        let ring = RingAllReduce::new(cfg(2));
        assert!(ring.next_event_time().is_never());
        assert!(ring.is_idle());
    }

    #[test]
    fn delayed_submission_holds_the_ring_until_eligible() {
        // Horovod cycle modelling: a baseline batch submitted with a
        // delay must not start before `now + delay`, and an idle ring
        // reports the eligibility instant as its next event.
        let mut ring = RingAllReduce::new(cfg(4));
        ring.submit_after(SimTime::ZERO, SimTime::from_millis(2), 4_000_000, 9);
        assert_eq!(ring.next_event_time(), SimTime::from_millis(2));
        assert!(ring.advance(SimTime::from_millis(1)).is_empty());
        // At 2 ms it starts; op takes 6.1 ms.
        let done = ring.advance(SimTime::from_micros(8_100));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished_at, SimTime::from_micros(8_100));
    }

    #[test]
    fn delayed_head_blocks_later_ops_fifo() {
        let mut ring = RingAllReduce::new(cfg(4));
        ring.submit_after(SimTime::ZERO, SimTime::from_millis(5), 1_000_000, 1);
        ring.submit(SimTime::ZERO, 1_000_000, 2); // behind the delayed head
        let mut done = Vec::new();
        loop {
            let t = ring.next_event_time();
            if t.is_never() {
                break;
            }
            done.extend(ring.advance(t).into_iter().map(|c| c.tag));
        }
        assert_eq!(done, vec![1, 2], "FIFO stream even with a delayed head");
    }

    #[test]
    fn hop_records_tile_the_op_span_exactly() {
        let mut ring = RingAllReduce::new(cfg(4));
        ring.enable_xray();
        ring.enable_trace();
        ring.submit(SimTime::ZERO, 4_000_000, 7);
        ring.advance(SimTime::from_micros(6_100));
        let hops = ring.take_xray();
        let n = 4u32;
        let steps = 2 * (n - 1);
        assert_eq!(hops.len(), (n * steps) as usize);
        let (start, end) = (SimTime::ZERO, SimTime::from_micros(6_100));
        for chunk in 0..n {
            let mine: Vec<_> = hops.iter().filter(|h| h.chunk == chunk).collect();
            assert_eq!(mine.len(), steps as usize);
            assert_eq!(mine[0].enqueue, start);
            assert_eq!(mine[0].submit, start);
            assert_eq!(mine.last().unwrap().deliver, end);
            for w in mine.windows(2) {
                assert_eq!(w[0].deliver, w[1].submit, "hop windows abut");
                assert_eq!(w[1].enqueue, w[0].deliver, "enqueue chains hops");
            }
            for h in &mine {
                let expect = if h.hop < n - 1 {
                    RingPhase::ReduceScatter
                } else {
                    RingPhase::AllGather
                };
                assert_eq!(h.phase, expect);
            }
        }
        // The trace span's phase boundary matches the hop decomposition.
        let spans = ring.take_trace();
        assert_eq!(spans.len(), 1);
        let (tag, s, rs_end, e) = spans[0];
        assert_eq!(tag, 7);
        assert_eq!((s, e), (start, end));
        let rs_hop_end = hops
            .iter()
            .filter(|h| h.phase == RingPhase::ReduceScatter)
            .map(|h| h.deliver)
            .max()
            .unwrap();
        assert_eq!(rs_end, rs_hop_end);
        assert!(s < rs_end && rs_end < e);
    }

    #[test]
    fn hop_boundaries_are_exact_under_integer_division() {
        // A duration not divisible by the step count must still produce
        // t_0 == start and t_S == end with monotone boundaries.
        let (s, e) = (SimTime::from_nanos(13), SimTime::from_nanos(1_000_000_007));
        let steps = 6;
        assert_eq!(step_boundary(s, e, 0, steps), s);
        assert_eq!(step_boundary(s, e, steps, steps), e);
        for k in 0..steps {
            assert!(step_boundary(s, e, k, steps) <= step_boundary(s, e, k + 1, steps));
        }
    }

    #[test]
    fn many_small_ops_cost_more_than_one_big_op() {
        // The §6.3 trade-off: partition overhead penalises small chunks.
        let c = cfg(8);
        let one_big = c.op_time(64_000_000);
        let many_small: u64 = (0..64).map(|_| c.op_time(1_000_000).as_nanos()).sum();
        assert!(SimTime::from_nanos(many_small) > one_big);
    }
}
