//! Sharded Parameter Server bookkeeping.
//!
//! Data parallelism with a PS (§2.1): every worker `push`es each gradient
//! partition to the shard owning it; the shard sums the copies (`update`);
//! workers then `pull` the fresh parameters. This module tracks aggregation
//! state per `(iteration, partition)` and answers the one question the
//! runtime needs: *which pulls became legal after this push completed?*
//!
//! Condition 3 of Theorem 1 — "if the push flow in a layer is only
//! partially done, the done part can be pulled" — holds here by
//! construction because aggregation state is tracked per *partition*, not
//! per tensor.

use std::collections::HashMap;

use bs_net::NodeId;
use bs_sim::SimTime;
use serde::Serialize;

/// Identifies one partition of one tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct PartitionKey {
    /// Tensor (layer) index within the model.
    pub tensor: u32,
    /// Partition index within the tensor.
    pub part: u32,
}

/// How partitions are placed onto PS shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ShardAssign {
    /// All partitions of a tensor land on the tensor's shard
    /// (round-robin by tensor index) — MXNet's default key placement.
    /// With VGG16 this puts the 411 MB `fc6` on one shard: the load
    /// imbalance the paper blames for baseline slowness (§6.2).
    PerTensor,
    /// Each partition is an independent key, round-robin by a global
    /// partition counter — the placement that emerges when ByteScheduler
    /// repartitions tensors into many keys, balancing shard load.
    PerPartition,
}

/// Synchronisation mode (§2.1; the paper reports synchronous numbers and
/// notes asynchronous speed-ups are similar).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum PsMode {
    /// A partition becomes pullable only after *all* workers pushed it.
    Synchronous,
    /// A worker may pull a partition right after its own push (stale
    /// gradients permitted).
    Asynchronous,
}

/// PS deployment configuration.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PsConfig {
    /// Number of workers pushing gradients.
    pub num_workers: usize,
    /// Number of PS shards. The paper co-deploys one server per worker
    /// machine, so harness configs use `num_servers == num_workers`.
    pub num_servers: usize,
    /// Placement policy.
    pub assign: ShardAssign,
    /// Synchronisation mode.
    pub mode: PsMode,
}

/// A pull that became legal: `worker` may now fetch `key` from `shard`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct PullGrant {
    /// The worker allowed to pull.
    pub worker: usize,
    /// The partition that is ready.
    pub key: PartitionKey,
}

/// Parameter-server control plane: shard placement + aggregation counting.
///
/// Node-id convention (shared with the runtime): workers occupy network
/// nodes `0..num_workers`, shards occupy `num_workers..num_workers +
/// num_servers`.
#[derive(Clone, Debug)]
pub struct ParamServer {
    cfg: PsConfig,
    /// Pushes received per (iteration, key).
    arrived: HashMap<(u64, PartitionKey), u32>,
    /// Shard of each key under `PerPartition`, assigned on first sight.
    partition_shard: HashMap<PartitionKey, usize>,
    /// Next shard for the global per-partition round-robin.
    next_shard: usize,
    /// When enabled, aggregation-complete instants for causal tracing:
    /// `(iter, tensor, part, at)` per key whose pulls became legal.
    xray: Option<Vec<(u64, u32, u32, SimTime)>>,
}

impl ParamServer {
    /// Creates the control plane.
    pub fn new(cfg: PsConfig) -> Self {
        assert!(cfg.num_workers > 0, "need at least one worker");
        assert!(cfg.num_servers > 0, "need at least one server");
        ParamServer {
            cfg,
            arrived: HashMap::new(),
            partition_shard: HashMap::new(),
            next_shard: 0,
            xray: None,
        }
    }

    /// Enables aggregation-event recording for causal tracing. Recording
    /// never changes grant decisions.
    pub fn enable_xray(&mut self) {
        if self.xray.is_none() {
            self.xray = Some(Vec::new());
        }
    }

    /// Drains recorded aggregation completions: `(iter, tensor, part, at)`
    /// per key whose pulls became legal.
    pub fn take_xray(&mut self) -> Vec<(u64, u32, u32, SimTime)> {
        self.xray.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The configuration.
    pub fn config(&self) -> &PsConfig {
        &self.cfg
    }

    /// Network node hosting `key`'s shard.
    pub fn shard_of(&mut self, key: PartitionKey) -> NodeId {
        let shard = match self.cfg.assign {
            ShardAssign::PerTensor => key.tensor as usize % self.cfg.num_servers,
            ShardAssign::PerPartition => {
                let next = &mut self.next_shard;
                let n = self.cfg.num_servers;
                *self.partition_shard.entry(key).or_insert_with(|| {
                    let s = *next;
                    *next = (*next + 1) % n;
                    s
                })
            }
        };
        NodeId(self.cfg.num_workers + shard)
    }

    /// Records that `worker`'s push of `key` for `iter` finished arriving
    /// at its shard at `now`. Returns the pulls that this completion makes
    /// legal: in synchronous mode, all workers' pulls once the last copy
    /// arrives; in asynchronous mode, just this worker's own pull.
    pub fn on_push_complete(
        &mut self,
        now: SimTime,
        iter: u64,
        key: PartitionKey,
        worker: usize,
    ) -> Vec<PullGrant> {
        assert!(
            worker < self.cfg.num_workers,
            "worker {worker} out of range"
        );
        let grants = match self.cfg.mode {
            PsMode::Asynchronous => vec![PullGrant { worker, key }],
            PsMode::Synchronous => {
                let count = self.arrived.entry((iter, key)).or_insert(0);
                *count += 1;
                debug_assert!(
                    *count <= self.cfg.num_workers as u32,
                    "more pushes than workers for {key:?}"
                );
                if *count == self.cfg.num_workers as u32 {
                    self.arrived.remove(&(iter, key));
                    (0..self.cfg.num_workers)
                        .map(|w| PullGrant { worker: w, key })
                        .collect()
                } else {
                    Vec::new()
                }
            }
        };
        if !grants.is_empty() {
            if let Some(x) = self.xray.as_mut() {
                x.push((iter, key.tensor, key.part, now));
            }
        }
        grants
    }

    /// Number of partitions still mid-aggregation (sync mode only).
    pub fn pending_aggregations(&self) -> usize {
        self.arrived.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize, servers: usize, assign: ShardAssign, mode: PsMode) -> PsConfig {
        PsConfig {
            num_workers: workers,
            num_servers: servers,
            assign,
            mode,
        }
    }

    fn key(tensor: u32, part: u32) -> PartitionKey {
        PartitionKey { tensor, part }
    }

    #[test]
    fn per_tensor_assignment_is_round_robin_by_tensor() {
        let mut ps = ParamServer::new(cfg(2, 3, ShardAssign::PerTensor, PsMode::Synchronous));
        assert_eq!(ps.shard_of(key(0, 0)), NodeId(2));
        assert_eq!(ps.shard_of(key(0, 5)), NodeId(2)); // same tensor, same shard
        assert_eq!(ps.shard_of(key(1, 0)), NodeId(3));
        assert_eq!(ps.shard_of(key(2, 0)), NodeId(4));
        assert_eq!(ps.shard_of(key(3, 0)), NodeId(2)); // wraps
    }

    #[test]
    fn per_partition_assignment_spreads_one_tensor() {
        let mut ps = ParamServer::new(cfg(2, 3, ShardAssign::PerPartition, PsMode::Synchronous));
        let shards: Vec<_> = (0..6).map(|p| ps.shard_of(key(0, p)).0).collect();
        assert_eq!(shards, vec![2, 3, 4, 2, 3, 4]);
        // Assignment is sticky.
        assert_eq!(ps.shard_of(key(0, 0)), NodeId(2));
    }

    #[test]
    fn sync_mode_grants_pulls_only_after_all_pushes() {
        let mut ps = ParamServer::new(cfg(3, 1, ShardAssign::PerTensor, PsMode::Synchronous));
        assert!(ps
            .on_push_complete(SimTime::ZERO, 0, key(0, 0), 0)
            .is_empty());
        assert!(ps
            .on_push_complete(SimTime::ZERO, 0, key(0, 0), 1)
            .is_empty());
        let grants = ps.on_push_complete(SimTime::ZERO, 0, key(0, 0), 2);
        assert_eq!(grants.len(), 3);
        assert!(grants.iter().all(|g| g.key == key(0, 0)));
        let workers: Vec<_> = grants.iter().map(|g| g.worker).collect();
        assert_eq!(workers, vec![0, 1, 2]);
        assert_eq!(ps.pending_aggregations(), 0);
    }

    #[test]
    fn partitions_aggregate_independently() {
        // Theorem 1 condition 3: a done partition is pullable even while
        // the rest of the tensor is still in flight.
        let mut ps = ParamServer::new(cfg(2, 1, ShardAssign::PerTensor, PsMode::Synchronous));
        ps.on_push_complete(SimTime::ZERO, 0, key(0, 0), 0);
        ps.on_push_complete(SimTime::ZERO, 0, key(0, 1), 0);
        let g = ps.on_push_complete(SimTime::ZERO, 0, key(0, 0), 1);
        assert_eq!(g.len(), 2, "partition 0 ready while partition 1 pending");
        assert_eq!(ps.pending_aggregations(), 1);
    }

    #[test]
    fn iterations_do_not_interfere() {
        let mut ps = ParamServer::new(cfg(2, 1, ShardAssign::PerTensor, PsMode::Synchronous));
        ps.on_push_complete(SimTime::ZERO, 0, key(0, 0), 0);
        // Same key, next iteration: separate aggregation.
        assert!(ps
            .on_push_complete(SimTime::ZERO, 1, key(0, 0), 0)
            .is_empty());
        assert_eq!(ps.pending_aggregations(), 2);
    }

    #[test]
    fn async_mode_grants_own_pull_immediately() {
        let mut ps = ParamServer::new(cfg(3, 1, ShardAssign::PerTensor, PsMode::Asynchronous));
        let g = ps.on_push_complete(SimTime::ZERO, 0, key(2, 1), 1);
        assert_eq!(
            g,
            vec![PullGrant {
                worker: 1,
                key: key(2, 1)
            }]
        );
    }

    #[test]
    fn xray_records_aggregation_instants() {
        let mut ps = ParamServer::new(cfg(2, 1, ShardAssign::PerTensor, PsMode::Synchronous));
        ps.enable_xray();
        ps.on_push_complete(SimTime::from_micros(5), 0, key(3, 1), 0);
        assert!(ps.take_xray().is_empty(), "no grant, no aggregation event");
        ps.on_push_complete(SimTime::from_micros(9), 0, key(3, 1), 1);
        assert_eq!(ps.take_xray(), vec![(0, 3, 1, SimTime::from_micros(9))]);
        assert!(ps.take_xray().is_empty(), "drained");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bogus_worker_rejected() {
        let mut ps = ParamServer::new(cfg(2, 1, ShardAssign::PerTensor, PsMode::Synchronous));
        ps.on_push_complete(SimTime::ZERO, 0, key(0, 0), 5);
    }
}
