//! Gradient-synchronisation architectures: sharded Parameter Server and
//! ring all-reduce.
//!
//! The paper treats both architectures through the same DAG lens (§2.1):
//! a PS replaces each gradient exchange by a `push` (worker → server,
//! aggregate) followed by a `pull` (server → worker), while all-reduce is a
//! single collective op per tensor. This crate provides both as state
//! machines the runtime drives:
//!
//! * [`ps::ParamServer`] — key bookkeeping: which shard owns which
//!   partition (round-robin per tensor, the naïve baseline placement the
//!   paper calls out, or per partition, which is what ByteScheduler's
//!   repartitioning produces), and when a partition's aggregation is
//!   complete so pulls may begin. Synchronous and asynchronous modes.
//!   The actual bytes move over [`bs_net::Network`]; the PS only decides
//!   *what* may move *when*.
//! * [`allreduce::RingAllReduce`] — a serialised collective stream (NCCL
//!   semantics: one op at a time per communicator, in submission order)
//!   with the standard ring cost `2(n−1)/n · size / bandwidth` plus a
//!   per-operation synchronisation overhead that grows with the worker
//!   count — the reason all-reduce wants much larger partitions than PS
//!   (§6.3, Table 1).

pub mod allreduce;
pub mod ps;

pub use allreduce::{AllReduceConfig, CompletedOp, OpId, RingAllReduce, RingHop, RingPhase};
pub use ps::{ParamServer, PartitionKey, PsConfig, PsMode, PullGrant, ShardAssign};
