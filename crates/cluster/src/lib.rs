//! Multi-job shared-fabric cluster simulation.
//!
//! The paper's §7 names co-scheduling in a shared cluster as the open
//! problem: ByteScheduler orders one job's traffic perfectly but ignores
//! what the *other* tenants of the network are doing. This crate builds
//! the testbed that question needs — `N` concurrent training jobs
//! multiplexed over **one** fabric under **one** simulated clock, so jobs
//! genuinely contend on shared machine NICs rather than being approximated
//! by synthetic burst generators.
//!
//! The pieces:
//!
//! * [`JobSpec`] — one tenant: a full training job (any model, PS or
//!   all-reduce, any scheduler policy, an arrival time and iteration
//!   budget), or a degenerate burst source that only injects co-tenant
//!   traffic (the cluster-native form of
//!   [`bs_runtime::BackgroundLoad`]).
//! * [`PlacementPolicy`] — how job-local nodes map onto cluster machines:
//!   round-robin spread, packed, or network-aware (CASSINI-style: place
//!   to minimise expected link overlap between jobs).
//! * [`run_cluster`] — the driver. It is the same pull-based event loop
//!   as the single-job [`bs_runtime::world`] driver, generalised to many
//!   [`bs_runtime::JobState`]s: per instant it drains the cascade queue,
//!   advances each job's own sources (GPU ops, bursts, private rings) and
//!   then the shared fabric, demultiplexing fabric events back to their
//!   owning job via the tag namespace in [`bs_runtime::job`]. A
//!   single-job cluster is *event-identical* to `World::run` — the
//!   degenerate-case property the test-suite pins bit-for-bit.
//! * [`ClusterResult`] — per-job completion times (JCT), makespan,
//!   Jain's fairness index over per-job throughput, and per-machine link
//!   utilisation; optionally a merged Chrome trace with one track group
//!   per job.
//!
//! Contention semantics: jobs sharing a machine share that machine's NIC
//! in both directions, under whichever [`bs_net::FabricModel`] the
//! cluster uses (strict FIFO or max-min fair). All-reduce jobs keep their
//! ring on a private collective stream (exactly as the single-job driver
//! always has) and therefore only contend for machines, not wires; see
//! DESIGN.md for the rationale and limits of that approximation.

pub mod contention;
pub mod driver;
pub mod metrics;
pub mod placement;
pub mod spec;

pub use contention::{
    ContentionMatrix, JobLinkShare, LinkContention, PairContention, CONTENTION_SCHEMA,
    CONTENTION_SCHEMA_VERSION,
};
pub use driver::{run_cluster, run_cluster_observed};
pub use metrics::{
    jain_index, percentile_nearest_rank, ClusterResult, DistSummary, JobOutcome, LinkUtil,
    MigrationRecord, NodeMove,
};
pub use placement::PlacementPolicy;
pub use spec::{ClusterConfig, FaultReaction, JobSpec};
