//! The cluster driver: N jobs, one fabric, one clock.
//!
//! Structurally this is [`bs_runtime::world`]'s event loop generalised to
//! many [`JobState`]s. Per instant it (1) drains the LIFO cascade queue,
//! routing each event to its owning job, (2) finds the earliest next
//! event across every job and the shared fabric, (3) advances each job's
//! own sources (co-tenant bursts, GPU ops, private ring streams) in job
//! order, and (4) advances the shared fabric last, demultiplexing its
//! events by the job-id bits of each transfer tag. With one job the event
//! sequence is identical to the single-job driver's — the degenerate-case
//! equivalence the test-suite pins bit-for-bit.
//!
//! # Conservative-parallel mode (`ClusterConfig::threads > 1`)
//!
//! Between shared-fabric interaction points, co-tenant jobs are causally
//! independent: a job with no transfer pending on the fabric cannot
//! receive a fabric event, and everything else it does (GPU ops, ring
//! steps, fault timers) is private. The parallel core exploits exactly
//! that lookahead, and nothing more — which is why it is *conservative*
//! in the classic Chandy–Misra sense and reproduces the sequential event
//! order bit-for-bit (pinned by the `parallel_*` tests and the proptest
//! suite in `tests/cluster_parallel_properties.rs`):
//!
//! 1. **Plan.** With the cascade queue empty, scan the fabric's pending
//!    tags; jobs owning none of them are candidates.
//! 2. **Free-run.** Fan the candidates across a persistent
//!    [`WorkerPool`]. Each worker advances its job against a
//!    [`SubmitLog`] — a fabric stand-in that records submissions instead
//!    of simulating them — and parks at the end of the first instant in
//!    which the job submitted anything (its next fabric interaction).
//!    Every advance up to that point is a per-instant `Step` in the log.
//! 3. **Replay.** Back on the driver thread, a logged job's clock is its
//!    next unconsumed step. Each global iteration consumes at most one
//!    step: advance-phase submissions are replayed in job order, and a
//!    marker pushed where the job's cascade block would sit replays the
//!    step's cascade-phase submissions when it pops. The job's *state*
//!    was already mutated by the free-run; the replay only re-times its
//!    fabric traffic.
//!
//! Correctness leans on one engine-level invariant, asserted in
//! `DESIGN.md §13`: advancing a job at an instant where it has nothing
//! due is a strict no-op, so free-running a job only at its own event
//! instants is state-identical to the sequential loop advancing it at
//! every global instant.

use bs_faults::{
    ClusterChange, ClusterFaultEntry, ClusterFaultInjector, FaultPlan, LinkChange, LinkDir,
};
use bs_net::{
    DroppedTransfer, Fabric, LoggedSubmit, NetEvent, NetPort, NodeId, ScopeWindow, SubmitLog,
};
use bs_scope::{ScopeBus, ScopeEvent};
use bs_tune::RestartCost;

use crate::contention::ContentionMatrix;
use bs_runtime::job::{inner_tag, job_of_tag, wire_span_into_trace, MAX_JOBS};
use bs_runtime::traffic::{BurstSource, BG_TAG};
use bs_runtime::{
    net_window_event, JobEvent, JobNetStats, JobState, NodeMap, RunOutcome, WorldConfig,
};
use bs_sim::{SimTime, Trace, WorkerPool};
use bs_telemetry::MetricSet;

use crate::metrics::{jain_index, ClusterResult, JobOutcome, LinkUtil, MigrationRecord, NodeMove};
use crate::placement::PlacementPolicy;
use crate::spec::{ClusterConfig, FaultReaction, JobSpec};

/// One tenant's live state.
#[allow(clippy::large_enum_variant)]
enum ClusterJob {
    Train {
        state: JobState,
        cfg: WorldConfig,
        arrival: SimTime,
        finished: Option<SimTime>,
    },
    Burst {
        src: BurstSource,
        nodes: NodeMap,
        pairs: usize,
        seed_at: SimTime,
        seeded: bool,
    },
}

impl ClusterJob {
    fn next_event_time(&self) -> SimTime {
        match self {
            ClusterJob::Train { state, .. } => state.next_event_time(),
            ClusterJob::Burst {
                src,
                seed_at,
                seeded,
                ..
            } => {
                if *seeded {
                    src.next_time()
                } else {
                    *seed_at
                }
            }
        }
    }

    fn advance<P: NetPort>(&mut self, t: SimTime, fabric: &mut P, out: &mut Vec<JobEvent>) {
        match self {
            ClusterJob::Train { state, .. } => state.advance(t, fabric, out),
            ClusterJob::Burst {
                src,
                nodes,
                pairs,
                seed_at,
                seeded,
            } => {
                if !*seeded && *seed_at <= t {
                    // First activation: one burst per pair in each
                    // direction, mirroring the single-job co-tenant model
                    // (workers are local nodes 0..pairs, "servers"
                    // pairs..2*pairs).
                    for w in 0..*pairs {
                        let worker = nodes.node(w);
                        let server = nodes.node(*pairs + w);
                        src.seed(t, fabric, nodes, server, worker, BG_TAG | (2 * w as u64));
                        src.seed(
                            t,
                            fabric,
                            nodes,
                            worker,
                            server,
                            BG_TAG | (2 * w as u64 + 1),
                        );
                    }
                    *seeded = true;
                }
                src.fire_due(t, fabric, nodes);
            }
        }
    }

    fn handle<P: NetPort>(
        &mut self,
        ev: JobEvent,
        now: SimTime,
        fabric: &mut P,
        out: &mut Vec<JobEvent>,
    ) {
        match self {
            ClusterJob::Train { state, .. } => state.handle(ev, now, fabric, out),
            ClusterJob::Burst { src, .. } => {
                // A burst tenant only ever sees its own wire milestones:
                // re-arm on delivery, ignore releases.
                if let JobEvent::Net(NetEvent::Delivered(c)) = ev {
                    src.on_delivered(now, &c);
                }
            }
        }
    }

    /// Buffered scope events so far (0 for burst tenants and whenever
    /// observation is off).
    fn scope_len(&self) -> usize {
        match self {
            ClusterJob::Train { state, .. } => state.scope_len(),
            ClusterJob::Burst { .. } => 0,
        }
    }

    /// Publishes this tenant's buffered scope events up to index `to`.
    fn publish_scope_upto(&mut self, bus: &mut ScopeBus, to: usize) {
        if let ClusterJob::Train { state, .. } = self {
            state.publish_scope_upto(bus, to);
        }
    }

    /// Publishes every buffered scope event.
    fn publish_scope(&mut self, bus: &mut ScopeBus) {
        if let ClusterJob::Train { state, .. } = self {
            state.publish_scope(bus);
        }
    }
}

/// Free-runs are shipped to pool workers, so a tenant's whole state must
/// be `Send`; this fails to compile if any job component regresses.
#[allow(dead_code)]
fn cluster_jobs_are_send(job: ClusterJob) -> impl Send {
    job
}

/// One queue entry: a routed job event, or (parallel mode only) a replay
/// marker standing where a free-run job's cascade block would sit.
enum QueueItem {
    Ev(JobEvent),
    /// Replay marker for step `.0` of the owning job's log: popping it
    /// replays that step's cascade-phase submissions.
    Marker(usize),
}

/// One free-run instant: everything the job did at time `t`, split at the
/// advance/cascade boundary so the replay can interleave with the global
/// loop's two phases. Submission indices are prefix ends into
/// [`JobLog::submits`]; a step's advance range starts at the previous
/// step's `cascade_end`.
struct Step {
    t: SimTime,
    adv_end: u32,
    cascade_end: u32,
    /// Scope-event prefix ends mirroring `adv_end`/`cascade_end`, into
    /// the job's buffered scope stream (both 0 with observation off).
    /// The replay publishes each range at the same phase boundary the
    /// sequential driver would have emitted it, so the bus sees the
    /// exact sequential event order.
    scope_adv_end: u32,
    scope_cascade_end: u32,
}

/// The complete record of one job's free-run: its per-instant steps and
/// every fabric submission, in call order.
struct JobLog {
    submits: Vec<LoggedSubmit>,
    steps: Vec<Step>,
}

/// Replay cursor over a [`JobLog`]. While one of these exists for a job,
/// the job's *state* is already at the park point; only its fabric
/// traffic is still being re-timed into the shared simulation.
struct Replay {
    log: JobLog,
    /// Next step to consume in the advance phase. Markers pop in the
    /// drain immediately after the advance that pushed them, so at every
    /// plan/clock/done decision point this also counts replayed cascades.
    next_step: usize,
}

/// Parallel-mode state: the persistent worker pool plus one optional
/// replay cursor per job.
struct ParCtx {
    pool: WorkerPool,
    replays: Vec<Option<Replay>>,
    iters_since_plan: u64,
}

/// Iterations between free-run plans. Planning costs a pending-tag scan
/// plus a pool fan-out, so it cannot run every instant; once per
/// `PLAN_INTERVAL` keeps the overhead off the hot loop while still
/// catching jobs inside their compute phases.
const PLAN_INTERVAL: u64 = 32;

/// Upper bound on steps per free-run, purely defensive: breaking early
/// is always safe (the replay simply covers a shorter prefix), so a
/// pathological never-submitting job degrades to sequential execution
/// instead of unbounded log growth.
const FREE_RUN_STEP_CAP: usize = 1 << 20;

/// Runs `job` forward against a [`SubmitLog`] until the end of the first
/// instant in which it submitted to the fabric (its next shared
/// interaction), it finishes, or it runs out of private events.
///
/// The loop is the sequential driver's per-job projection: pick the job's
/// own next instant, advance, then drain its cascades LIFO. Because a
/// candidate job has nothing pending on the fabric, the sequential loop
/// would feed it no events and advance it as a no-op at every foreign
/// instant — so this produces the identical state trajectory.
///
/// `barrier` is the next cluster-scope fault instant: a free-run must
/// never advance into (or past) it, because a machine failure inspects
/// and mutates job state on the driver thread — every replay must be
/// fully consumed strictly before the change fires.
fn free_run(job: &mut ClusterJob, barrier: SimTime) -> JobLog {
    // A finished training job only carries background bursts; its
    // `done()` is permanently true and must not end the run early.
    let check_done = matches!(job, ClusterJob::Train { finished: None, .. });
    let mut log = SubmitLog::new();
    let mut steps: Vec<Step> = Vec::new();
    let mut queue: Vec<JobEvent> = Vec::new();
    loop {
        let t = job.next_event_time();
        if t.is_never() || t >= barrier {
            break;
        }
        let adv_start = log.len();
        job.advance(t, &mut log, &mut queue);
        let adv_end = log.len();
        let scope_adv_end = job.scope_len();
        while let Some(ev) = queue.pop() {
            job.handle(ev, t, &mut log, &mut queue);
        }
        let cascade_end = log.len();
        steps.push(Step {
            t,
            adv_end: adv_end as u32,
            cascade_end: cascade_end as u32,
            scope_adv_end: scope_adv_end as u32,
            scope_cascade_end: job.scope_len() as u32,
        });
        let done = check_done && matches!(job, ClusterJob::Train { state, .. } if state.done());
        if done || cascade_end > adv_start || steps.len() >= FREE_RUN_STEP_CAP {
            break;
        }
    }
    JobLog {
        submits: log.submits,
        steps,
    }
}

/// Finds jobs with no stake in the shared fabric and free-runs them on
/// the pool. Must be called with the cascade queue empty and every prior
/// replay fully consumed.
fn plan_free_runs<P: NetPort>(
    jobs: &mut [ClusterJob],
    fabric: &P,
    ctx: &mut ParCtx,
    barrier: SimTime,
) {
    debug_assert!(ctx.replays.iter().all(|r| r.is_none()));
    // A job owning any pending transfer (queued, on-wire, or awaiting
    // delivery) may receive a fabric event at an instant it cannot
    // predict alone — it must stay on the sequential path.
    let mut pending: u32 = 0;
    fabric.for_each_pending_tag(&mut |tag| pending |= 1 << job_of_tag(tag));
    let mut candidates: Vec<(usize, &mut ClusterJob)> = jobs
        .iter_mut()
        .enumerate()
        .filter(|(j, job)| pending & (1u32 << *j) == 0 && !job.next_event_time().is_never())
        .collect();
    if candidates.len() < 2 {
        // One lone candidate gains nothing from a detour through a log.
        return;
    }
    let mut logs: Vec<(usize, Option<JobLog>)> =
        candidates.iter().map(|(j, _)| (*j, None)).collect();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = candidates
        .iter_mut()
        .zip(logs.iter_mut())
        .map(|((_, job), (_, slot))| {
            let job: &mut ClusterJob = job;
            let t: Box<dyn FnOnce() + Send + '_> =
                Box::new(move || *slot = Some(free_run(job, barrier)));
            t
        })
        .collect();
    ctx.pool.run_scoped(tasks);
    for (j, log) in logs {
        let log = log.expect("free-run task ran to completion");
        if !log.steps.is_empty() {
            ctx.replays[j] = Some(Replay { log, next_step: 0 });
        }
    }
}

/// Per-job and per-machine traffic attribution recorded by the drive
/// loop's fabric-demux phase.
struct Accounting {
    job_bytes: Vec<u64>,
    job_events: Vec<u64>,
    up_bytes: Vec<u64>,
    down_bytes: Vec<u64>,
    /// `[j][m] = (up, down)` delivered bytes, metrics mode only.
    job_nic_bytes: Option<Vec<Vec<(u64, u64)>>>,
}

/// Cluster-scope fault state threaded through the drive loop: the sealed
/// fault timeline, machine health, and the recovery loop's bookkeeping.
struct FaultCtx {
    injector: ClusterFaultInjector,
    /// Machine health as of the driver clock, flipped by machine edges.
    healthy: Vec<bool>,
    reaction: FaultReaction,
    /// §7 checkpoint-restart cost model pricing each migration.
    restart: RestartCost,
    /// Rebuilt job states must re-attach to the observation bus.
    scope_on: bool,
    migrations: Vec<MigrationRecord>,
}

impl FaultCtx {
    /// Machine health at instant `t`: every machine edge in the static
    /// timeline with `at <= t`, applied in timeline order over an
    /// all-healthy start. The timeline never changes mid-run, so health
    /// at any future instant is known at decision time — that is what
    /// makes deferred placement deterministic.
    fn healthy_at(&self, t: SimTime) -> Vec<bool> {
        let mut h = vec![true; self.healthy.len()];
        for e in self.injector.timeline() {
            if e.at > t {
                break;
            }
            match e.change {
                ClusterChange::MachineDown { machine } => h[machine] = false,
                ClusterChange::MachineUp { machine } => h[machine] = true,
                ClusterChange::Link(_) => {}
            }
        }
        h
    }

    /// The earliest resume instant `>= earliest` at which a health-aware
    /// remap of `current` exists: `earliest` itself, else the pending
    /// queue — each future machine restore in time order. `None` means no
    /// placement will ever exist and the job must fail.
    fn find_placement(
        &self,
        current: &[NodeId],
        earliest: SimTime,
    ) -> Option<(SimTime, Vec<NodeId>)> {
        let restores = self
            .injector
            .timeline()
            .iter()
            .filter(|e| e.at > earliest && matches!(e.change, ClusterChange::MachineUp { .. }))
            .map(|e| e.at);
        for at in std::iter::once(earliest).chain(restores) {
            if let Some(nodes) = PlacementPolicy::remap_healthy(current, &self.healthy_at(at)) {
                return Some((at, nodes));
            }
        }
        None
    }
}

/// Routes a transfer the driver killed on a shared port into its owning
/// tenant: a training job's recovery machinery, or a burst tenant's
/// re-arm queue.
fn route_drop<P: NetPort>(
    jobs: &mut [ClusterJob],
    d: DroppedTransfer,
    now: SimTime,
    fabric: &mut P,
) {
    match &mut jobs[job_of_tag(d.tag)] {
        ClusterJob::Train { state, .. } => state.route_fabric_drop(d, now, fabric),
        ClusterJob::Burst { src, .. } => src.requeue(now, d.src, d.dst, inner_tag(d.tag)),
    }
}

/// Buffers a `FaultFired` event on the affected tenants' scope streams:
/// on the owning job alone for a hoisted job-private change (with the
/// job-local node index its solo run would report), or on every
/// unfinished training job placed on the machine for a cluster-scope
/// change.
fn push_fault_event(
    jobs: &mut [ClusterJob],
    owner: Option<usize>,
    machine: usize,
    local_node: usize,
    kind: &'static str,
    scale: f64,
    now: SimTime,
) {
    match owner {
        Some(j) => {
            if let ClusterJob::Train { state, .. } = &mut jobs[j] {
                state.scope_push(ScopeEvent::FaultFired {
                    job: j,
                    at: now,
                    kind,
                    node: local_node,
                    scale,
                });
            }
        }
        None => {
            for (j, job) in jobs.iter_mut().enumerate() {
                if let ClusterJob::Train {
                    state,
                    finished: None,
                    ..
                } = job
                {
                    if state.nodes().fabric_nodes().iter().any(|n| n.0 == machine) {
                        state.scope_push(ScopeEvent::FaultFired {
                            job: j,
                            at: now,
                            kind,
                            node: machine,
                            scale,
                        });
                    }
                }
            }
        }
    }
}

/// The reactive recovery loop for one failed machine.
///
/// Health bookkeeping first, then the port kill: in-flight transfers of
/// tenants that will migrate die silently with their checkpointed state,
/// everyone else's route into loss recovery (retransmits queue against
/// the dead NIC until it restores). Finally each affected training job —
/// unfinished, not failed, with a node on the machine — is checkpointed
/// and migrated in job order.
fn on_machine_down<P: NetPort>(
    machine: usize,
    now: SimTime,
    jobs: &mut [ClusterJob],
    fabric: &mut P,
    fc: &mut FaultCtx,
) {
    fc.healthy[machine] = false;
    push_fault_event(jobs, None, machine, machine, "machine_down", 0.0, now);
    let mut affected: Vec<usize> = Vec::new();
    if fc.reaction == FaultReaction::CheckpointMigrate {
        for (j, job) in jobs.iter().enumerate() {
            if let ClusterJob::Train {
                state,
                finished: None,
                ..
            } = job
            {
                if state.failed().is_none()
                    && state.nodes().fabric_nodes().iter().any(|n| n.0 == machine)
                {
                    affected.push(j);
                }
            }
        }
    }
    for d in fabric.kill_port(now, NodeId(machine)) {
        if affected.contains(&job_of_tag(d.tag)) {
            continue;
        }
        route_drop(jobs, d, now, fabric);
    }
    for j in affected {
        checkpoint_migrate(j, machine, now, jobs, fabric, fc);
    }
}

/// Checkpoints job `j` at its last completed iteration barrier, prices
/// the restart with the §7 cost model, remaps its nodes onto healthy
/// machines (deferring to a future restore when the healthy pool is too
/// small) and rebuilds its state to resume there — or fails the job
/// closed when no placement will ever exist.
fn checkpoint_migrate<P: NetPort>(
    j: usize,
    failed_machine: usize,
    now: SimTime,
    jobs: &mut [ClusterJob],
    fabric: &mut P,
    fc: &mut FaultCtx,
) {
    // The job's entire fabric footprint is torn down — queued and
    // in-flight transfers on *every* port, not just the dead one. Ports
    // stay up for co-tenants.
    fabric.cancel_where(now, &mut |tag| job_of_tag(tag) == j);
    let ClusterJob::Train { state, cfg, .. } = &mut jobs[j] else {
        unreachable!("only training jobs migrate")
    };
    // The checkpoint barrier backs off so the resumed run keeps at least
    // the two iterations the measurement contract needs.
    let ckpt = state
        .completed_iterations()
        .min(cfg.iters.saturating_sub(2));
    let lost = state
        .debug_iterations()
        .into_iter()
        .max()
        .unwrap_or(0)
        .saturating_sub(ckpt);
    let model_bytes: u64 = cfg.model.layers.iter().map(|l| l.param_bytes).sum();
    let cost_secs = fc.restart.total_secs(model_bytes);
    let earliest = now + SimTime::from_secs_f64(cost_secs);
    let Some((resume_at, new_nodes)) = fc.find_placement(state.nodes().fabric_nodes(), earliest)
    else {
        state.abort(
            format!(
                "machine {failed_machine} failed and no healthy placement \
                 exists for {} nodes, now or at any scheduled restore",
                state.nodes().fabric_nodes().len()
            ),
            now,
        );
        return;
    };
    let old_nodes: Vec<NodeId> = state.nodes().fabric_nodes().to_vec();
    let mut cfg2 = cfg.clone();
    cfg2.iters = cfg.iters - ckpt;
    cfg2.warmup = cfg.warmup.min(cfg2.iters - 2);
    let mut next = JobState::build_at(&cfg2, NodeMap::new(j, new_nodes.clone()), resume_at);
    if fc.scope_on {
        next.enable_scope(j, resume_at);
    }
    next.scope_push(ScopeEvent::FaultFired {
        job: j,
        at: now,
        kind: "machine_down",
        node: failed_machine,
        scale: 0.0,
    });
    next.scope_push(ScopeEvent::Checkpoint {
        job: j,
        at: now,
        machine: failed_machine,
        iter: ckpt,
        cost_secs,
    });
    let mut moved: Vec<NodeMove> = Vec::new();
    for (local, (old, new)) in old_nodes.iter().zip(&new_nodes).enumerate() {
        if old != new {
            next.scope_push(ScopeEvent::Migrate {
                job: j,
                at: now,
                node: local,
                from_machine: old.0,
                to_machine: new.0,
            });
            moved.push(NodeMove {
                node: local,
                from: old.0,
                to: new.0,
            });
        }
    }
    next.scope_push(ScopeEvent::Resume {
        job: j,
        at: resume_at,
        iter: ckpt,
        lost_iters: lost,
    });
    fc.migrations.push(MigrationRecord {
        job: j,
        at: now,
        resumed_at: resume_at,
        machine: failed_machine,
        checkpoint_iter: ckpt,
        lost_iters: lost,
        moved,
    });
    *state = next;
    *cfg = cfg2;
}

/// Applies one due cluster fault entry: scope events first (exactly as
/// the solo injector orders them), then the fabric mutation, routing any
/// killed transfers to their owners.
fn apply_cluster_entry<P: NetPort>(
    entry: ClusterFaultEntry,
    now: SimTime,
    jobs: &mut [ClusterJob],
    fabric: &mut P,
    fc: &mut FaultCtx,
) {
    match entry.change {
        ClusterChange::Link(change) => {
            push_fault_event(
                jobs,
                entry.owner,
                change.node(),
                entry.local_node,
                change.kind(),
                change.capacity_fraction(),
                now,
            );
            match change {
                LinkChange::Scale { node, dir, scale } => {
                    fabric.set_port_scale(now, NodeId(node), matches!(dir, LinkDir::Up), scale);
                }
                LinkChange::FlapDown { node } => {
                    for d in fabric.kill_port(now, NodeId(node)) {
                        route_drop(jobs, d, now, fabric);
                    }
                }
                LinkChange::FlapUp { node } => fabric.revive_port(now, NodeId(node)),
            }
        }
        ClusterChange::MachineDown { machine } => on_machine_down(machine, now, jobs, fabric, fc),
        ClusterChange::MachineUp { machine } => {
            fc.healthy[machine] = true;
            push_fault_event(jobs, None, machine, machine, "machine_up", 1.0, now);
            fabric.revive_port(now, NodeId(machine));
        }
    }
}

/// The cluster event loop, monomorphised over the concrete fabric.
/// Returns the makespan. With `par == None` this is exactly the
/// sequential driver; with a [`ParCtx`] it interleaves free-run planning
/// and replay without perturbing the event order (see the module docs).
fn drive<P: NetPort>(
    jobs: &mut [ClusterJob],
    fabric: &mut P,
    acct: &mut Accounting,
    mut par: Option<&mut ParCtx>,
    mut scope: Option<&mut ScopeBus>,
    mut fault: Option<&mut FaultCtx>,
) -> SimTime {
    let mut now = SimTime::ZERO;
    let mut queue: Vec<(usize, QueueItem)> = Vec::new();
    let mut scratch: Vec<JobEvent> = Vec::new();
    let mut net_events: Vec<NetEvent> = Vec::new();
    let mut scope_windows: Vec<ScopeWindow> = Vec::new();
    let mut spins_at_same_instant: u64 = 0;
    let mut last_now = SimTime::ZERO;
    loop {
        if now == last_now {
            spins_at_same_instant += 1;
            assert!(
                spins_at_same_instant < 1_000_000,
                "cluster event loop spinning at {now} without progress"
            );
        } else {
            last_now = now;
            spins_at_same_instant = 0;
        }
        // Drain all cascades at the current instant; follow-on events are
        // appended in emission order, preserving the single-job driver's
        // LIFO cascade order per job. Fabric events pushed after a replay
        // marker pop before it, exactly as they pop before the live job's
        // cascade block they stand for.
        while let Some((j, item)) = queue.pop() {
            match item {
                QueueItem::Ev(ev) => {
                    debug_assert!(scratch.is_empty());
                    jobs[j].handle(ev, now, fabric, &mut scratch);
                    for e in scratch.drain(..) {
                        queue.push((j, QueueItem::Ev(e)));
                    }
                    if let Some(bus) = scope.as_deref_mut() {
                        jobs[j].publish_scope(bus);
                    }
                }
                QueueItem::Marker(step) => {
                    let ctx = par.as_deref_mut().expect("markers imply parallel mode");
                    let r = ctx.replays[j].as_mut().expect("marker implies a replay");
                    let s = &r.log.steps[step];
                    debug_assert_eq!(s.t, now, "marker must pop at its own instant");
                    for ls in &r.log.submits[s.adv_end as usize..s.cascade_end as usize] {
                        fabric.submit(now, ls.src, ls.dst, ls.bytes, ls.tag);
                    }
                    // The job's cascade block at this instant was
                    // contiguous in the sequential order (candidates see
                    // no fabric events), so publishing its scope range
                    // where the marker pops reproduces that order.
                    let scope_end = s.scope_cascade_end as usize;
                    if let Some(bus) = scope.as_deref_mut() {
                        jobs[j].publish_scope_upto(bus, scope_end);
                    }
                    if step + 1 == r.log.steps.len() {
                        // Log exhausted: the job is live again, its state
                        // already at the park point.
                        ctx.replays[j] = None;
                    }
                }
            }
        }
        let mut all_done = true;
        for (j, job) in jobs.iter_mut().enumerate() {
            if let ClusterJob::Train {
                state, finished, ..
            } = job
            {
                if finished.is_none() {
                    // A mid-replay job's state is ahead of the shared
                    // clock; it counts as done only once its final step
                    // has replayed (which clears the replay above).
                    let replaying = par.as_deref().is_some_and(|c| c.replays[j].is_some());
                    if !replaying && state.done() {
                        *finished = Some(now);
                    } else {
                        all_done = false;
                    }
                }
            }
        }
        if all_done {
            break;
        }
        if let Some(ctx) = par.as_deref_mut() {
            ctx.iters_since_plan += 1;
            if ctx.iters_since_plan >= PLAN_INTERVAL && ctx.replays.iter().all(|r| r.is_none()) {
                ctx.iters_since_plan = 0;
                // Free-runs park before the next cluster fault: the
                // recovery loop inspects and replaces job state on the
                // driver thread, so every replay must be consumed
                // strictly before a change fires.
                let barrier = fault
                    .as_deref()
                    .map_or(SimTime::MAX, |fc| fc.injector.next_change_time());
                plan_free_runs(jobs, fabric, ctx, barrier);
            }
        }
        let mut t = fabric.next_event_time();
        if let Some(fc) = fault.as_deref() {
            t = t.min(fc.injector.next_change_time());
        }
        for (j, job) in jobs.iter().enumerate() {
            // A replaying job's clock is its next unconsumed step.
            let jt = match par.as_deref().and_then(|c| c.replays[j].as_ref()) {
                Some(r) => r.log.steps[r.next_step].t,
                None => job.next_event_time(),
            };
            t = t.min(jt);
        }
        if t.is_never() {
            let progress: Vec<String> = jobs
                .iter()
                .enumerate()
                .map(|(j, job)| match job {
                    ClusterJob::Train { state, .. } => {
                        format!("job{j}: iters {:?}", state.debug_iterations())
                    }
                    ClusterJob::Burst { src, .. } => {
                        format!("job{j}: burst timers {}", src.pending())
                    }
                })
                .collect();
            panic!("cluster stalled at {now}: {}", progress.join("; "));
        }
        now = t;
        // Cluster-scope faults fire before any tenant advances at this
        // instant — exactly where the single-job driver applies its
        // private injector (inside `advance`, before engines), so a
        // single-job cluster replays its plan in the solo event order.
        if let Some(fc) = fault.as_deref_mut() {
            while let Some(entry) = fc.injector.pop_due(now) {
                debug_assert!(
                    par.as_deref()
                        .is_none_or(|c| c.replays.iter().all(|r| r.is_none())),
                    "cluster fault fired with an unconsumed replay"
                );
                apply_cluster_entry(entry, now, jobs, fabric, fc);
            }
        }
        // Job-owned sources in job order, then the shared fabric — the
        // single-job driver's within-instant order, per job. A replaying
        // job consumes at most one step: its advance-phase submissions go
        // to the fabric here (in job order, like a live advance would),
        // and a marker queued in place of its cascade block defers the
        // rest to the next drain.
        for (j, job) in jobs.iter_mut().enumerate() {
            if let Some(r) = par.as_deref_mut().and_then(|c| c.replays[j].as_mut()) {
                let s = &r.log.steps[r.next_step];
                if s.t <= t {
                    debug_assert_eq!(s.t, t, "steps replay at their own instants");
                    let start = match r.next_step {
                        0 => 0,
                        k => r.log.steps[k - 1].cascade_end,
                    };
                    for ls in &r.log.submits[start as usize..s.adv_end as usize] {
                        fabric.submit(t, ls.src, ls.dst, ls.bytes, ls.tag);
                    }
                    let scope_end = s.scope_adv_end as usize;
                    queue.push((j, QueueItem::Marker(r.next_step)));
                    r.next_step += 1;
                    // Scope events the free-run's advance phase buffered
                    // publish here, where a live advance would emit them.
                    if let Some(bus) = scope.as_deref_mut() {
                        job.publish_scope_upto(bus, scope_end);
                    }
                }
                // `s.t > t`: nothing of this job's is due; the sequential
                // loop's advance would be a strict no-op here.
            } else {
                debug_assert!(scratch.is_empty());
                job.advance(t, fabric, &mut scratch);
                for e in scratch.drain(..) {
                    queue.push((j, QueueItem::Ev(e)));
                }
                if let Some(bus) = scope.as_deref_mut() {
                    job.publish_scope(bus);
                }
            }
        }
        if fabric.wants_advance(t) {
            fabric.advance_into(t, &mut net_events);
            for ev in net_events.drain(..) {
                // Demultiplex by the tag's job-id bits; jobs see their
                // own tag namespace (stripped tags), so their handlers
                // are oblivious to co-tenancy.
                let (j, stripped) = match ev {
                    NetEvent::Released(mut c) => {
                        let j = job_of_tag(c.tag);
                        c.tag = inner_tag(c.tag);
                        (j, NetEvent::Released(c))
                    }
                    NetEvent::Delivered(mut c) => {
                        let j = job_of_tag(c.tag);
                        c.tag = inner_tag(c.tag);
                        acct.job_bytes[j] += c.bytes;
                        acct.job_events[j] += 1;
                        acct.up_bytes[c.src.0] += c.bytes;
                        acct.down_bytes[c.dst.0] += c.bytes;
                        if let Some(share) = acct.job_nic_bytes.as_mut() {
                            share[j][c.src.0].0 += c.bytes;
                            share[j][c.dst.0].1 += c.bytes;
                        }
                        (j, NetEvent::Delivered(c))
                    }
                };
                queue.push((j, QueueItem::Ev(JobEvent::Net(stripped))));
            }
        }
        if let Some(bus) = scope.as_deref_mut() {
            fabric.drain_scope_windows(&mut scope_windows);
            for w in scope_windows.drain(..) {
                bus.publish(net_window_event(&w));
            }
        }
    }
    now
}

/// Runs every job to completion on one shared fabric and reports
/// cluster-level metrics. Deterministic: the same specs and seeds produce
/// a bit-identical result (including the trace).
///
/// Panics if the cluster deadlocks before every training job finishes.
pub fn run_cluster(cluster: &ClusterConfig, specs: &[JobSpec]) -> ClusterResult {
    run_cluster_observed(cluster, specs, None)
}

/// [`run_cluster`] with an optional scope observation bus attached.
///
/// With a bus, every training tenant and the shared fabric publish
/// lifecycle events as they happen — in the exact sequential event order
/// even under the conservative-parallel driver, whose replay re-publishes
/// each free-run epoch's buffered events at the phase boundaries where
/// the sequential loop would have emitted them. Observation is
/// recording-only; the `parallel_scope_stream_matches_sequential` test
/// pins both properties. The caller owns the stream's close: call
/// `bus.finish(makespan)` when no further runs will publish onto it.
pub fn run_cluster_observed(
    cluster: &ClusterConfig,
    specs: &[JobSpec],
    mut scope: Option<&mut ScopeBus>,
) -> ClusterResult {
    assert!(!specs.is_empty(), "a cluster run needs at least one job");
    assert!(
        specs.len() <= MAX_JOBS,
        "at most {MAX_JOBS} jobs per fabric (tag namespace)"
    );
    let placements = cluster.placement.place(cluster.machines, specs);
    // The cluster-scope fault timeline: the cluster plan's link changes
    // and machine failures, plus every tenant's hoisted job-private link
    // events — each applied to the shared fabric exactly once.
    let mut injector = ClusterFaultInjector::new();
    if let Some(plan) = &cluster.faults {
        plan.validate().expect("invalid cluster fault plan");
        for e in &plan.link_events {
            assert!(
                e.node < cluster.machines,
                "cluster fault plan rescales machine {} but the cluster has {}",
                e.node,
                cluster.machines
            );
        }
        for f in &plan.flaps {
            assert!(
                f.node < cluster.machines,
                "cluster fault plan flaps machine {} but the cluster has {}",
                f.node,
                cluster.machines
            );
        }
        for mf in &plan.machine_failures {
            assert!(
                mf.machine < cluster.machines,
                "cluster fault plan fails machine {} but the cluster has {}",
                mf.machine,
                cluster.machines
            );
        }
        injector.add_plan(plan);
    }
    let mut fabric = Fabric::new(cluster.fabric, cluster.machines.max(2), cluster.net);
    if cluster.record_trace {
        fabric.enable_trace();
    }
    if cluster.record_metrics {
        fabric.enable_telemetry(SimTime::ZERO);
    }
    if cluster.record_xray {
        fabric.enable_xray();
    }
    if cluster.record_contention {
        // The tag namespace is the job extractor: bits 58.. of every
        // fabric tag name the owning job.
        fabric.enable_contention(SimTime::ZERO, job_of_tag);
    }

    let mut jobs: Vec<ClusterJob> = specs
        .iter()
        .zip(&placements)
        .enumerate()
        .map(|(j, (spec, nodes))| match spec {
            JobSpec::Train { arrival, cfg, name } => {
                let mut cfg = cfg.clone();
                cfg.record_trace = cluster.record_trace;
                cfg.record_metrics = cluster.record_metrics;
                cfg.record_xray = cluster.record_xray;
                if let Some(p) = cfg.faults.as_mut() {
                    // A tenant's link events touch shared ports, so they
                    // are hoisted into the cluster timeline (translated to
                    // machine indices) and applied by the driver exactly
                    // once; the job's private injector keeps only its
                    // loss/straggler streams and recovery policy.
                    if !(p.link_events.is_empty() && p.flaps.is_empty()) {
                        assert!(
                            !nodes.is_empty(),
                            "job '{name}' plans link faults but occupies no \
                             fabric nodes (all-reduce collectives are private)"
                        );
                        for e in &p.link_events {
                            assert!(
                                e.node < nodes.len(),
                                "job '{name}' rescales local node {} but has {}",
                                e.node,
                                nodes.len()
                            );
                        }
                        for f in &p.flaps {
                            assert!(
                                f.node < nodes.len(),
                                "job '{name}' flaps local node {} but has {}",
                                f.node,
                                nodes.len()
                            );
                        }
                        injector.add_job_links(j, p, &|local| nodes[local].0);
                        p.link_events.clear();
                        p.flaps.clear();
                    }
                } else if let Some(cp) = &cluster.faults {
                    // The cluster plan's loss/straggler streams project
                    // onto every tenant without a private plan, each
                    // drawing from its own split-seed RNG stream (see
                    // `bs_faults::job_seed`).
                    cfg.faults = Some(FaultPlan {
                        loss_rate: cp.loss_rate,
                        stragglers: cp
                            .stragglers
                            .iter()
                            .filter(|s| s.worker < cfg.num_workers)
                            .copied()
                            .collect(),
                        recovery: cp.recovery,
                        ..FaultPlan::empty()
                    });
                }
                let state = JobState::build_at(&cfg, NodeMap::new(j, nodes.clone()), *arrival);
                ClusterJob::Train {
                    state,
                    cfg,
                    arrival: *arrival,
                    finished: None,
                }
            }
            JobSpec::Burst {
                arrival,
                load,
                pairs,
                seed,
                ..
            } => ClusterJob::Burst {
                src: BurstSource::new(*load, *seed),
                nodes: NodeMap::new(j, nodes.clone()),
                pairs: *pairs,
                seed_at: *arrival,
                seeded: false,
            },
        })
        .collect();

    if let Some(bus) = scope.as_deref_mut() {
        fabric.enable_scope(SimTime::ZERO, bus.window());
        for (j, job) in jobs.iter_mut().enumerate() {
            if let ClusterJob::Train { state, arrival, .. } = job {
                state.enable_scope(j, *arrival);
            }
        }
    }

    // Training jobs' co-tenant bursts (if any) start with the simulation,
    // exactly as the single-job driver seeds them before its loop.
    for job in &mut jobs {
        if let ClusterJob::Train { state, .. } = job {
            state.seed_background(SimTime::ZERO, &mut fabric);
        }
    }

    // Per-job traffic attribution and per-machine byte counters. The
    // per-(job, machine) share matrix is recording-only, like every other
    // telemetry path.
    let mut acct = Accounting {
        job_bytes: vec![0u64; jobs.len()],
        job_events: vec![0u64; jobs.len()],
        up_bytes: vec![0u64; cluster.machines],
        down_bytes: vec![0u64; cluster.machines],
        job_nic_bytes: cluster
            .record_metrics
            .then(|| vec![vec![(0u64, 0u64); cluster.machines]; jobs.len()]),
    };

    // The parallel core needs a second tenant to overlap with; its pool
    // contributes `threads - 1` workers because the driver thread also
    // executes free-runs while it waits at the fan-out barrier.
    let mut par = (cluster.threads > 1 && jobs.len() >= 2).then(|| ParCtx {
        pool: WorkerPool::new(cluster.threads - 1),
        replays: (0..jobs.len()).map(|_| None).collect(),
        // Plan at the first opportunity: at time zero nothing is on the
        // fabric yet, so every tenant is a candidate.
        iters_since_plan: PLAN_INTERVAL,
    });
    injector.seal();
    // No fault context at all when nothing can ever fire — the fault-free
    // path stays instruction-identical to the pre-fault driver.
    let scope_on = scope.is_some();
    let mut fault_ctx = (!injector.is_empty()).then(|| FaultCtx {
        injector,
        healthy: vec![true; cluster.machines],
        reaction: cluster.reaction,
        restart: RestartCost::paper_default(),
        scope_on,
        migrations: Vec::new(),
    });
    let makespan = match &mut fabric {
        Fabric::Fifo(n) => drive(
            &mut jobs,
            n,
            &mut acct,
            par.as_mut(),
            scope.as_deref_mut(),
            fault_ctx.as_mut(),
        ),
        Fabric::Fluid(n) => drive(
            &mut jobs,
            n,
            &mut acct,
            par.as_mut(),
            scope.as_deref_mut(),
            fault_ctx.as_mut(),
        ),
    };
    drop(par);
    let migrations: Vec<MigrationRecord> = fault_ctx.map(|fc| fc.migrations).unwrap_or_default();
    if let Some(bus) = scope {
        // Close the fabric's partial utilisation window and flush any
        // straggling job events; the bus itself stays open (the caller
        // may chain further runs, e.g. replay waves, onto it).
        fabric.finish_scope(makespan);
        let mut wins = Vec::new();
        fabric.drain_scope_windows(&mut wins);
        for w in &wins {
            bus.publish(net_window_event(w));
        }
        for job in jobs.iter_mut() {
            job.publish_scope(bus);
        }
    }
    let Accounting {
        job_bytes,
        job_events,
        up_bytes,
        down_bytes,
        job_nic_bytes,
    } = acct;
    // Demultiplex the fabric's transfer lifecycles by job id (stripping
    // the namespace bits) and hand each training job its own — before the
    // trace is assembled, since flow arrows point at wire-start instants.
    if cluster.record_xray {
        let mut per_job: Vec<Vec<bs_net::WireXrayRecord>> = vec![Vec::new(); jobs.len()];
        for (tag, src, dst, submitted, started, released, delivered) in fabric.take_xray() {
            per_job[job_of_tag(tag)].push((
                inner_tag(tag),
                src,
                dst,
                submitted,
                started,
                released,
                delivered,
            ));
        }
        for (j, job) in jobs.iter_mut().enumerate() {
            if let ClusterJob::Train { state, .. } = job {
                state.absorb_wire_xray(&per_job[j]);
            }
        }
    }
    let trace = cluster.record_trace.then(|| {
        let mut trace = Trace::new();
        for (j, job) in jobs.iter_mut().enumerate() {
            if let ClusterJob::Train { state, .. } = job {
                let prefix = format!("job{j}/");
                state.append_compute_trace(&mut trace, &prefix);
                state.append_ring_trace(&mut trace, &prefix);
                state.append_xray_flows(&mut trace, &prefix);
            }
        }
        for (tag, src, dst, start, end) in fabric.take_trace() {
            let j = job_of_tag(tag);
            let span = (inner_tag(tag), src, dst, start, end);
            wire_span_into_trace(&mut trace, &span, &format!("job{j}/"));
        }
        trace
    });

    let peak_in_flight = fabric.peak_in_flight();
    let peak_port_utilisation = fabric.peak_port_utilisation(makespan);
    let fabric_events = fabric.transfers_delivered();

    // Cluster-level metrics: the shared fabric's telemetry plus each
    // tenant's share of every NIC's delivered traffic.
    let mut metrics = cluster.record_metrics.then(MetricSet::new);
    if let Some(ms) = metrics.as_mut() {
        ms.horizon = makespan;
        if let Some(fm) = fabric.take_metrics(makespan) {
            ms.absorb("net/", fm);
        }
        if let Some(share) = &job_nic_bytes {
            for (j, per_machine) in share.iter().enumerate() {
                for (m, &(up, down)) in per_machine.iter().enumerate() {
                    if up == 0 && down == 0 {
                        continue;
                    }
                    ms.counter(format!("job{j}/nic{m}/up_bytes"), up);
                    ms.counter(format!("job{j}/nic{m}/down_bytes"), down);
                    let frac = |part: u64, total: u64| {
                        if total > 0 {
                            part as f64 / total as f64
                        } else {
                            0.0
                        }
                    };
                    ms.gauge(format!("job{j}/nic{m}/up_share"), frac(up, up_bytes[m]));
                    ms.gauge(
                        format!("job{j}/nic{m}/down_share"),
                        frac(down, down_bytes[m]),
                    );
                }
            }
        }
    }

    let contention = fabric.take_contention().map(|log| {
        let names = specs.iter().map(|s| s.name().to_string()).collect();
        ContentionMatrix::reduce(&log, makespan, names)
    });

    let mut trace = trace;
    if let (Some(trace), Some(ms)) = (trace.as_mut(), metrics.as_ref()) {
        for t in ms.counter_tracks() {
            trace.push_counter(t.name, t.samples);
        }
    }

    let mut outcomes: Vec<JobOutcome> = Vec::new();
    for (j, (spec, job)) in specs.iter().zip(jobs).enumerate() {
        let ClusterJob::Train {
            state,
            cfg,
            arrival,
            finished,
        } = job
        else {
            continue;
        };
        let finished_at = finished.expect("training job finished");
        // Report the machines the job *ended* on — identical to the
        // placement unless the recovery loop migrated it.
        let machines: Vec<usize> = state.nodes().fabric_nodes().iter().map(|n| n.0).collect();
        let net = JobNetStats {
            p2p_bytes: job_bytes[j],
            comm_events: job_events[j],
            peak_in_flight,
            peak_port_utilisation,
        };
        let mut result = state.into_result(&cfg, finished_at, net);
        // A migrated job finished, but not unscathed: surface each
        // checkpoint/migrate cycle as a reroute so the outcome can never
        // read as a clean completion.
        let migs = migrations.iter().filter(|m| m.job == j).count() as u64;
        if migs > 0 {
            result.outcome = match result.outcome {
                RunOutcome::Completed => RunOutcome::DegradedCompleted {
                    retries: 0,
                    reroutes: migs,
                },
                RunOutcome::DegradedCompleted { retries, reroutes } => {
                    RunOutcome::DegradedCompleted {
                        retries,
                        reroutes: reroutes + migs,
                    }
                }
                failed => failed,
            };
        }
        // Per-job series double as counter tracks in the merged trace,
        // prefixed like the job's span tracks.
        if let (Some(trace), Some(ms)) = (trace.as_mut(), result.metrics.as_ref()) {
            for t in ms.counter_tracks() {
                trace.push_counter(format!("job{j}/{}", t.name), t.samples);
            }
        }
        outcomes.push(JobOutcome {
            name: spec.name().to_string(),
            arrival,
            finished_at,
            jct: finished_at - arrival,
            machines,
            result,
        });
    }
    assert!(
        !outcomes.is_empty(),
        "a cluster run needs at least one training job"
    );

    let throughputs: Vec<f64> = outcomes.iter().map(|o| 1.0 / o.jct.as_secs_f64()).collect();
    let capacity = cluster.net.bytes_per_sec() * makespan.as_secs_f64();
    let link_utilisation = (0..cluster.machines)
        .map(|m| LinkUtil {
            machine: m,
            up: if capacity > 0.0 {
                up_bytes[m] as f64 / capacity
            } else {
                0.0
            },
            down: if capacity > 0.0 {
                down_bytes[m] as f64 / capacity
            } else {
                0.0
            },
        })
        .collect();

    ClusterResult {
        jobs: outcomes,
        makespan,
        jain_fairness: jain_index(&throughputs),
        link_utilisation,
        fabric_events,
        trace,
        metrics,
        contention,
        migrations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacementPolicy;
    use bs_engine::EngineConfig;
    use bs_net::{FabricModel, NetConfig, Transport};
    use bs_runtime::{Arch, BackgroundLoad, SchedulerKind};
    use bs_sim::SimTime;

    /// The runtime test-suite's comm-heavy toy: a big first tensor.
    fn comm_heavy() -> bs_models::DnnModel {
        use bs_models::{GpuSpec, ModelBuilder, SampleUnit};
        let gpu = GpuSpec::custom(1e12, 2.0);
        ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
            .explicit(
                "l0",
                40_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .explicit(
                "l1",
                5_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .explicit(
                "l2",
                5_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .build()
    }

    fn job_cfg(sched: SchedulerKind, seed: u64) -> WorldConfig {
        let mut c = WorldConfig::new(
            comm_heavy(),
            2,
            Arch::ps(2),
            NetConfig::gbps(10.0, Transport::tcp()),
            EngineConfig::mxnet_ps(),
            sched,
        );
        c.iters = 8;
        c.warmup = 2;
        c.jitter = 0.02;
        c.seed = seed;
        c
    }

    fn bs() -> SchedulerKind {
        SchedulerKind::ByteScheduler {
            partition: 2_000_000,
            credit: 8_000_000,
        }
    }

    #[test]
    fn single_job_cluster_matches_solo_run() {
        let cfg = job_cfg(bs(), 11);
        let solo = bs_runtime::run(&cfg);
        let cluster = ClusterConfig::new(4, cfg.net);
        let r = run_cluster(&cluster, &[JobSpec::train("solo", cfg)]);
        assert_eq!(r.jobs.len(), 1);
        let j = &r.jobs[0];
        assert_eq!(j.result.speed, solo.speed);
        assert_eq!(j.finished_at, solo.finished_at);
        assert_eq!(j.result.p2p_bytes, solo.p2p_bytes);
        assert_eq!(j.result.comm_events, solo.comm_events);
        assert_eq!(r.makespan, solo.finished_at);
        assert_eq!(r.jain_fairness, 1.0);
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let mut cluster = ClusterConfig::new(4, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.placement = PlacementPolicy::Packed;
        cluster.record_trace = true;
        let specs = vec![
            JobSpec::train("a", job_cfg(bs(), 3)),
            JobSpec::train("b", job_cfg(SchedulerKind::Baseline, 4)),
        ];
        let r1 = run_cluster(&cluster, &specs);
        let r2 = run_cluster(&cluster, &specs);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.jain_fairness, r2.jain_fairness);
        let t1 = r1.trace.unwrap().to_chrome_json();
        let t2 = r2.trace.unwrap().to_chrome_json();
        assert_eq!(t1, t2, "same seed must give a bit-identical trace");
    }

    #[test]
    fn packed_jobs_contend_and_slow_each_other_down() {
        let cfg = job_cfg(bs(), 5);
        let solo = bs_runtime::run(&cfg);
        let mut cluster = ClusterConfig::new(4, cfg.net);
        cluster.placement = PlacementPolicy::Packed;
        let specs = vec![
            JobSpec::train("a", job_cfg(bs(), 5)),
            JobSpec::train("b", job_cfg(bs(), 6)),
        ];
        let r = run_cluster(&cluster, &specs);
        for j in &r.jobs {
            assert!(
                j.result.speed < solo.speed * 0.95,
                "sharing every NIC must cost real throughput: {} vs solo {}",
                j.result.speed,
                solo.speed
            );
        }
    }

    #[test]
    fn spread_placement_isolates_when_cluster_has_room() {
        let mut packed = ClusterConfig::new(8, NetConfig::gbps(10.0, Transport::tcp()));
        packed.placement = PlacementPolicy::Packed;
        let mut spread = packed.clone();
        spread.placement = PlacementPolicy::RoundRobinSpread;
        let specs = vec![
            JobSpec::train("a", job_cfg(bs(), 5)),
            JobSpec::train("b", job_cfg(bs(), 6)),
        ];
        let rp = run_cluster(&packed, &specs);
        let rs = run_cluster(&spread, &specs);
        assert!(
            rs.makespan < rp.makespan,
            "disjoint placement must finish sooner: {} vs {}",
            rs.makespan,
            rp.makespan
        );
    }

    #[test]
    fn burst_tenant_slows_a_colocated_job() {
        let specs_solo = vec![JobSpec::train("a", job_cfg(bs(), 5))];
        let mut cluster = ClusterConfig::new(4, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.placement = PlacementPolicy::Packed;
        let solo = run_cluster(&cluster, &specs_solo);
        let specs = vec![
            JobSpec::train("a", job_cfg(bs(), 5)),
            JobSpec::burst(
                "cross-traffic",
                BackgroundLoad {
                    burst_bytes: 4 << 20,
                    gap_us: 200,
                },
                2,
                99,
            ),
        ];
        let r = run_cluster(&cluster, &specs);
        assert_eq!(r.jobs.len(), 1, "burst tenants produce no outcome");
        assert!(
            r.jobs[0].result.speed < solo.jobs[0].result.speed,
            "co-located bursts must cost throughput: {} vs {}",
            r.jobs[0].result.speed,
            solo.jobs[0].result.speed
        );
    }

    #[test]
    fn recorded_metrics_cover_jobs_fabric_and_nic_shares() {
        let mut cluster = ClusterConfig::new(4, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.placement = PlacementPolicy::Packed;
        let specs = vec![
            JobSpec::train("a", job_cfg(bs(), 3)),
            JobSpec::train("b", job_cfg(SchedulerKind::Baseline, 4)),
        ];
        let plain = run_cluster(&cluster, &specs);
        assert!(plain.metrics.is_none());
        assert!(plain.jobs.iter().all(|j| j.result.metrics.is_none()));

        cluster.record_metrics = true;
        cluster.record_trace = true;
        let r = run_cluster(&cluster, &specs);
        // Telemetry is recording-only: the simulation is unchanged.
        assert_eq!(r.makespan, plain.makespan);
        assert_eq!(r.jobs[0].result.speed, plain.jobs[0].result.speed);

        let ms = r.metrics.as_ref().expect("cluster metrics");
        assert_eq!(ms.horizon, r.makespan);
        assert!(ms.get_series("net/nic0/up_util").is_some());
        // Packed placement: both jobs share every NIC, and their shares
        // of each NIC's delivered bytes sum to 1.
        for m in 0..4 {
            let s0 = ms.get_gauge(&format!("job0/nic{m}/up_share"));
            let s1 = ms.get_gauge(&format!("job1/nic{m}/up_share"));
            let (s0, s1) = (s0.expect("job0 share"), s1.expect("job1 share"));
            assert!(s0 > 0.0 && s1 > 0.0);
            assert!((s0 + s1 - 1.0).abs() < 1e-12);
        }
        // Each job carries its own scheduler/GPU telemetry and stall
        // accounting closed at its own finish time.
        for j in &r.jobs {
            let jm = j.result.metrics.as_ref().expect("job metrics");
            assert_eq!(jm.horizon, j.finished_at);
            assert!(jm.get_gauge("worker0/comm_stall_secs").expect("stall") > 0.0);
            assert!(jm.get_series("worker0/gpu_busy").is_some());
        }
        // The merged trace carries job-prefixed counter tracks.
        let trace = r.trace.as_ref().expect("trace");
        assert!(trace.counters.iter().any(|t| t.name.starts_with("job1/")));
        assert!(trace.counters.iter().any(|t| t.name.starts_with("net/")));
    }

    #[test]
    fn recorded_xray_attributes_each_job_independently() {
        let mut cluster = ClusterConfig::new(4, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.placement = PlacementPolicy::Packed;
        let specs = vec![
            JobSpec::train("a", job_cfg(bs(), 3)),
            JobSpec::train("b", job_cfg(SchedulerKind::Baseline, 4)),
        ];
        let plain = run_cluster(&cluster, &specs);
        assert!(plain.jobs.iter().all(|j| j.result.xray.is_none()));

        cluster.record_xray = true;
        cluster.record_trace = true;
        let r = run_cluster(&cluster, &specs);
        // Recording-only: the shared simulation is unchanged.
        assert_eq!(r.makespan, plain.makespan);
        for (j, p) in r.jobs.iter().zip(&plain.jobs) {
            assert_eq!(j.result.speed, p.result.speed);
            let x = j.result.xray.as_ref().expect("per-job xray");
            for it in &x.iterations {
                assert_eq!(it.attribution.total_ns(), it.wall_ns());
            }
            assert_eq!(x.totals.total_ns(), x.measured_wall_ns);
            assert!(x.totals.wire_ns > 0, "contended jobs spend wire time");
        }
        assert_eq!(
            r.jobs[0].result.xray.as_ref().unwrap().scheduler,
            "ByteScheduler"
        );
        // Flow arrows land in the merged trace under job prefixes.
        let trace = r.trace.as_ref().expect("trace");
        assert!(trace
            .flows
            .iter()
            .any(|f| f.from_track.starts_with("job1/")));
    }

    #[test]
    fn recorded_contention_measures_link_overlap() {
        let mut cluster = ClusterConfig::new(4, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.placement = PlacementPolicy::Packed;
        let specs = vec![
            JobSpec::train("a", job_cfg(bs(), 3)),
            JobSpec::train("b", job_cfg(SchedulerKind::Baseline, 4)),
        ];
        let plain = run_cluster(&cluster, &specs);
        assert!(plain.contention.is_none());

        cluster.record_contention = true;
        let r = run_cluster(&cluster, &specs);
        // Recording-only: the shared simulation is unchanged.
        assert_eq!(r.makespan, plain.makespan);
        assert_eq!(r.jobs[0].result.speed, plain.jobs[0].result.speed);

        let m = r.contention.as_ref().expect("contention matrix");
        assert_eq!(m.schema_version, crate::CONTENTION_SCHEMA_VERSION);
        assert_eq!(m.horizon, r.makespan);
        assert_eq!(m.jobs, vec!["a".to_string(), "b".to_string()]);
        // Packed placement: both PS jobs push traffic through every
        // machine's NIC in both directions.
        assert_eq!(m.links.len(), 2 * cluster.machines);
        for l in &m.links {
            assert!(l.busy_secs > 0.0, "machine {} idle", l.machine);
            assert!(l.contended_secs <= l.busy_secs + 1e-12);
            assert_eq!(l.jobs.len(), 2, "both tenants touch every NIC");
            for s in &l.jobs {
                assert!(s.active_secs > 0.0);
                assert!(s.solo_bytes >= 0.0 && s.contended_bytes >= 0.0);
            }
        }
        assert!(
            m.links.iter().any(|l| l.contended_secs > 0.0),
            "co-located tenants must collide somewhere"
        );
        // Exactly one pair, genuinely overlapping.
        assert_eq!(m.pairs.len(), 1);
        let p = &m.pairs[0];
        assert_eq!((p.a, p.b), (0, 1));
        assert!(p.overlap_secs > 0.0);
        assert!(p.phase_collision > 0.0 && p.phase_collision <= 1.0);

        // Byte-deterministic: a repeat run renders identical JSON.
        let again = run_cluster(&cluster, &specs);
        assert_eq!(
            serde_json::to_string_pretty(m).unwrap(),
            serde_json::to_string_pretty(again.contention.as_ref().unwrap()).unwrap()
        );
    }

    /// An all-reduce tenant: its collective stream is private (zero
    /// shared-fabric nodes), which makes it a permanent free-run
    /// candidate in parallel mode.
    fn ar_cfg(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::new(
            comm_heavy(),
            2,
            Arch::allreduce(),
            NetConfig::gbps(10.0, Transport::tcp()),
            bs_engine::EngineConfig::mxnet_allreduce(),
            bs(),
        );
        c.iters = 8;
        c.warmup = 2;
        c.jitter = 0.02;
        c.seed = seed;
        c
    }

    /// The complete observable surface of a run — outcomes, metrics,
    /// xray, trace, link utilisation — rendered to JSON. Floats use
    /// shortest-round-trip formatting, so string equality is bit
    /// equality.
    fn full_fingerprint(r: &ClusterResult) -> String {
        serde_json::to_string(r).expect("serialize cluster result")
    }

    /// The tentpole contract: the conservative-parallel driver replays
    /// the *identical* event sequence, so every observable — traces,
    /// metrics, xray attribution, fault outcomes — matches the
    /// sequential driver bit-for-bit, on both fabrics, at any thread
    /// count, with every recorder on.
    #[test]
    fn parallel_replay_is_bit_identical_with_all_recorders() {
        use bs_faults::{FaultPlan, RecoveryPolicy, StragglerSpec};
        for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
            let mut cluster = ClusterConfig::new(6, NetConfig::gbps(10.0, Transport::tcp()));
            cluster.fabric = fabric;
            cluster.placement = PlacementPolicy::Packed;
            cluster.record_trace = true;
            cluster.record_metrics = true;
            cluster.record_xray = true;
            cluster.record_contention = true;
            let mut faulty = job_cfg(bs(), 21);
            faulty.faults = Some(FaultPlan {
                loss_rate: 0.02,
                recovery: RecoveryPolicy {
                    timeout_us: 1_000,
                    max_retries: 20,
                },
                stragglers: vec![StragglerSpec {
                    worker: 0,
                    from_iter: 2,
                    to_iter: 4,
                    factor: 2.0,
                }],
                ..FaultPlan::empty()
            });
            let specs = vec![
                JobSpec::train("faulty", faulty),
                JobSpec::train("plain", job_cfg(SchedulerKind::Baseline, 22)),
                JobSpec::train("ring", ar_cfg(23)),
                JobSpec::burst(
                    "bg",
                    BackgroundLoad {
                        burst_bytes: 1 << 20,
                        gap_us: 500,
                    },
                    1,
                    99,
                ),
            ];
            let seq = full_fingerprint(&run_cluster(&cluster, &specs));
            for threads in [2usize, 4] {
                let mut par = cluster.clone();
                par.threads = threads;
                let got = full_fingerprint(&run_cluster(&par, &specs));
                assert_eq!(
                    got, seq,
                    "{fabric:?} threads={threads}: parallel run diverged from sequential"
                );
            }
        }
    }

    /// The observability contract, both halves at once: attaching a
    /// scope bus changes nothing observable (recording-only), and the
    /// conservative-parallel driver publishes the byte-identical event
    /// stream the sequential driver does, at any thread count, on both
    /// fabrics — free-run epochs re-publish in exact sequential order.
    #[test]
    fn parallel_scope_stream_matches_sequential() {
        use bs_scope::{FlightRecorder, ScopeBus};
        for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
            let mut cluster = ClusterConfig::new(6, NetConfig::gbps(10.0, Transport::tcp()));
            cluster.fabric = fabric;
            cluster.placement = PlacementPolicy::Packed;
            let specs = vec![
                JobSpec::train("a", job_cfg(bs(), 21)),
                JobSpec::train("b", job_cfg(SchedulerKind::Baseline, 22)),
                JobSpec::train("ring", ar_cfg(23)),
                JobSpec::burst(
                    "bg",
                    BackgroundLoad {
                        burst_bytes: 1 << 20,
                        gap_us: 500,
                    },
                    1,
                    99,
                ),
            ];
            let run_with = |threads: usize| {
                let mut c = cluster.clone();
                c.threads = threads;
                let mut bus = ScopeBus::new();
                let (rec, handle) = FlightRecorder::new();
                bus.subscribe(Box::new(rec));
                let r = run_cluster_observed(&c, &specs, Some(&mut bus));
                bus.finish(r.makespan);
                (full_fingerprint(&r), handle.to_jsonl())
            };
            let plain = full_fingerprint(&run_cluster(&cluster, &specs));
            let (seq_fp, seq_events) = run_with(1);
            assert_eq!(
                seq_fp, plain,
                "{fabric:?}: observation must be recording-only"
            );
            assert!(
                seq_events.lines().count() > 10,
                "{fabric:?}: the bus must actually record the run"
            );
            for threads in [2usize, 4] {
                let (fp, events) = run_with(threads);
                assert_eq!(fp, seq_fp, "{fabric:?} threads={threads}: results diverged");
                assert_eq!(
                    events, seq_events,
                    "{fabric:?} threads={threads}: scope stream diverged from sequential"
                );
            }
        }
    }

    /// A single-tenant cluster has nothing to overlap; `threads > 1`
    /// must silently fall back to the sequential core and still match.
    #[test]
    fn parallel_single_job_cluster_falls_back_to_sequential() {
        let mut cluster = ClusterConfig::new(4, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.record_trace = true;
        let specs = vec![JobSpec::train("solo", job_cfg(bs(), 11))];
        let seq = full_fingerprint(&run_cluster(&cluster, &specs));
        cluster.threads = 8;
        let got = full_fingerprint(&run_cluster(&cluster, &specs));
        assert_eq!(got, seq);
    }

    /// A cluster plan failing machine 1 mid-run, restored much later.
    fn failure_plan(at_us: u64, restore_us: Option<u64>) -> bs_faults::FaultPlan {
        bs_faults::FaultPlan {
            machine_failures: vec![bs_faults::MachineFailure {
                machine: 1,
                at_us,
                restore_us,
            }],
            ..bs_faults::FaultPlan::empty()
        }
    }

    #[test]
    fn machine_failure_checkpoints_migrates_and_degrades_outcome() {
        // Five machines, job packed on 0..4: machine 4 is the spare the
        // health-aware remap must pick when machine 1 dies.
        let mut cluster = ClusterConfig::new(5, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.placement = PlacementPolicy::Packed;
        cluster.faults = Some(failure_plan(150_000, None));
        let specs = vec![JobSpec::train("victim", job_cfg(bs(), 7))];
        let r = run_cluster(&cluster, &specs);

        assert_eq!(r.migrations.len(), 1, "one failure, one migration");
        let m = &r.migrations[0];
        assert_eq!((m.job, m.machine), (0, 1));
        assert_eq!(m.at, SimTime::from_micros(150_000));
        // §7 cost for the 50 MB toy model: 5 s fixed + 50e6 / 25e6 = 7 s.
        assert_eq!(
            m.resumed_at,
            m.at + SimTime::from_secs_f64(7.0),
            "resume must pay exactly the checkpoint-restart cost"
        );
        assert_eq!(
            m.moved,
            vec![crate::NodeMove {
                node: 1,
                from: 1,
                to: 4
            }]
        );

        let j = &r.jobs[0];
        assert_eq!(
            j.machines,
            vec![0, 4, 2, 3],
            "outcome reports final placement"
        );
        match j.result.outcome {
            RunOutcome::DegradedCompleted { reroutes, .. } => {
                assert!(reroutes >= 1, "migration must surface as a reroute")
            }
            ref o => panic!("migrated job must not read as clean: {o:?}"),
        }
        // The job still finished all its work: restart cost plus re-run
        // iterations push completion past the solo run.
        let solo = bs_runtime::run(&job_cfg(bs(), 7));
        assert!(
            j.finished_at > solo.finished_at + SimTime::from_secs(6),
            "outage must cost real time: {} vs solo {}",
            j.finished_at,
            solo.finished_at
        );
    }

    #[test]
    fn checkpoint_migrate_beats_no_reaction_on_makespan() {
        // The dead NIC holds the job's PS shard; without migration every
        // push/pull through machine 1 waits out the 30 s outage, while
        // the reactive driver pays ~9 s restart plus re-run time.
        let net = NetConfig::gbps(10.0, Transport::tcp());
        let specs = vec![JobSpec::train("victim", job_cfg(bs(), 7))];
        let mut reactive = ClusterConfig::new(5, net);
        reactive.placement = PlacementPolicy::Packed;
        reactive.faults = Some(failure_plan(150_000, Some(30_000_000)));
        let mut passive = reactive.clone();
        passive.reaction = FaultReaction::None;
        let rm = run_cluster(&reactive, &specs);
        let rn = run_cluster(&passive, &specs);
        assert_eq!(rm.migrations.len(), 1);
        assert!(rn.migrations.is_empty(), "no reaction, no migrations");
        assert!(
            rm.makespan < rn.makespan,
            "checkpoint+migrate must beat riding out the outage: {} vs {}",
            rm.makespan,
            rn.makespan
        );
    }

    #[test]
    fn unplaceable_job_fails_closed() {
        // Four machines, the job needs all four, machine 1 never
        // restores: no placement can exist, the job must fail — not hang.
        let mut cluster = ClusterConfig::new(4, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.placement = PlacementPolicy::Packed;
        cluster.faults = Some(failure_plan(150_000, None));
        let specs = vec![JobSpec::train("doomed", job_cfg(bs(), 7))];
        let r = run_cluster(&cluster, &specs);
        assert!(r.migrations.is_empty());
        match &r.jobs[0].result.outcome {
            RunOutcome::Failed { reason } => {
                assert!(reason.contains("no healthy placement"), "{reason}")
            }
            o => panic!("expected fail-closed, got {o:?}"),
        }
        assert_eq!(
            r.jobs[0].finished_at,
            SimTime::from_micros(150_000),
            "a doomed job fails at the outage instant"
        );
    }

    #[test]
    fn capacity_shortage_defers_resume_to_the_restore() {
        // Four machines, job on all four: the remap has no spare, but the
        // failed machine restores at 20 s — the pending queue resumes the
        // job there instead of failing it.
        let mut cluster = ClusterConfig::new(4, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.placement = PlacementPolicy::Packed;
        cluster.faults = Some(failure_plan(150_000, Some(20_000_000)));
        let specs = vec![JobSpec::train("patient", job_cfg(bs(), 7))];
        let r = run_cluster(&cluster, &specs);
        assert_eq!(r.migrations.len(), 1);
        let m = &r.migrations[0];
        assert_eq!(
            m.resumed_at,
            SimTime::from_micros(20_000_000),
            "resume waits for the restore, not just the restart cost"
        );
        assert!(m.moved.is_empty(), "the job resumes on its original nodes");
        assert!(matches!(
            r.jobs[0].result.outcome,
            RunOutcome::DegradedCompleted { .. }
        ));
    }

    /// The hoisted-fault path is the solo injector path: a single-job
    /// cluster whose job carries a full link-level plan (scales, a flap,
    /// loss) replays bit-for-bit against `bs_runtime::run`.
    #[test]
    fn single_job_cluster_with_link_plan_matches_solo() {
        use bs_faults::{LinkDir, LinkEvent, LinkFlap, RecoveryPolicy};
        let mut cfg = job_cfg(bs(), 11);
        cfg.faults = Some(bs_faults::FaultPlan {
            link_events: vec![
                LinkEvent {
                    at_us: 100_000,
                    node: 2,
                    dir: LinkDir::Down,
                    scale: 0.25,
                },
                LinkEvent {
                    at_us: 300_000,
                    node: 2,
                    dir: LinkDir::Down,
                    scale: 1.0,
                },
            ],
            flaps: vec![LinkFlap {
                node: 0,
                from_us: 150_000,
                to_us: 180_000,
            }],
            loss_rate: 0.02,
            recovery: RecoveryPolicy {
                timeout_us: 1_000,
                max_retries: 20,
            },
            ..bs_faults::FaultPlan::empty()
        });
        let solo = bs_runtime::run(&cfg);
        let cluster = ClusterConfig::new(4, cfg.net);
        let r = run_cluster(&cluster, &[JobSpec::train("solo", cfg)]);
        let j = &r.jobs[0];
        assert_eq!(j.result.outcome, solo.outcome);
        assert_eq!(j.result.speed, solo.speed);
        assert_eq!(j.finished_at, solo.finished_at);
        assert_eq!(j.result.p2p_bytes, solo.p2p_bytes);
        assert_eq!(j.result.comm_events, solo.comm_events);
        assert_eq!(j.result.iter_times, solo.iter_times);
    }

    /// Migration epochs replay deterministically at any thread count: the
    /// free-run barrier parks every replay strictly before a cluster
    /// change fires, so the parallel driver reproduces the sequential
    /// result bit-for-bit even across a checkpoint/migrate/resume cycle.
    #[test]
    fn parallel_replay_survives_a_migration_bit_for_bit() {
        for fabric in [FabricModel::SerialFifo, FabricModel::FairShare] {
            let mut cluster = ClusterConfig::new(6, NetConfig::gbps(10.0, Transport::tcp()));
            cluster.fabric = fabric;
            cluster.placement = PlacementPolicy::Packed;
            cluster.record_trace = true;
            cluster.record_metrics = true;
            cluster.record_contention = true;
            cluster.faults = Some(failure_plan(150_000, Some(2_000_000)));
            let specs = vec![
                JobSpec::train("victim", job_cfg(bs(), 21)),
                JobSpec::train("bystander", job_cfg(SchedulerKind::Baseline, 22)),
                JobSpec::train("ring", ar_cfg(23)),
            ];
            let seq = run_cluster(&cluster, &specs);
            assert!(
                !seq.migrations.is_empty(),
                "{fabric:?}: the scenario must actually migrate"
            );
            let seq_fp = full_fingerprint(&seq);
            for threads in [2usize, 4] {
                let mut par = cluster.clone();
                par.threads = threads;
                let got = full_fingerprint(&run_cluster(&par, &specs));
                assert_eq!(
                    got, seq_fp,
                    "{fabric:?} threads={threads}: migration epochs diverged"
                );
            }
        }
    }

    #[test]
    fn late_arrival_shifts_completion_not_jct_much() {
        let mut cluster = ClusterConfig::new(8, NetConfig::gbps(10.0, Transport::tcp()));
        cluster.placement = PlacementPolicy::RoundRobinSpread;
        let arrival = SimTime::from_millis(500);
        let specs = vec![
            JobSpec::train("early", job_cfg(bs(), 5)),
            JobSpec::train_at("late", job_cfg(bs(), 6), arrival),
        ];
        let r = run_cluster(&cluster, &specs);
        let late = &r.jobs[1];
        assert_eq!(late.arrival, arrival);
        assert!(late.finished_at > arrival);
        assert_eq!(late.jct, late.finished_at - arrival);
        assert!(r.makespan >= late.finished_at.max(r.jobs[0].finished_at));
    }
}
