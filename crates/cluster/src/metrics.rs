//! Cluster-level metrics: JCT, makespan, fairness, link utilisation.

use bs_runtime::RunResult;

use crate::contention::ContentionMatrix;
use bs_sim::{SimTime, Trace};
use bs_telemetry::MetricSet;
use serde::Serialize;

/// Jain's fairness index over the given allocations:
/// `(Σx)² / (n · Σx²)`. 1.0 = perfectly fair, `1/n` = one tenant takes
/// everything. Empty input yields 1.0 (nothing to be unfair about).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Nearest-rank percentile of `sorted` (ascending): the value at 1-based
/// rank `⌈p/100 · n⌉`, clamped to `[1, n]`.
///
/// Tie-breaking is by construction exact: the result is always an element
/// of the input (never an interpolation), and equal values occupy
/// consecutive ranks in their input order, so `percentile(xs, 100.0)` is
/// the maximum and `percentile(xs, 0.0)` the minimum. Panics on an empty
/// slice — an empty distribution has no percentiles; callers decide what
/// that means.
pub fn percentile_nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty distribution");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// A full distribution summary: the tail percentiles the replay layer
/// reports instead of means. All values are in the unit of the input
/// (seconds for JCT distributions).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct DistSummary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Nearest-rank 50th percentile.
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl DistSummary {
    /// Summarises `xs` (any order). Panics when empty, like
    /// [`percentile_nearest_rank`].
    pub fn from_unsorted(mut xs: Vec<f64>) -> DistSummary {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        DistSummary {
            n: xs.len(),
            mean,
            p50: percentile_nearest_rank(&xs, 50.0),
            p95: percentile_nearest_rank(&xs, 95.0),
            p99: percentile_nearest_rank(&xs, 99.0),
            max: *xs.last().expect("non-empty"),
        }
    }
}

/// One machine NIC's utilisation over the cluster makespan, as delivered
/// payload bytes over the effective link capacity.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LinkUtil {
    /// Machine index.
    pub machine: usize,
    /// Uplink (egress) utilisation in [0, ~1].
    pub up: f64,
    /// Downlink (ingress) utilisation in [0, ~1].
    pub down: f64,
}

/// One node's move during a migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct NodeMove {
    /// Job-local node index.
    pub node: usize,
    /// Machine the node sat on when its host failed.
    pub from: usize,
    /// Healthy machine it resumed on.
    pub to: usize,
}

/// One checkpoint → migrate → resume reaction to a machine failure, as
/// recorded by the cluster driver's recovery loop.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MigrationRecord {
    /// Training job (spec index) that was checkpointed.
    pub job: usize,
    /// When the hosting machine failed (= the checkpoint instant: the
    /// job restarts from its last completed iteration barrier).
    pub at: SimTime,
    /// When the job's engines resumed — `at` plus the §7
    /// checkpoint-restart cost, or later if the job had to wait for a
    /// machine restore to find capacity.
    pub resumed_at: SimTime,
    /// The machine whose failure triggered this migration.
    pub machine: usize,
    /// Iteration barrier the checkpoint captured (completed by every
    /// worker).
    pub checkpoint_iter: u64,
    /// In-progress iterations discarded by the rollback: the most
    /// advanced worker's completed count minus `checkpoint_iter`.
    pub lost_iters: u64,
    /// Nodes that changed machines (survivor nodes stay pinned and are
    /// not listed).
    pub moved: Vec<NodeMove>,
}
#[derive(Clone, Debug, Serialize)]
pub struct JobOutcome {
    /// The spec's display name.
    pub name: String,
    /// Arrival time.
    pub arrival: SimTime,
    /// When the job's last iteration retired.
    pub finished_at: SimTime,
    /// Job completion time: `finished_at - arrival`.
    pub jct: SimTime,
    /// Machines backing the job's local nodes.
    pub machines: Vec<usize>,
    /// The job's full single-job measurement (speed, iteration times,
    /// per-job traffic counters).
    pub result: RunResult,
}

/// The outcome of one cluster run.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterResult {
    /// Training jobs in spec order (burst tenants produce no outcome).
    pub jobs: Vec<JobOutcome>,
    /// When the last training job finished.
    pub makespan: SimTime,
    /// Jain's index over per-job throughput (1/JCT) — how evenly the
    /// fabric served the tenants.
    pub jain_fairness: f64,
    /// Per-machine NIC utilisation over the makespan (all tenants'
    /// traffic, burst tenants included).
    pub link_utilisation: Vec<LinkUtil>,
    /// Total point-to-point deliveries on the shared fabric — the
    /// cluster-mode events/sec numerator for the perf baseline.
    pub fabric_events: u64,
    /// Merged execution trace with per-job track groups (`job0/…`), when
    /// [`crate::ClusterConfig::record_trace`] was set.
    pub trace: Option<Trace>,
    /// Cluster-level metrics, when
    /// [`crate::ClusterConfig::record_metrics`] was set: shared-fabric
    /// telemetry under `net/` and per-job per-NIC traffic shares under
    /// `job{j}/nic{m}/`. Per-job scheduler/GPU metrics live in each
    /// job's [`JobOutcome::result`].
    pub metrics: Option<MetricSet>,
    /// Link-contention matrix (per NIC direction busy/contended time,
    /// per-job solo vs contended byte shares, pairwise phase-collision
    /// fractions), when [`crate::ClusterConfig::record_contention`] was
    /// set.
    pub contention: Option<ContentionMatrix>,
    /// Every checkpoint → migrate → resume the driver's recovery loop
    /// performed, in decision order. Empty when no machine failed (or
    /// the reaction was [`crate::FaultReaction::None`]).
    pub migrations: Vec<MigrationRecord>,
}

impl ClusterResult {
    /// The busiest NIC direction's utilisation.
    pub fn peak_link_utilisation(&self) -> f64 {
        self.link_utilisation
            .iter()
            .flat_map(|l| [l.up, l.down])
            .fold(0.0, f64::max)
    }

    /// Mean JCT across training jobs, seconds.
    pub fn mean_jct_secs(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.jct.as_secs_f64()).sum::<f64>() / self.jobs.len() as f64
    }

    /// The full JCT distribution across training jobs (seconds) — tail
    /// percentiles, not just the mean.
    pub fn jct_summary(&self) -> DistSummary {
        DistSummary::from_unsorted(self.jobs.iter().map(|j| j.jct.as_secs_f64()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-computed nearest-rank fixtures. For n = 10 and p = 50,
    /// rank = ⌈0.5 · 10⌉ = 5 → the 5th smallest; p = 95 → rank ⌈9.5⌉ =
    /// 10 → the max; p = 99 likewise. For n = 100, p95 is exactly the
    /// 95th smallest.
    #[test]
    fn nearest_rank_matches_hand_computed_fixtures() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile_nearest_rank(&xs, 50.0), 5.0);
        assert_eq!(percentile_nearest_rank(&xs, 90.0), 9.0);
        assert_eq!(percentile_nearest_rank(&xs, 95.0), 10.0);
        assert_eq!(percentile_nearest_rank(&xs, 99.0), 10.0);
        assert_eq!(percentile_nearest_rank(&xs, 100.0), 10.0);
        assert_eq!(percentile_nearest_rank(&xs, 0.0), 1.0);

        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_nearest_rank(&xs, 50.0), 50.0);
        assert_eq!(percentile_nearest_rank(&xs, 95.0), 95.0);
        assert_eq!(percentile_nearest_rank(&xs, 99.0), 99.0);

        // Ties: the result is an input element, so a run of equal values
        // spanning the rank yields exactly that value.
        let xs = [1.0, 2.0, 2.0, 2.0, 9.0];
        assert_eq!(percentile_nearest_rank(&xs, 50.0), 2.0);
        assert_eq!(percentile_nearest_rank(&xs, 99.0), 9.0);

        // Single sample: every percentile is that sample.
        assert_eq!(percentile_nearest_rank(&[7.5], 1.0), 7.5);
        assert_eq!(percentile_nearest_rank(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn dist_summary_sorts_and_orders_percentiles() {
        let s = DistSummary::from_unsorted(vec![9.0, 1.0, 5.0, 3.0, 7.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.p50, 5.0);
        assert_eq!(s.p95, 9.0);
        assert_eq!(s.p99, 9.0);
        assert_eq!(s.max, 9.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        percentile_nearest_rank(&[], 50.0);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
        // One tenant hogging everything tends to 1/n.
        let j = jain_index(&[1.0, 0.0, 0.0]);
        assert!((j - 1.0 / 3.0).abs() < 1e-12, "{j}");
        // Moderate skew lands strictly between.
        let j = jain_index(&[2.0, 1.0]);
        assert!(j > 0.5 && j < 1.0);
    }
}
