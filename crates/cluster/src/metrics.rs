//! Cluster-level metrics: JCT, makespan, fairness, link utilisation.

use bs_runtime::RunResult;
use bs_sim::{SimTime, Trace};
use bs_telemetry::MetricSet;
use serde::Serialize;

/// Jain's fairness index over the given allocations:
/// `(Σx)² / (n · Σx²)`. 1.0 = perfectly fair, `1/n` = one tenant takes
/// everything. Empty input yields 1.0 (nothing to be unfair about).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// One machine NIC's utilisation over the cluster makespan, as delivered
/// payload bytes over the effective link capacity.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LinkUtil {
    /// Machine index.
    pub machine: usize,
    /// Uplink (egress) utilisation in [0, ~1].
    pub up: f64,
    /// Downlink (ingress) utilisation in [0, ~1].
    pub down: f64,
}

/// One training job's cluster outcome.
#[derive(Clone, Debug, Serialize)]
pub struct JobOutcome {
    /// The spec's display name.
    pub name: String,
    /// Arrival time.
    pub arrival: SimTime,
    /// When the job's last iteration retired.
    pub finished_at: SimTime,
    /// Job completion time: `finished_at - arrival`.
    pub jct: SimTime,
    /// Machines backing the job's local nodes.
    pub machines: Vec<usize>,
    /// The job's full single-job measurement (speed, iteration times,
    /// per-job traffic counters).
    pub result: RunResult,
}

/// The outcome of one cluster run.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterResult {
    /// Training jobs in spec order (burst tenants produce no outcome).
    pub jobs: Vec<JobOutcome>,
    /// When the last training job finished.
    pub makespan: SimTime,
    /// Jain's index over per-job throughput (1/JCT) — how evenly the
    /// fabric served the tenants.
    pub jain_fairness: f64,
    /// Per-machine NIC utilisation over the makespan (all tenants'
    /// traffic, burst tenants included).
    pub link_utilisation: Vec<LinkUtil>,
    /// Total point-to-point deliveries on the shared fabric — the
    /// cluster-mode events/sec numerator for the perf baseline.
    pub fabric_events: u64,
    /// Merged execution trace with per-job track groups (`job0/…`), when
    /// [`crate::ClusterConfig::record_trace`] was set.
    pub trace: Option<Trace>,
    /// Cluster-level metrics, when
    /// [`crate::ClusterConfig::record_metrics`] was set: shared-fabric
    /// telemetry under `net/` and per-job per-NIC traffic shares under
    /// `job{j}/nic{m}/`. Per-job scheduler/GPU metrics live in each
    /// job's [`JobOutcome::result`].
    pub metrics: Option<MetricSet>,
}

impl ClusterResult {
    /// The busiest NIC direction's utilisation.
    pub fn peak_link_utilisation(&self) -> f64 {
        self.link_utilisation
            .iter()
            .flat_map(|l| [l.up, l.down])
            .fold(0.0, f64::max)
    }

    /// Mean JCT across training jobs, seconds.
    pub fn mean_jct_secs(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.jct.as_secs_f64()).sum::<f64>() / self.jobs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
        // One tenant hogging everything tends to 1/n.
        let j = jain_index(&[1.0, 0.0, 0.0]);
        assert!((j - 1.0 / 3.0).abs() < 1e-12, "{j}");
        // Moderate skew lands strictly between.
        let j = jain_index(&[2.0, 1.0]);
        assert!(j > 0.5 && j < 1.0);
    }
}
