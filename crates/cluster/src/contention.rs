//! Reduction of raw link-contention recordings into the per-link
//! contention matrix exported as `contention.json`.
//!
//! The fabric records two things per NIC direction (see
//! [`bs_net::contention`]): an active-job bitmask series and per-transfer
//! occupancy spans. This module folds them into the observables the
//! CASSINI-style credit broker needs (PAPERS.md):
//!
//! * per link — total busy and contended (≥ 2 jobs active) seconds, and
//!   per job its active seconds plus its bytes split into *solo* (no
//!   co-tenant active) and *contended* shares, attributed proportionally
//!   by overlap time against the active-set step function;
//! * per job pair — overlap seconds (both active on the same direction,
//!   summed over links) and the *phase-collision fraction*:
//!   `overlap / min(active_a, active_b)`, clamped to `[0, 1]` — 1.0 means
//!   the rarer job's comm phases always land on top of the other's.
//!
//! Everything here is plain folds over recorded step functions in fixed
//! index order — float sums in deterministic order — so the exported
//! JSON is byte-stable across runs and thread counts.

use bs_net::ContentionLog;
use bs_sim::SimTime;
use serde::{Serialize, Value};

/// Schema version written into every `contention.json`; bump on breaking
/// shape changes and keep `results/contention.schema.json` in step.
pub const CONTENTION_SCHEMA_VERSION: u64 = 1;

/// The committed `contention.json` schema, embedded so validation never
/// depends on the working directory. Byte-identity with the committed
/// file is pinned by test.
pub const CONTENTION_SCHEMA: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/contention.schema.json"
));

/// One job's share of one NIC direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobLinkShare {
    /// Job index (into [`ContentionMatrix::jobs`]).
    pub job: usize,
    /// Seconds the job had at least one transfer pending here.
    pub active_secs: f64,
    /// Bytes moved while no co-tenant was active on the direction.
    pub solo_bytes: f64,
    /// Bytes moved while at least one co-tenant was active.
    pub contended_bytes: f64,
}

/// One NIC direction's contention summary.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkContention {
    /// Machine index.
    pub machine: usize,
    /// `true` for the uplink (egress), `false` for the downlink.
    pub up: bool,
    /// Seconds any job was active on the direction.
    pub busy_secs: f64,
    /// Seconds at least two jobs were active simultaneously.
    pub contended_secs: f64,
    /// Per-job shares, in job-index order; jobs that never touched the
    /// direction are omitted.
    pub jobs: Vec<JobLinkShare>,
}

/// One job pair's overlap summary, aggregated over all NIC directions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairContention {
    /// Lower job index of the pair.
    pub a: usize,
    /// Higher job index of the pair.
    pub b: usize,
    /// Seconds both jobs were active on the same NIC direction, summed
    /// over directions.
    pub overlap_secs: f64,
    /// Fraction of the rarer job's active time spent overlapping:
    /// `overlap / min(active_a, active_b)`, clamped to `[0, 1]`.
    pub phase_collision: f64,
}

/// The schema-versioned contention matrix for one cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct ContentionMatrix {
    /// [`CONTENTION_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Observation horizon (the cluster makespan).
    pub horizon: SimTime,
    /// Tenant display names, in spec order; indices elsewhere refer here.
    pub jobs: Vec<String>,
    /// Per NIC direction, machine-major with uplink before downlink;
    /// directions that never carried traffic are omitted.
    pub links: Vec<LinkContention>,
    /// Per job pair (`a < b`), for pairs where both jobs touched the
    /// fabric; sorted by `(a, b)`.
    pub pairs: Vec<PairContention>,
}

impl ContentionMatrix {
    /// Folds a raw recording into the matrix. `jobs` are the tenant
    /// names in spec order (= tag-namespace order).
    pub fn reduce(log: &ContentionLog, horizon: SimTime, jobs: Vec<String>) -> ContentionMatrix {
        let n = log.nodes;
        let nj = jobs.len();
        // Accumulators in fixed (port, job) order so float sums are
        // byte-reproducible.
        let mut active = vec![vec![0.0f64; nj]; 2 * n];
        let mut busy = vec![0.0f64; 2 * n];
        let mut contended = vec![0.0f64; 2 * n];
        let mut job_total = vec![0.0f64; nj];
        let mut overlap = vec![vec![0.0f64; nj]; nj];
        for (p, series) in log.active.iter().enumerate() {
            for (t0, t1, mask) in series.segments(horizon) {
                if mask == 0 {
                    continue;
                }
                let dur = t1.saturating_sub(t0).as_secs_f64();
                busy[p] += dur;
                if mask.count_ones() >= 2 {
                    contended[p] += dur;
                }
                for a in 0..nj {
                    if mask & (1 << a) == 0 {
                        continue;
                    }
                    active[p][a] += dur;
                    job_total[a] += dur;
                    for (b, o) in overlap[a].iter_mut().enumerate().skip(a + 1) {
                        if mask & (1 << b) != 0 {
                            *o += dur;
                        }
                    }
                }
            }
        }
        // Occupancy spans split into solo vs contended byte shares by
        // overlap against the direction's active-set step function. A
        // span is "contended" exactly while a *co-tenant* is active —
        // the owning job's own bit does not count against it.
        let mut solo = vec![vec![0.0f64; nj]; 2 * n];
        let mut cont = vec![vec![0.0f64; nj]; 2 * n];
        for &(p, job, bytes, start, end) in &log.occupancy {
            if job >= nj {
                continue;
            }
            let others = !(1u64 << job);
            let total = end.saturating_sub(start).as_secs_f64();
            if total <= 0.0 {
                // Instantaneous span: attribute by the mask in force at
                // `start` (the last segment opening at or before it).
                let mask = log.active[p]
                    .samples()
                    .iter()
                    .take_while(|&&(t, _)| t <= start)
                    .last()
                    .map_or(0, |&(_, m)| m);
                if mask & others != 0 {
                    cont[p][job] += bytes as f64;
                } else {
                    solo[p][job] += bytes as f64;
                }
                continue;
            }
            let mut contended_dur = 0.0f64;
            for (t0, t1, mask) in log.active[p].segments(SimTime::MAX) {
                let s = t0.max(start);
                let e = t1.min(end);
                if e > s && mask & others != 0 {
                    contended_dur += e.saturating_sub(s).as_secs_f64();
                }
            }
            let frac = (contended_dur / total).clamp(0.0, 1.0);
            cont[p][job] += bytes as f64 * frac;
            solo[p][job] += bytes as f64 * (1.0 - frac);
        }
        // Assemble: machine-major, uplink before downlink, so the output
        // order is a pure function of the topology.
        let mut links = Vec::new();
        for m in 0..n {
            for (up, p) in [(true, m), (false, n + m)] {
                let shares: Vec<JobLinkShare> = (0..nj)
                    .filter(|&j| active[p][j] > 0.0 || solo[p][j] > 0.0 || cont[p][j] > 0.0)
                    .map(|j| JobLinkShare {
                        job: j,
                        active_secs: active[p][j],
                        solo_bytes: solo[p][j],
                        contended_bytes: cont[p][j],
                    })
                    .collect();
                if shares.is_empty() {
                    continue;
                }
                links.push(LinkContention {
                    machine: m,
                    up,
                    busy_secs: busy[p],
                    contended_secs: contended[p],
                    jobs: shares,
                });
            }
        }
        let mut pairs = Vec::new();
        for a in 0..nj {
            for b in (a + 1)..nj {
                if job_total[a] <= 0.0 || job_total[b] <= 0.0 {
                    continue;
                }
                let min_active = job_total[a].min(job_total[b]);
                pairs.push(PairContention {
                    a,
                    b,
                    overlap_secs: overlap[a][b],
                    phase_collision: (overlap[a][b] / min_active).clamp(0.0, 1.0),
                });
            }
        }
        ContentionMatrix {
            schema_version: CONTENTION_SCHEMA_VERSION,
            horizon,
            jobs,
            links,
            pairs,
        }
    }
}

impl Serialize for ContentionMatrix {
    fn to_value(&self) -> Value {
        let links: Vec<Value> = self
            .links
            .iter()
            .map(|l| {
                let jobs: Vec<Value> = l
                    .jobs
                    .iter()
                    .map(|s| {
                        Value::Object(vec![
                            ("job".into(), Value::U64(s.job as u64)),
                            ("active_secs".into(), Value::F64(s.active_secs)),
                            ("solo_bytes".into(), Value::F64(s.solo_bytes)),
                            ("contended_bytes".into(), Value::F64(s.contended_bytes)),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("machine".into(), Value::U64(l.machine as u64)),
                    (
                        "dir".into(),
                        Value::Str(if l.up { "up" } else { "down" }.into()),
                    ),
                    ("busy_secs".into(), Value::F64(l.busy_secs)),
                    ("contended_secs".into(), Value::F64(l.contended_secs)),
                    ("jobs".into(), Value::Array(jobs)),
                ])
            })
            .collect();
        let pairs: Vec<Value> = self
            .pairs
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("a".into(), Value::U64(p.a as u64)),
                    ("b".into(), Value::U64(p.b as u64)),
                    ("overlap_secs".into(), Value::F64(p.overlap_secs)),
                    ("phase_collision".into(), Value::F64(p.phase_collision)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema_version".into(), Value::U64(self.schema_version)),
            (
                "horizon_us".into(),
                Value::F64(self.horizon.as_micros_f64()),
            ),
            (
                "jobs".into(),
                Value::Array(self.jobs.iter().map(|j| Value::Str(j.clone())).collect()),
            ),
            ("links".into(), Value::Array(links)),
            ("pairs".into(), Value::Array(pairs)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_net::ContentionRecorder;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    fn low_bits(tag: u64) -> usize {
        (tag & 0b11) as usize
    }

    /// Hand-computed fixture: jobs 0 and 1 share node 0's uplink; job 0
    /// is active [0, 30)µs, job 1 [10, 20)µs → overlap 10 µs. Job 0
    /// moves 3000 bytes over its whole window (1000 during the overlap),
    /// job 1 moves 500 bytes entirely inside the overlap.
    #[test]
    fn matrix_matches_hand_computation() {
        let mut r = ContentionRecorder::new(us(0), 2, low_bits);
        r.on_submit(us(0), 0, 1, 0);
        r.on_submit(us(10), 0, 1, 1);
        r.on_delivered(us(20), 0, 1, 1);
        r.on_delivered(us(30), 0, 1, 0);
        r.on_wire(0, 1, 0, 3000, us(0), us(30));
        r.on_wire(0, 1, 1, 500, us(10), us(20));
        let log = r.take();
        let m = ContentionMatrix::reduce(&log, us(30), vec!["a".into(), "b".into()]);

        assert_eq!(m.schema_version, CONTENTION_SCHEMA_VERSION);
        // Node 0 uplink and node 1 downlink carry identical state; no
        // other direction appears.
        assert_eq!(m.links.len(), 2);
        let l = &m.links[0];
        assert!(l.machine == 0 && l.up);
        assert!((l.busy_secs - 30e-6).abs() < 1e-12);
        assert!((l.contended_secs - 10e-6).abs() < 1e-12);
        assert_eq!(l.jobs.len(), 2);
        // Job 0: 1/3 of its span overlapped → 1000 contended, 2000 solo.
        assert!((l.jobs[0].active_secs - 30e-6).abs() < 1e-12);
        assert!((l.jobs[0].solo_bytes - 2000.0).abs() < 1e-9);
        assert!((l.jobs[0].contended_bytes - 1000.0).abs() < 1e-9);
        // Job 1: fully inside the overlap → all 500 contended.
        assert!((l.jobs[1].solo_bytes - 0.0).abs() < 1e-9);
        assert!((l.jobs[1].contended_bytes - 500.0).abs() < 1e-9);
        // Pair: overlap 10 µs on each of 2 directions = 20 µs; job 1's
        // total active is 20 µs → collision fraction 1.0.
        assert_eq!(m.pairs.len(), 1);
        let p = &m.pairs[0];
        assert_eq!((p.a, p.b), (0, 1));
        assert!((p.overlap_secs - 20e-6).abs() < 1e-12);
        assert!((p.phase_collision - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serialises_deterministically_with_schema_version() {
        let mut r = ContentionRecorder::new(us(0), 2, low_bits);
        r.on_submit(us(0), 0, 1, 0);
        r.on_delivered(us(10), 0, 1, 0);
        r.on_wire(0, 1, 0, 100, us(0), us(10));
        let log = r.take();
        let m = ContentionMatrix::reduce(&log, us(10), vec!["solo".into()]);
        let a = serde_json::to_string_pretty(&m).expect("serialises");
        let b = serde_json::to_string_pretty(&m).expect("serialises");
        assert_eq!(a, b);
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\"solo_bytes\""));
        // A lone tenant yields no pairs and no contended time.
        assert!(m.pairs.is_empty());
        assert_eq!(m.links[0].contended_secs, 0.0);
    }
}
