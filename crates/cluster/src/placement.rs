//! Placement policies: which machines each job's nodes land on.
//!
//! Placement decides *how much* jobs contend: two jobs sharing a machine
//! share its NIC in both directions. The three policies bracket the
//! space: `Packed` maximises overlap (worst case / highest consolidation),
//! `RoundRobinSpread` is the oblivious default schedulers actually use,
//! and `NetworkAware` greedily minimises expected link overlap by placing
//! each arriving job on the least-loaded machines — the greedy
//! approximation of CASSINI-style network-aware scheduling (see
//! PAPERS.md).

use bs_net::NodeId;
use serde::Serialize;

use crate::spec::JobSpec;

/// How job-local nodes map onto cluster machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum PlacementPolicy {
    /// A global cursor walks the machines; each job takes the next `n`
    /// consecutive machines (mod cluster size). Jobs overlap only once
    /// the cluster wraps.
    RoundRobinSpread,
    /// Every job starts at machine 0: maximal NIC sharing. The
    /// consolidation end of the spectrum, and the adversarial case for
    /// fairness.
    Packed,
    /// Greedy network-aware placement: each job (in arrival order) takes
    /// the machines with the least accumulated traffic demand, weighted
    /// by the job's per-iteration gradient bytes. Minimises expected link
    /// overlap between jobs.
    NetworkAware,
}

impl PlacementPolicy {
    /// Display name for tables.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobinSpread => "round-robin",
            PlacementPolicy::Packed => "packed",
            PlacementPolicy::NetworkAware => "network-aware",
        }
    }

    /// All policies, for comparisons.
    pub fn all() -> [PlacementPolicy; 3] {
        [
            PlacementPolicy::RoundRobinSpread,
            PlacementPolicy::Packed,
            PlacementPolicy::NetworkAware,
        ]
    }

    /// Assigns machines to every job, in spec order. Entry `j` lists the
    /// machines backing job `j`'s local nodes 0, 1, …; machines within
    /// one job are always distinct (a job's nodes never share a NIC —
    /// loopback traffic is not modelled).
    ///
    /// Panics if any single job needs more machines than the cluster has.
    pub fn place(&self, machines: usize, specs: &[JobSpec]) -> Vec<Vec<NodeId>> {
        for s in specs {
            assert!(
                s.nodes_needed() <= machines,
                "job '{}' needs {} machines but the cluster has {machines}",
                s.name(),
                s.nodes_needed()
            );
        }
        match self {
            PlacementPolicy::Packed => specs
                .iter()
                .map(|s| (0..s.nodes_needed()).map(NodeId).collect())
                .collect(),
            PlacementPolicy::RoundRobinSpread => {
                let mut cursor = 0usize;
                specs
                    .iter()
                    .map(|s| {
                        let n = s.nodes_needed();
                        let nodes = (0..n).map(|k| NodeId((cursor + k) % machines)).collect();
                        cursor = (cursor + n) % machines;
                        nodes
                    })
                    .collect()
            }
            PlacementPolicy::NetworkAware => {
                let mut load = vec![0u64; machines];
                specs
                    .iter()
                    .map(|s| {
                        let n = s.nodes_needed();
                        if n == 0 {
                            return Vec::new();
                        }
                        // The n least-loaded machines, ties broken by
                        // index; assigned in machine order so the mapping
                        // is deterministic.
                        let mut by_load: Vec<usize> = (0..machines).collect();
                        by_load.sort_by_key(|&m| (load[m], m));
                        let mut chosen: Vec<usize> = by_load[..n].to_vec();
                        chosen.sort_unstable();
                        let per_node = s.demand_bytes() / n as u64;
                        for &m in &chosen {
                            load[m] += per_node.max(1);
                        }
                        chosen.into_iter().map(NodeId).collect()
                    })
                    .collect()
            }
        }
    }

    /// Health-aware remap after a machine failure: keeps every node that
    /// still sits on a healthy machine and moves the rest onto the
    /// lowest-indexed healthy machines the job is not already using, in
    /// node order. Returns `None` when the healthy pool is too small —
    /// the job must wait for a restore or fail.
    ///
    /// Keeping survivors pinned minimises state movement (only the lost
    /// shards/workers restore onto new NICs) and makes the remap
    /// deterministic: the result is a pure function of the old placement
    /// and the health vector.
    pub fn remap_healthy(current: &[NodeId], healthy: &[bool]) -> Option<Vec<NodeId>> {
        let keep: Vec<bool> = current.iter().map(|n| healthy[n.0]).collect();
        let kept: Vec<usize> = current
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(n, _)| n.0)
            .collect();
        let mut pool = (0..healthy.len()).filter(|m| healthy[*m] && !kept.contains(m));
        current
            .iter()
            .zip(&keep)
            .map(|(n, &k)| if k { Some(*n) } else { pool.next().map(NodeId) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_engine::EngineConfig;
    use bs_net::{NetConfig, Transport};
    use bs_runtime::{Arch, SchedulerKind, WorldConfig};

    fn train(workers: usize) -> JobSpec {
        let cfg = WorldConfig::new(
            bs_models::zoo::vgg16(),
            workers,
            Arch::ps(workers),
            NetConfig::gbps(10.0, Transport::tcp()),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        );
        JobSpec::train(format!("j{workers}"), cfg)
    }

    #[test]
    fn within_job_machines_are_always_distinct() {
        let specs = vec![train(2), train(3), train(4)];
        for p in PlacementPolicy::all() {
            for nodes in p.place(8, &specs) {
                let mut seen: Vec<usize> = nodes.iter().map(|n| n.0).collect();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), nodes.len(), "{p:?} reused a machine in-job");
            }
        }
    }

    #[test]
    fn packed_overlaps_and_spread_separates_when_room() {
        let specs = vec![train(2), train(2)];
        // 2 workers + 2 shards = 4 machines per job; 8 machines fit both.
        let packed = PlacementPolicy::Packed.place(8, &specs);
        assert_eq!(packed[0], packed[1], "packed jobs share all machines");
        let spread = PlacementPolicy::RoundRobinSpread.place(8, &specs);
        assert!(
            spread[0].iter().all(|n| !spread[1].contains(n)),
            "spread jobs must be disjoint when the cluster has room"
        );
    }

    #[test]
    fn network_aware_fills_empty_machines_first() {
        let specs = vec![train(2), train(2)];
        let placed = PlacementPolicy::NetworkAware.place(8, &specs);
        assert!(
            placed[0].iter().all(|n| !placed[1].contains(n)),
            "network-aware must avoid loaded machines while empty ones exist"
        );
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn oversized_jobs_rejected() {
        PlacementPolicy::Packed.place(3, &[train(2)]);
    }

    #[test]
    fn remap_keeps_survivors_and_fills_lowest_healthy() {
        let current = vec![NodeId(0), NodeId(2), NodeId(4), NodeId(5)];
        // Machines 2 and 5 fail in a 7-machine cluster.
        let healthy = [true, true, false, true, true, false, true];
        let got = PlacementPolicy::remap_healthy(&current, &healthy).expect("room");
        // Survivors 0, 4 stay; node 1 (was on 2) takes machine 1 (the
        // lowest healthy machine the job doesn't already use), node 3
        // (was on 5) takes machine 3.
        assert_eq!(got, vec![NodeId(0), NodeId(1), NodeId(4), NodeId(3)]);
        let mut dedup: Vec<usize> = got.iter().map(|n| n.0).collect();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), got.len(), "machines stay distinct in-job");
    }

    #[test]
    fn remap_is_identity_when_all_machines_are_healthy() {
        let current = vec![NodeId(3), NodeId(1)];
        let healthy = [true; 4];
        assert_eq!(
            PlacementPolicy::remap_healthy(&current, &healthy),
            Some(current)
        );
    }

    #[test]
    fn remap_fails_when_the_healthy_pool_is_too_small() {
        let current = vec![NodeId(0), NodeId(1), NodeId(2)];
        // Only two healthy machines remain for a three-node job.
        let healthy = [true, false, false, true];
        assert_eq!(PlacementPolicy::remap_healthy(&current, &healthy), None);
    }
}
