//! Cluster and job specifications.

use bs_faults::FaultPlan;
use bs_net::{FabricModel, NetConfig};
use bs_runtime::{BackgroundLoad, JobState, WorldConfig};
use bs_sim::SimTime;
use serde::Serialize;

use crate::placement::PlacementPolicy;

/// What the cluster driver does when a machine fails mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FaultReaction {
    /// Checkpoint every affected training job at its last completed
    /// iteration barrier, pay the §7 checkpoint-restart cost, remap the
    /// job's nodes onto healthy machines and resume — re-running the lost
    /// iterations. Jobs with no feasible placement (now or at any future
    /// machine restore) fail closed with
    /// [`bs_runtime::RunOutcome::Failed`]. The default.
    CheckpointMigrate,
    /// No reaction: affected jobs ride out the outage through the
    /// loss-recovery path (retransmits queue against the dead NIC until
    /// it is restored, or the retry cap fails the job). The baseline the
    /// migration study compares against.
    None,
}

/// The shared infrastructure every job runs on.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterConfig {
    /// Machines in the cluster. Each machine is one fabric node (one
    /// duplex NIC); a machine may host one job's worker and another job's
    /// PS shard simultaneously — that is the contention being modelled.
    pub machines: usize,
    /// NIC bandwidth + transport, uniform across machines.
    pub net: NetConfig,
    /// Sharing discipline of the shared fabric.
    pub fabric: FabricModel,
    /// How job-local nodes map onto machines.
    pub placement: PlacementPolicy,
    /// Record a merged Chrome trace with per-job track groups.
    pub record_trace: bool,
    /// Record run metrics: per-job scheduler/GPU telemetry (landing in
    /// each [`crate::JobOutcome`]'s `result.metrics`) plus cluster-level
    /// fabric utilisation and per-job per-NIC traffic shares (landing in
    /// [`crate::ClusterResult::metrics`]). Off by default, same overhead
    /// contract as [`WorldConfig::record_metrics`].
    pub record_metrics: bool,
    /// Record each training job's causal event log and attach per-job
    /// critical-path attribution to its `result.xray`. Off by default,
    /// same recording-only contract as [`WorldConfig::record_xray`].
    pub record_xray: bool,
    /// Record per-NIC-direction active-job sets and occupancy spans on
    /// the shared fabric and attach the reduced link-contention matrix to
    /// [`crate::ClusterResult::contention`]. Off by default, same
    /// recording-only contract as the other recorders: enabling it never
    /// changes any simulation event.
    pub record_contention: bool,
    /// Simulation threads for the conservative-parallel driver core.
    /// `1` (the default) runs the plain sequential event loop; `N > 1`
    /// free-runs fabric-independent jobs on `N - 1` pool workers plus the
    /// driver thread between shared-fabric interaction points. Results
    /// are bit-identical at every thread count — this knob trades wall
    /// clock only, never behaviour.
    pub threads: usize,
    /// Cluster-scope fault plan. Link events and flaps name *machines*
    /// (fabric nodes shared by every tenant) and are applied to the
    /// shared fabric exactly once; `machine_failures` take whole machines
    /// down and trigger the configured [`FaultReaction`]; loss, straggler
    /// and recovery settings project onto every training job that has no
    /// private plan of its own, each through its own split-seed RNG
    /// stream.
    pub faults: Option<FaultPlan>,
    /// What to do when a machine fails. Ignored when no machine ever
    /// fails.
    pub reaction: FaultReaction,
}

impl ClusterConfig {
    /// A cluster with the default FIFO fabric and round-robin placement.
    pub fn new(machines: usize, net: NetConfig) -> ClusterConfig {
        ClusterConfig {
            machines,
            net,
            fabric: FabricModel::SerialFifo,
            placement: PlacementPolicy::RoundRobinSpread,
            record_trace: false,
            record_metrics: false,
            record_xray: false,
            record_contention: false,
            threads: 1,
            faults: None,
            reaction: FaultReaction::CheckpointMigrate,
        }
    }
}

/// One tenant of the cluster.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum JobSpec {
    /// A full training job. `cfg.net` is used only for the job's private
    /// collective stream (all-reduce); its point-to-point traffic rides
    /// the *cluster's* fabric at the cluster's `net`.
    Train {
        /// Display name ("vgg16-bs", …).
        name: String,
        /// When the job's compute starts.
        arrival: SimTime,
        /// The complete run configuration.
        cfg: WorldConfig,
    },
    /// A degenerate tenant that only injects looping co-tenant bursts —
    /// the cluster-native form of [`BackgroundLoad`]. It occupies
    /// `2 * pairs` machines (`pairs` "workers" and `pairs` "servers",
    /// bursting both directions on each pair) and never finishes; the
    /// cluster run ends when every training job does.
    Burst {
        /// Display name.
        name: String,
        /// When the first bursts are injected.
        arrival: SimTime,
        /// Burst size and gap.
        load: BackgroundLoad,
        /// Worker/server machine pairs carrying bursts.
        pairs: usize,
        /// Seed of the gap-jitter RNG stream.
        seed: u64,
    },
}

impl JobSpec {
    /// A training job arriving at time zero.
    pub fn train(name: impl Into<String>, cfg: WorldConfig) -> JobSpec {
        JobSpec::train_at(name, cfg, SimTime::ZERO)
    }

    /// A training job arriving at `arrival`.
    pub fn train_at(name: impl Into<String>, cfg: WorldConfig, arrival: SimTime) -> JobSpec {
        JobSpec::Train {
            name: name.into(),
            arrival,
            cfg,
        }
    }

    /// A burst-only tenant active from time zero.
    pub fn burst(
        name: impl Into<String>,
        load: BackgroundLoad,
        pairs: usize,
        seed: u64,
    ) -> JobSpec {
        JobSpec::Burst {
            name: name.into(),
            arrival: SimTime::ZERO,
            load,
            pairs,
            seed,
        }
    }

    /// The tenant's display name.
    pub fn name(&self) -> &str {
        match self {
            JobSpec::Train { name, .. } | JobSpec::Burst { name, .. } => name,
        }
    }

    /// When the tenant becomes active.
    pub fn arrival(&self) -> SimTime {
        match self {
            JobSpec::Train { arrival, .. } | JobSpec::Burst { arrival, .. } => *arrival,
        }
    }

    /// Machines this tenant occupies on the shared fabric (0 for
    /// all-reduce training jobs: their collective stream is private).
    pub fn nodes_needed(&self) -> usize {
        match self {
            JobSpec::Train { cfg, .. } => JobState::fabric_nodes_needed(cfg),
            JobSpec::Burst { pairs, .. } => 2 * pairs,
        }
    }

    /// Rough traffic demand, used by network-aware placement to weight
    /// machine load: gradient bytes per iteration for a training job, one
    /// burst for a burst tenant.
    pub fn demand_bytes(&self) -> u64 {
        match self {
            JobSpec::Train { cfg, .. } => {
                cfg.model.layers.iter().map(|l| l.param_bytes).sum::<u64>()
            }
            JobSpec::Burst { load, .. } => load.burst_bytes,
        }
    }
}
