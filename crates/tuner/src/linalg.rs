//! Minimal dense linear algebra: exactly what GP regression needs.
//!
//! A Gaussian process over a handful of profiling samples needs only
//! small symmetric positive-definite solves; a full linear-algebra crate
//! would be massive overkill, so this module provides a compact Cholesky
//! implementation with forward/backward substitution.

/// A square matrix in row-major storage.
#[derive(Clone, Debug)]
pub struct Mat {
    n: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of size `n` × `n`.
    pub fn zeros(n: usize) -> Mat {
        Mat {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds from a closure over (row, col).
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Mat {
        let mut m = Mat::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix. Returns `None` if the matrix is not (numerically) SPD —
    /// callers add jitter to the diagonal and retry.
    pub fn cholesky(&self) -> Option<Mat> {
        let n = self.n;
        let mut l = Mat::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `L·x = b` (forward substitution) for lower-triangular `L`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut x = vec![0.0; self.n];
        for i in 0..self.n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `Lᵀ·x = b` (backward substitution) for lower-triangular `L`.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let mut sum = b[i];
            for k in i + 1..self.n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `A·x = b` given this matrix's Cholesky factor `L` (i.e.
    /// `self` must be `L`): two triangular solves.
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_lower_transpose(&y)
    }

    /// Log-determinant of `A` from its Cholesky factor `L` (`self`):
    /// `2 Σ log L_ii`.
    pub fn cholesky_log_det(&self) -> f64 {
        (0..self.n).map(|i| self[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

impl core::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Mat {
        // A = B·Bᵀ + I for B random-ish: guaranteed SPD.
        let mut a = Mat::zeros(3);
        let b = [[2.0, 0.1, 0.4], [0.3, 1.5, 0.2], [0.7, 0.6, 1.1]];
        for i in 0..3 {
            for j in 0..3 {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for (k, _) in b.iter().enumerate() {
                    s += b[i][k] * b[j][k];
                }
                a[(i, j)] = s;
            }
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_the_matrix() {
        let a = spd3();
        let l = a.cholesky().expect("SPD");
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - a[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_solve_inverts() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = l.cholesky_solve(&b);
        // Check A·x == b.
        for i in 0..3 {
            let mut s = 0.0;
            for j in 0..3 {
                s += a[(i, j)] * x[j];
            }
            assert!((s - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let mut a = Mat::zeros(2);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -1.0;
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn log_det_matches_direct_computation() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        // det via cofactor expansion for 3x3.
        let d = |m: &Mat| {
            m[(0, 0)] * (m[(1, 1)] * m[(2, 2)] - m[(1, 2)] * m[(2, 1)])
                - m[(0, 1)] * (m[(1, 0)] * m[(2, 2)] - m[(1, 2)] * m[(2, 0)])
                + m[(0, 2)] * (m[(1, 0)] * m[(2, 1)] - m[(1, 1)] * m[(2, 0)])
        };
        assert!((l.cholesky_log_det() - d(&a).ln()).abs() < 1e-9);
    }

    #[test]
    fn triangular_solves_round_trip() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let b = [3.0, 1.0, 2.0];
        let y = l.solve_lower(&b);
        // L·y must equal b.
        for i in 0..3 {
            let mut s = 0.0;
            for k in 0..=i {
                s += l[(i, k)] * y[k];
            }
            assert!((s - b[i]).abs() < 1e-10);
        }
    }
}
