//! Bandwidth-drift detection for adaptive re-tuning (§3.5).
//!
//! The best (δ, c) depends on the available bandwidth, and the paper's
//! design re-runs Bayesian Optimization "when the available bandwidth
//! changes beyond a threshold" — e.g. when a co-tenant arrives or a link
//! degrades mid-training. [`DriftDetector`] is that trigger: it watches a
//! smoothed throughput signal and fires when it moves beyond a relative
//! threshold of the established baseline, after which the caller discards
//! its tuner state and restarts the search under the new conditions.

/// Watches a throughput signal and reports when it drifts beyond a
/// relative threshold — the re-tuning trigger of §3.5.
///
/// Observations are smoothed with an exponential moving average so a
/// single noisy iteration cannot trigger a (checkpoint-restart-priced)
/// re-tune; a genuine bandwidth shift moves the average within a few
/// iterations. On drift the baseline re-anchors to the current smoothed
/// value, so a degradation and the later restoration each fire once.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    /// Relative change that counts as drift (e.g. 0.2 = ±20 %).
    threshold: f64,
    /// EMA smoothing weight of the newest observation.
    alpha: f64,
    /// Throughput the current tuning ran against.
    baseline: Option<f64>,
    /// Smoothed current throughput.
    smoothed: Option<f64>,
    /// Drifts detected so far.
    drifts: u64,
}

impl DriftDetector {
    /// Creates a detector firing at ±`threshold` relative change, with an
    /// EMA weight of `alpha` on each new observation.
    pub fn new(threshold: f64, alpha: f64) -> DriftDetector {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "drift threshold must be a positive fraction"
        );
        assert!(alpha > 0.0 && alpha <= 1.0, "EMA weight must be in (0, 1]");
        DriftDetector {
            threshold,
            alpha,
            baseline: None,
            smoothed: None,
            drifts: 0,
        }
    }

    /// The paper's setting: re-tune on a ±20 % bandwidth shift, smoothed
    /// over roughly three iterations.
    pub fn paper_default() -> DriftDetector {
        DriftDetector::new(0.2, 0.3)
    }

    /// Feeds one throughput sample (any consistent unit). Returns `true`
    /// when the smoothed signal has drifted beyond the threshold from the
    /// baseline — the caller should restart its tuner; the detector
    /// re-anchors to the current level so the *next* shift fires again.
    pub fn observe(&mut self, throughput: f64) -> bool {
        assert!(
            throughput.is_finite() && throughput >= 0.0,
            "throughput samples must be finite and non-negative"
        );
        let s = match self.smoothed {
            None => throughput,
            Some(prev) => self.alpha * throughput + (1.0 - self.alpha) * prev,
        };
        self.smoothed = Some(s);
        let Some(base) = self.baseline else {
            self.baseline = Some(s);
            return false;
        };
        if (s - base).abs() > self.threshold * base {
            // Re-anchor to the *raw* level, not the transient EMA: during
            // a step change the average trails the signal for several
            // samples, and chasing it would fire once per sample until it
            // converges instead of once per shift.
            self.baseline = Some(throughput);
            self.smoothed = Some(throughput);
            self.drifts += 1;
            return true;
        }
        false
    }

    /// Throughput level the current tuning is anchored to.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Drift events fired so far.
    pub fn drifts(&self) -> u64 {
        self.drifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_signal_never_drifts() {
        let mut d = DriftDetector::new(0.2, 0.5);
        for _ in 0..50 {
            assert!(!d.observe(100.0));
        }
        assert_eq!(d.drifts(), 0);
        assert_eq!(d.baseline(), Some(100.0));
    }

    #[test]
    fn noise_below_threshold_is_ignored() {
        let mut d = DriftDetector::new(0.2, 0.5);
        for i in 0..40 {
            let y = 100.0 + if i % 2 == 0 { 8.0 } else { -8.0 };
            assert!(!d.observe(y), "±8 % noise must not trigger at ±20 %");
        }
    }

    #[test]
    fn degradation_fires_once_then_rebases() {
        let mut d = DriftDetector::new(0.2, 0.5);
        for _ in 0..5 {
            d.observe(100.0);
        }
        // Bandwidth drops 4x: fires within a few smoothed samples.
        let mut fired = 0;
        for _ in 0..10 {
            if d.observe(25.0) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "one shift, one re-tune");
        assert!(d.baseline().unwrap() < 60.0, "re-anchored low");
    }

    #[test]
    fn restoration_fires_again() {
        let mut d = DriftDetector::new(0.2, 0.5);
        for _ in 0..5 {
            d.observe(100.0);
        }
        for _ in 0..10 {
            d.observe(25.0);
        }
        let mut fired = 0;
        for _ in 0..10 {
            if d.observe(100.0) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "the recovery is its own drift");
        assert_eq!(d.drifts(), 2);
    }

    #[test]
    fn single_outlier_is_smoothed_away() {
        let mut d = DriftDetector::new(0.2, 0.3);
        for _ in 0..10 {
            d.observe(100.0);
        }
        assert!(!d.observe(50.0), "one bad iteration is not a drift");
        assert!(!d.observe(100.0));
        assert!(!d.observe(100.0));
        assert_eq!(d.drifts(), 0);
    }

    #[test]
    #[should_panic(expected = "positive fraction")]
    fn zero_threshold_rejected() {
        DriftDetector::new(0.0, 0.5);
    }
}
