//! The §7 checkpoint-restart cost model.
//!
//! The paper prices every partition-size change on a parameter-server
//! engine as a checkpoint-restart: serialize the model, tear the job
//! down, reload, and warm back up — about 9 seconds for ResNet-50 (§7,
//! also the harness's `RESTART_SECS`). The cluster driver reuses the same
//! price when it reacts to a machine failure: the victim job checkpoints
//! at its next iteration barrier, migrates to surviving machines, and
//! resumes, paying [`RestartCost::total_secs`] of wall-clock before its
//! first post-migration iteration.
//!
//! The model is deliberately two-term: a fixed framework tear-down/spin-up
//! latency plus a size-proportional serialization term. Calibrated so the
//! paper's ResNet-50 figure (~102 MB of parameters) lands on ≈9 s.

use bs_sim::SimTime;
use serde::Serialize;

/// Checkpoint-restart pricing: `fixed_secs + bytes / checkpoint_bw`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct RestartCost {
    /// Framework tear-down + process restart + warm-up, independent of
    /// model size.
    pub fixed_secs: f64,
    /// Serialize/deserialize throughput for the checkpoint payload.
    pub checkpoint_bw_bytes_per_sec: f64,
}

impl RestartCost {
    /// The §7 calibration: 5 s fixed plus 25 MB/s checkpoint bandwidth,
    /// which prices ResNet-50 (~102 MB) at ≈9 s.
    pub fn paper_default() -> RestartCost {
        RestartCost {
            fixed_secs: 5.0,
            checkpoint_bw_bytes_per_sec: 25e6,
        }
    }

    /// Seconds of wall-clock one checkpoint-restart of a `model_bytes`
    /// model costs.
    pub fn total_secs(&self, model_bytes: u64) -> f64 {
        self.fixed_secs + model_bytes as f64 / self.checkpoint_bw_bytes_per_sec
    }

    /// [`Self::total_secs`] as a simulator duration.
    pub fn total_time(&self, model_bytes: u64) -> SimTime {
        SimTime::from_secs_f64(self.total_secs(model_bytes))
    }
}

impl Default for RestartCost {
    fn default() -> RestartCost {
        RestartCost::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_prices_resnet50_near_nine_seconds() {
        // ResNet-50 carries ~25.5M parameters = ~102 MB of fp32 gradients.
        let cost = RestartCost::paper_default();
        let secs = cost.total_secs(102_000_000);
        assert!((8.5..=9.5).contains(&secs), "ResNet-50 restart {secs}s");
    }

    #[test]
    fn cost_is_monotone_in_model_size() {
        let cost = RestartCost::paper_default();
        assert!(cost.total_secs(400_000_000) > cost.total_secs(100_000_000));
        assert_eq!(cost.total_secs(0), cost.fixed_secs);
    }

    #[test]
    fn total_time_mirrors_total_secs() {
        let cost = RestartCost::default();
        let bytes = 50_000_000;
        let dt = cost.total_time(bytes);
        assert!((dt.as_secs_f64() - cost.total_secs(bytes)).abs() < 1e-9);
    }
}
