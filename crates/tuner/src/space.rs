//! The (δ, c) search space.
//!
//! Partition and credit sizes span orders of magnitude (Table 1: PS wants
//! single-digit MB, NCCL wants ~100 MB), so the tuners search the unit
//! square and this module maps it log-uniformly onto byte ranges.

use serde::Serialize;

/// A log-scaled 2-D search space over (partition bytes, credit bytes).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SearchSpace {
    /// Partition size δ bounds in bytes (inclusive).
    pub partition: (u64, u64),
    /// Credit size c bounds in bytes (inclusive).
    pub credit: (u64, u64),
}

impl SearchSpace {
    /// The space used for PS experiments: δ ∈ [64 KB, 64 MB],
    /// c ∈ [64 KB, 256 MB].
    pub fn ps() -> SearchSpace {
        SearchSpace {
            partition: (64 << 10, 64 << 20),
            credit: (64 << 10, 256 << 20),
        }
    }

    /// The space used for all-reduce experiments: both knobs reach into
    /// the hundreds of MB (Table 1's NCCL optima are an order of
    /// magnitude above the PS ones).
    pub fn allreduce() -> SearchSpace {
        SearchSpace {
            partition: (1 << 20, 512 << 20),
            credit: (1 << 20, 1 << 30),
        }
    }

    /// Maps a unit-square point to (δ, c) bytes, log-uniformly. The
    /// credit is clamped to at least the partition size — a window
    /// smaller than one partition degenerates to stop-and-wait anyway,
    /// and the paper's knobs respect c ≥ δ.
    pub fn decode(&self, x: [f64; 2]) -> (u64, u64) {
        let p = log_lerp(self.partition, x[0]);
        let c = log_lerp(self.credit, x[1]).max(p);
        (p, c)
    }

    /// Inverse of [`Self::decode`] (up to the credit clamp): maps (δ, c)
    /// back into the unit square; used to seed tuners with known-good
    /// points.
    pub fn encode(&self, partition: u64, credit: u64) -> [f64; 2] {
        [
            log_unlerp(self.partition, partition),
            log_unlerp(self.credit, credit),
        ]
    }
}

fn log_lerp((lo, hi): (u64, u64), t: f64) -> u64 {
    assert!(lo > 0 && hi >= lo, "bad range");
    let t = t.clamp(0.0, 1.0);
    let v = (lo as f64).ln() + t * ((hi as f64).ln() - (lo as f64).ln());
    v.exp().round().clamp(lo as f64, hi as f64) as u64
}

fn log_unlerp((lo, hi): (u64, u64), v: u64) -> f64 {
    let v = (v.clamp(lo, hi)) as f64;
    ((v.ln() - (lo as f64).ln()) / ((hi as f64).ln() - (lo as f64).ln())).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_hits_the_bounds() {
        let s = SearchSpace::ps();
        let (p0, _) = s.decode([0.0, 0.0]);
        let (p1, c1) = s.decode([1.0, 1.0]);
        assert_eq!(p0, 64 << 10);
        assert_eq!(p1, 64 << 20);
        assert_eq!(c1, 256 << 20);
    }

    #[test]
    fn decode_is_log_uniform() {
        let s = SearchSpace {
            partition: (1_000, 1_000_000),
            credit: (1_000, 1_000_000),
        };
        // Midpoint of a 3-decade log range is ~10^4.5.
        let (p, _) = s.decode([0.5, 0.5]);
        assert!((p as f64 / 31_623.0 - 1.0).abs() < 0.01, "{p}");
    }

    #[test]
    fn credit_is_clamped_to_partition() {
        let s = SearchSpace::ps();
        // Max partition, min credit: the clamp kicks in.
        let (p, c) = s.decode([1.0, 0.0]);
        assert_eq!(c, p);
    }

    #[test]
    fn encode_round_trips() {
        let s = SearchSpace::ps();
        for raw in [[0.1, 0.7], [0.5, 0.5], [0.93, 0.2]] {
            let (p, c) = s.decode(raw);
            let x = s.encode(p, c);
            let (p2, c2) = s.decode(x);
            // Byte rounding allows tiny drift only.
            assert!((p as f64 / p2 as f64 - 1.0).abs() < 1e-3);
            assert!((c as f64 / c2 as f64 - 1.0).abs() < 1e-3);
        }
    }
}
