//! The unified tuner interface and the paper's comparison strategies.

use bs_sim::SimRng;

/// A sequential optimiser over the unit square, maximising a black-box
/// objective. The driver loop is always:
///
/// ```text
/// loop { x = suggest(); y = profile(decode(x)); observe(x, y); }
/// ```
pub trait Tuner {
    /// Strategy name for result tables.
    fn name(&self) -> &'static str;

    /// The next point to profile, in `[0,1]²`.
    fn suggest(&mut self) -> [f64; 2];

    /// Reports the observed objective value at `x`.
    fn observe(&mut self, x: [f64; 2], y: f64);

    /// Best observation so far.
    fn best(&self) -> Option<([f64; 2], f64)>;
}

/// Shared best-tracking used by every strategy.
#[derive(Debug, Default)]
pub(crate) struct BestTracker {
    best: Option<([f64; 2], f64)>,
}

impl BestTracker {
    pub(crate) fn update(&mut self, x: [f64; 2], y: f64) {
        if self.best.map(|(_, b)| y > b).unwrap_or(true) {
            self.best = Some((x, y));
        }
    }

    pub(crate) fn get(&self) -> Option<([f64; 2], f64)> {
        self.best
    }
}

/// Uniform random search (§6.3 comparison): every suggestion is an
/// independent uniform sample.
pub struct RandomSearch {
    rng: SimRng,
    tracker: BestTracker,
}

impl RandomSearch {
    /// Creates a seeded random search.
    pub fn new(seed: u64) -> Self {
        RandomSearch {
            rng: SimRng::new(seed),
            tracker: BestTracker::default(),
        }
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn suggest(&mut self) -> [f64; 2] {
        [self.rng.next_f64(), self.rng.next_f64()]
    }

    fn observe(&mut self, x: [f64; 2], y: f64) {
        self.tracker.update(x, y);
    }

    fn best(&self) -> Option<([f64; 2], f64)> {
        self.tracker.get()
    }
}

/// Grid search (§6.3 comparison): a `k × k` lattice visited row-major;
/// wraps around if asked for more points than the grid holds.
pub struct GridSearch {
    k: usize,
    next: usize,
    tracker: BestTracker,
}

impl GridSearch {
    /// Creates a `k × k` grid search.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "a grid needs at least 2 points per axis");
        GridSearch {
            k,
            next: 0,
            tracker: BestTracker::default(),
        }
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.k * self.k
    }

    /// Grids are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Tuner for GridSearch {
    fn name(&self) -> &'static str {
        "Grid"
    }

    fn suggest(&mut self) -> [f64; 2] {
        let idx = self.next % (self.k * self.k);
        self.next += 1;
        let (i, j) = (idx / self.k, idx % self.k);
        let step = 1.0 / (self.k - 1) as f64;
        [i as f64 * step, j as f64 * step]
    }

    fn observe(&mut self, x: [f64; 2], y: f64) {
        self.tracker.update(x, y);
    }

    fn best(&self) -> Option<([f64; 2], f64)> {
        self.tracker.get()
    }
}

/// SGD with momentum (§6.3 comparison, following [30]): finite-difference
/// gradient probes around the current point, a momentum step, and a random
/// restart when progress stalls (the paper restarts it out of local
/// optima). Probes count as trials — that, plus noisy derivatives, is why
/// it costs more than BO (Figure 14).
pub struct SgdMomentum {
    rng: SimRng,
    tracker: BestTracker,
    /// Current iterate.
    x: [f64; 2],
    velocity: [f64; 2],
    /// Finite-difference probe step.
    probe: f64,
    /// Learning rate.
    lr: f64,
    /// Momentum coefficient.
    beta: f64,
    /// Pending probe layout: values observed this round.
    phase: SgdPhase,
    base_y: f64,
    grad: [f64; 2],
    /// Consecutive steps without improvement, for restarts.
    stall: u32,
}

enum SgdPhase {
    /// Need the objective at the current iterate.
    Base,
    /// Need the +probe sample along axis 0.
    Probe0,
    /// Need the +probe sample along axis 1.
    Probe1,
}

impl SgdMomentum {
    /// Creates a seeded SGD-with-momentum tuner with the best
    /// hyper-parameters from our own sweep (the paper likewise reports
    /// its comparison "with the best parameters").
    pub fn new(seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let x = [rng.next_f64(), rng.next_f64()];
        SgdMomentum {
            rng,
            tracker: BestTracker::default(),
            x,
            velocity: [0.0, 0.0],
            probe: 0.08,
            lr: 0.3,
            beta: 0.7,
            phase: SgdPhase::Base,
            base_y: 0.0,
            grad: [0.0, 0.0],
            stall: 0,
        }
    }

    fn clamp(x: &mut [f64; 2]) {
        for v in x.iter_mut() {
            *v = v.clamp(0.0, 1.0);
        }
    }
}

impl Tuner for SgdMomentum {
    fn name(&self) -> &'static str {
        "SGD-momentum"
    }

    fn suggest(&mut self) -> [f64; 2] {
        match self.phase {
            SgdPhase::Base => self.x,
            SgdPhase::Probe0 => {
                let mut p = self.x;
                p[0] = (p[0] + self.probe).min(1.0);
                p
            }
            SgdPhase::Probe1 => {
                let mut p = self.x;
                p[1] = (p[1] + self.probe).min(1.0);
                p
            }
        }
    }

    fn observe(&mut self, x: [f64; 2], y: f64) {
        self.tracker.update(x, y);
        match self.phase {
            SgdPhase::Base => {
                self.base_y = y;
                self.phase = SgdPhase::Probe0;
            }
            SgdPhase::Probe0 => {
                self.grad[0] = (y - self.base_y) / self.probe;
                self.phase = SgdPhase::Probe1;
            }
            SgdPhase::Probe1 => {
                self.grad[1] = (y - self.base_y) / self.probe;
                // Momentum ascent step on the (noisy) gradient, with the
                // gradient normalised so the step size is scale-free.
                let norm = (self.grad[0].powi(2) + self.grad[1].powi(2)).sqrt();
                let g = if norm > 1e-12 {
                    [self.grad[0] / norm, self.grad[1] / norm]
                } else {
                    [0.0, 0.0]
                };
                let before = self.x;
                for (d, &gd) in g.iter().enumerate() {
                    self.velocity[d] = self.beta * self.velocity[d] + self.lr * self.probe * gd;
                    self.x[d] += self.velocity[d];
                }
                Self::clamp(&mut self.x);
                let moved = (self.x[0] - before[0]).abs() + (self.x[1] - before[1]).abs();
                if moved < 1e-3 || norm < 1e-12 {
                    self.stall += 1;
                } else {
                    self.stall = 0;
                }
                if self.stall >= 2 {
                    // Random restart out of the (possibly local) optimum.
                    self.x = [self.rng.next_f64(), self.rng.next_f64()];
                    self.velocity = [0.0, 0.0];
                    self.stall = 0;
                }
                self.phase = SgdPhase::Base;
            }
        }
    }

    fn best(&self) -> Option<([f64; 2], f64)> {
        self.tracker.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth unimodal objective peaking at (0.3, 0.7).
    fn bump(x: [f64; 2]) -> f64 {
        let dx = x[0] - 0.3;
        let dy = x[1] - 0.7;
        (-8.0 * (dx * dx + dy * dy)).exp()
    }

    fn drive(t: &mut dyn Tuner, trials: usize) -> f64 {
        for _ in 0..trials {
            let x = t.suggest();
            let y = bump(x);
            t.observe(x, y);
        }
        t.best().expect("observed something").1
    }

    #[test]
    fn grid_covers_the_square() {
        let mut g = GridSearch::new(3);
        let pts: Vec<[f64; 2]> = (0..9).map(|_| g.suggest()).collect();
        assert!(pts.contains(&[0.0, 0.0]));
        assert!(pts.contains(&[1.0, 1.0]));
        assert!(pts.contains(&[0.5, 0.5]));
        // Wraps after exhaustion.
        assert_eq!(g.suggest(), [0.0, 0.0]);
    }

    #[test]
    fn all_strategies_find_a_decent_point_eventually() {
        let best_random = drive(&mut RandomSearch::new(3), 60);
        let best_grid = drive(&mut GridSearch::new(8), 64);
        let best_sgd = drive(&mut SgdMomentum::new(3), 60);
        assert!(best_random > 0.7, "random {best_random}");
        assert!(best_grid > 0.8, "grid {best_grid}");
        assert!(best_sgd > 0.7, "sgd {best_sgd}");
    }

    #[test]
    fn sgd_improves_over_its_starting_point() {
        let mut t = SgdMomentum::new(11);
        let x0 = t.suggest();
        let y0 = bump(x0);
        let best = drive(&mut t, 45);
        assert!(best >= y0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = RandomSearch::new(5);
        let mut b = RandomSearch::new(5);
        for _ in 0..10 {
            assert_eq!(a.suggest(), b.suggest());
        }
    }

    #[test]
    fn best_tracks_the_maximum() {
        let mut g = GridSearch::new(2);
        for _ in 0..4 {
            let x = g.suggest();
            g.observe(x, bump(x));
        }
        let (_, y) = g.best().unwrap();
        let expect = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]]
            .iter()
            .map(|&x| bump(x))
            .fold(f64::MIN, f64::max);
        assert_eq!(y, expect);
    }
}
