//! Gaussian-process regression with an RBF kernel.
//!
//! The surrogate model of §4.3: "At each given (δ, c), the objective
//! function value follows a distribution and we use Gaussian ... a 95 %
//! confidence interval is associated with D(δ, c)". Inputs live in the
//! unit square (see [`crate::space::SearchSpace`]); observations are
//! z-normalised internally so fixed signal/noise scales behave across
//! objectives. The kernel length-scale is selected by maximising the log
//! marginal likelihood over a small grid — enough hyper-parameter
//! adaptation to be robust, cheap enough to run every iteration.

use crate::linalg::{dot, Mat};

/// Squared-exponential kernel `σ² exp(−‖a−b‖² / 2ℓ²)`.
fn rbf(a: &[f64], b: &[f64], len: f64, sig2: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    sig2 * (-d2 / (2.0 * len * len)).exp()
}

/// A fitted Gaussian process.
pub struct Gp {
    xs: Vec<Vec<f64>>,
    /// Cholesky factor of `K + σₙ² I`.
    chol: Mat,
    /// `α = (K + σₙ² I)⁻¹ y` (normalised y).
    alpha: Vec<f64>,
    len: f64,
    sig2: f64,
    y_mean: f64,
    y_std: f64,
}

/// A posterior prediction.
#[derive(Clone, Copy, Debug)]
pub struct Posterior {
    /// Posterior mean, in the objective's original units.
    pub mean: f64,
    /// Posterior standard deviation, original units.
    pub std_dev: f64,
}

impl Posterior {
    /// 95 % confidence interval (the band Figure 9 plots).
    pub fn ci95(&self) -> (f64, f64) {
        (
            self.mean - 1.96 * self.std_dev,
            self.mean + 1.96 * self.std_dev,
        )
    }
}

/// Observation noise variance (on z-normalised targets). Matches the
/// run-time jitter of profiled speeds; BO's noise resilience (§4.3) comes
/// from modelling it rather than ignoring it.
const NOISE_VAR: f64 = 1e-2;
/// Diagonal jitter added when the kernel matrix is near-singular.
const JITTER: f64 = 1e-8;
/// Candidate length-scales for marginal-likelihood selection.
const LENGTH_SCALES: [f64; 4] = [0.1, 0.2, 0.35, 0.6];

impl Gp {
    /// Fits a GP to `(xs, ys)`. Requires at least two observations.
    /// The length-scale is chosen by maximising the log marginal
    /// likelihood over [`LENGTH_SCALES`].
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Gp {
        assert_eq!(xs.len(), ys.len());
        assert!(xs.len() >= 2, "a GP needs at least two observations");
        let n = ys.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let var = ys.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = if var > 1e-30 { var.sqrt() } else { 1.0 };
        let yn: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();
        let sig2 = 1.0;

        let mut best: Option<(f64, Mat, Vec<f64>, f64)> = None;
        for &len in &LENGTH_SCALES {
            let Some((chol, alpha)) = Self::factorise(xs, &yn, len, sig2) else {
                continue;
            };
            // log p(y) = -½ yᵀα − ½ log|K| − (n/2) log 2π
            let lml = -0.5 * dot(&yn, &alpha)
                - 0.5 * chol.cholesky_log_det()
                - 0.5 * n as f64 * (2.0 * core::f64::consts::PI).ln();
            if best.as_ref().map(|(b, _, _, _)| lml > *b).unwrap_or(true) {
                best = Some((lml, chol, alpha, len));
            }
        }
        let (_, chol, alpha, len) = best.expect("at least one length-scale must factorise");
        Gp {
            xs: xs.to_vec(),
            chol,
            alpha,
            len,
            sig2,
            y_mean,
            y_std,
        }
    }

    fn factorise(xs: &[Vec<f64>], yn: &[f64], len: f64, sig2: f64) -> Option<(Mat, Vec<f64>)> {
        let n = xs.len();
        let k = Mat::from_fn(n, |i, j| {
            rbf(&xs[i], &xs[j], len, sig2) + if i == j { NOISE_VAR + JITTER } else { 0.0 }
        });
        let chol = k.cholesky()?;
        let alpha = chol.cholesky_solve(yn);
        Some((chol, alpha))
    }

    /// The selected kernel length-scale.
    pub fn length_scale(&self) -> f64 {
        self.len
    }

    /// Posterior at a query point.
    pub fn predict(&self, x: &[f64]) -> Posterior {
        let kstar: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| rbf(xi, x, self.len, self.sig2))
            .collect();
        let mean_n = dot(&kstar, &self.alpha);
        // var = k(x,x) − k*ᵀ (K+σₙ²I)⁻¹ k*  via v = L⁻¹ k*.
        let v = self.chol.solve_lower(&kstar);
        let var_n = (self.sig2 - dot(&v, &v)).max(0.0);
        Posterior {
            mean: mean_n * self.y_std + self.y_mean,
            std_dev: var_n.sqrt() * self.y_std,
        }
    }
}

/// Standard normal PDF.
pub fn phi(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * core::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (max abs error 1.5 × 10⁻⁷ — ample for acquisition
/// ranking).
pub fn big_phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / core::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_noise_free_samples_closely() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0, 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
        let gp = Gp::fit(&xs, &ys);
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 0.15, "mean {} vs sample {y}", p.mean);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.2, 0.2], vec![0.25, 0.22], vec![0.3, 0.18]];
        let ys = vec![1.0, 1.1, 0.9];
        let gp = Gp::fit(&xs, &ys);
        let near = gp.predict(&[0.24, 0.2]).std_dev;
        let far = gp.predict(&[0.9, 0.9]).std_dev;
        assert!(far > near * 2.0, "far {far} vs near {near}");
    }

    #[test]
    fn ci95_brackets_the_mean() {
        let gp = Gp::fit(&[vec![0.1, 0.1], vec![0.9, 0.9]], &[2.0, 4.0]);
        let p = gp.predict(&[0.5, 0.5]);
        let (lo, hi) = p.ci95();
        assert!(lo < p.mean && p.mean < hi);
        assert!((hi - lo - 2.0 * 1.96 * p.std_dev).abs() < 1e-12);
    }

    #[test]
    fn predictions_are_in_original_units() {
        // Constant-offset targets: posterior mean must live near them.
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 4.0, 0.0]).collect();
        let ys = vec![1000.0, 1010.0, 990.0, 1005.0, 995.0];
        let gp = Gp::fit(&xs, &ys);
        let p = gp.predict(&[0.5, 0.0]);
        assert!((p.mean - 1000.0).abs() < 30.0);
    }

    #[test]
    fn normal_functions_are_sane() {
        assert!((big_phi(0.0) - 0.5).abs() < 1e-7);
        assert!(big_phi(5.0) > 0.999_999);
        assert!(big_phi(-5.0) < 1e-6);
        assert!((phi(0.0) - 0.398_942_28).abs() < 1e-6);
        // Symmetry.
        assert!((big_phi(1.3) + big_phi(-1.3) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn length_scale_adapts_to_the_objective() {
        // A rapidly-oscillating target should select a shorter length
        // scale than a near-linear one.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0, 0.0]).collect();
        let wiggly: Vec<f64> = xs.iter().map(|x| (x[0] * 40.0).sin()).collect();
        let smooth: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
        let l_wiggly = Gp::fit(&xs, &wiggly).length_scale();
        let l_smooth = Gp::fit(&xs, &smooth).length_scale();
        assert!(
            l_wiggly <= l_smooth,
            "wiggly {l_wiggly} should not exceed smooth {l_smooth}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_point_is_not_enough() {
        Gp::fit(&[vec![0.5, 0.5]], &[1.0]);
    }
}
