//! [`DriftDetector`] as a live scope-bus subscriber.
//!
//! The offline re-tune trigger (§3.5 of the paper) scans a finished
//! run's iteration times after the fact. [`LiveDrift`] attaches the
//! same detector to a [`bs_scope::ScopeBus`] instead, observing each
//! `iter_done` event's implied throughput as the run publishes it —
//! which puts a `drift` event on the bus *at the simulated instant the
//! shift became visible*, mid-run, rather than in a post-mortem.
//!
//! Equivalence with the offline scan is exact, not approximate: the
//! harness's `drift_scan` feeds the detector `1 / Δt` for consecutive
//! post-warmup iteration marks, and an `iter_done` event's `wall_secs`
//! is the identical f64 difference of the same two marks. Feeding
//! `1 / wall_secs` for events with `iter > warmup` therefore produces
//! the bit-identical observation stream, so the live detector fires on
//! the same iteration — and stamps it with that mark's simulated time.
//! The `live_drift_matches_offline_scan` experiment pins this.

use std::collections::HashMap;

use bs_scope::{ScopeEvent, ScopeSubscriber};
use bs_sim::SimTime;

use crate::drift::DriftDetector;

/// A per-job [`DriftDetector`] bank subscribed to a scope bus: every
/// post-warmup `iter_done` feeds its job's detector, and a firing
/// publishes a derived `drift` event at the iteration's own timestamp.
pub struct LiveDrift {
    /// Iterations to skip per job before observing (the harness's
    /// warmup convention: the first observed interval is
    /// `marks[warmup+1] − marks[warmup]`, i.e. events with
    /// `iter > warmup`).
    warmup: u64,
    /// One paper-default detector per job id. Never iterated, so map
    /// order cannot leak into the event stream.
    detectors: HashMap<usize, DriftDetector>,
}

impl LiveDrift {
    /// A subscriber skipping `warmup` iterations per job, with the
    /// paper-default detector (20 % threshold, EMA α = 0.3).
    pub fn new(warmup: u64) -> LiveDrift {
        LiveDrift {
            warmup,
            detectors: HashMap::new(),
        }
    }
}

impl ScopeSubscriber for LiveDrift {
    fn on_event(&mut self, ev: &ScopeEvent, out: &mut Vec<ScopeEvent>) {
        let ScopeEvent::IterDone {
            job,
            at,
            iter,
            wall_secs,
            ..
        } = *ev
        else {
            return;
        };
        // `iter == warmup` ends the warmup interval itself; observation
        // starts with the next boundary, matching the offline scan.
        if iter <= self.warmup || wall_secs <= 0.0 {
            return;
        }
        let det = self
            .detectors
            .entry(job)
            .or_insert_with(DriftDetector::paper_default);
        let baseline = det.baseline().unwrap_or(0.0);
        let observed = 1.0 / wall_secs;
        if det.observe(observed) {
            out.push(ScopeEvent::Drift {
                job,
                at,
                iter,
                baseline,
                observed,
            });
        }
    }

    fn on_finish(&mut self, _now: SimTime, _out: &mut Vec<ScopeEvent>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_scope::{Collector, ScopeBus};

    fn iter_done(job: usize, iter: u64, at_ms: u64, wall_secs: f64) -> ScopeEvent {
        ScopeEvent::IterDone {
            job,
            at: SimTime::from_millis(at_ms),
            iter,
            wall_secs,
            busy_secs: wall_secs,
            stall_secs: 0.0,
            retries: 0,
        }
    }

    #[test]
    fn live_bank_fires_where_the_offline_detector_does() {
        // Offline: the scan the harness runs over recorded iter times.
        let times = [0.1, 0.1, 0.1, 0.4, 0.4, 0.4];
        let mut offline = DriftDetector::paper_default();
        let mut first = None;
        for (i, dt) in times.iter().enumerate() {
            if offline.observe(1.0 / dt) && first.is_none() {
                first = Some(i);
            }
        }
        let first = first.expect("a 4x slowdown must fire");

        // Live: the same intervals as post-warmup iter_done events
        // (warmup = 1, so iter k+2 carries interval k).
        let mut bus = ScopeBus::new();
        bus.subscribe(Box::new(LiveDrift::new(1)));
        let (coll, log) = Collector::new();
        bus.subscribe(Box::new(coll));
        let mut clock = 0u64;
        for (k, dt) in times.iter().enumerate() {
            clock += (dt * 1000.0) as u64;
            bus.publish(iter_done(0, 2 + k as u64, clock, *dt));
        }
        let drifts: Vec<ScopeEvent> = log
            .events()
            .into_iter()
            .filter(|e| matches!(e, ScopeEvent::Drift { .. }))
            .collect();
        assert_eq!(drifts.len(), offline.drifts() as usize);
        let ScopeEvent::Drift { iter, observed, .. } = drifts[0] else {
            unreachable!()
        };
        assert_eq!(iter, 2 + first as u64, "same iteration as the scan");
        assert_eq!(observed, 1.0 / times[first]);
    }

    #[test]
    fn jobs_keep_independent_baselines_and_warmup_is_skipped() {
        let mut bus = ScopeBus::new();
        bus.subscribe(Box::new(LiveDrift::new(1)));
        let (coll, log) = Collector::new();
        bus.subscribe(Box::new(coll));
        // Job 0 is steady; job 1 shifts 4x. Warmup events (iter <= 1)
        // must not seed either baseline.
        for k in 0..2u64 {
            bus.publish(iter_done(0, k, 100 * (k + 1), 5.0)); // wild warmup walls
        }
        for k in 2..8u64 {
            bus.publish(iter_done(0, k, 1000 + 100 * k, 0.1));
            let dt = if k < 5 { 0.1 } else { 0.4 };
            bus.publish(iter_done(1, k, 1000 + 100 * k, dt));
        }
        let fired: Vec<usize> = log
            .events()
            .into_iter()
            .filter_map(|e| match e {
                ScopeEvent::Drift { job, .. } => Some(job),
                _ => None,
            })
            .collect();
        assert_eq!(fired, vec![1], "only the shifted job drifts");
    }
}
