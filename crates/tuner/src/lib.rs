//! Auto-tuning of ByteScheduler's partition size δ and credit size c (§4.3).
//!
//! The training speed `D(δ, c)` is a black box: non-parametric, observable
//! only through (noisy) profiling runs, expensive to sample (a PS run pays
//! a checkpoint-restart per partition-size change, §5). The paper tunes it
//! with Bayesian Optimization — a Gaussian-Process surrogate with the
//! Expected Improvement acquisition (ξ = 0.1) — and compares against grid
//! search, random search and SGD-with-momentum (§6.3, Figure 14).
//!
//! Everything here is built from scratch on a small dense-linear-algebra
//! module ([`linalg`]): [`gp`] implements GP regression (RBF kernel,
//! Cholesky solve, marginal-likelihood hyper-parameter selection), [`bo`]
//! the EI acquisition loop, and [`tuners`] the unified [`tuners::Tuner`]
//! interface plus the three comparison strategies. [`space`] maps the unit
//! square to log-scaled (δ, c) ranges.

pub mod bo;
pub mod drift;
pub mod gp;
pub mod linalg;
pub mod live;
pub mod restart;
pub mod space;
pub mod tuners;

pub use bo::BayesOpt;
pub use drift::DriftDetector;
pub use live::LiveDrift;
pub use restart::RestartCost;
pub use space::SearchSpace;
pub use tuners::{GridSearch, RandomSearch, SgdMomentum, Tuner};
