//! Bayesian Optimization with Expected Improvement (§4.3).

use bs_sim::SimRng;

use crate::gp::{big_phi, phi, Gp, Posterior};
use crate::tuners::{BestTracker, Tuner};

/// Number of random warm-up samples before the GP takes over.
const WARMUP: usize = 3;
/// Acquisition is maximised over this many lattice candidates per axis,
/// each perturbed slightly to avoid lattice artefacts.
const CAND_GRID: usize = 24;

/// The paper's auto-tuner: a Gaussian-Process surrogate with the Expected
/// Improvement acquisition, ξ = 0.1 ("we use the default value 0.1 in the
/// experiments") balancing exploitation against exploration.
pub struct BayesOpt {
    rng: SimRng,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    tracker: BestTracker,
    /// The EI exploration hyper-parameter ξ, applied on z-normalised
    /// objective values.
    pub xi: f64,
}

impl BayesOpt {
    /// Creates a seeded BO tuner with the paper's default ξ = 0.1.
    pub fn new(seed: u64) -> Self {
        BayesOpt {
            rng: SimRng::new(seed),
            xs: Vec::new(),
            ys: Vec::new(),
            tracker: BestTracker::default(),
            xi: 0.1,
        }
    }

    /// Number of observations so far.
    pub fn num_observations(&self) -> usize {
        self.ys.len()
    }

    /// Fits the current surrogate (needs ≥ 2 observations). Exposed so
    /// the Figure 9 harness can plot the posterior mean and 95 % CI.
    pub fn surrogate(&self) -> Option<Gp> {
        if self.ys.len() < 2 {
            None
        } else {
            Some(Gp::fit(&self.xs, &self.ys))
        }
    }

    /// Posterior prediction at `x` under the current surrogate.
    pub fn predict(&self, x: [f64; 2]) -> Option<Posterior> {
        self.surrogate().map(|gp| gp.predict(&x))
    }

    /// Expected Improvement of posterior `p` over incumbent `best`, with
    /// exploration margin `xi` (all in the objective's units; `xi` is
    /// scaled by the observed spread internally in `suggest`).
    fn ei(p: Posterior, best: f64, xi: f64) -> f64 {
        if p.std_dev < 1e-15 {
            return (p.mean - best - xi).max(0.0);
        }
        let z = (p.mean - best - xi) / p.std_dev;
        (p.mean - best - xi) * big_phi(z) + p.std_dev * phi(z)
    }
}

impl Tuner for BayesOpt {
    fn name(&self) -> &'static str {
        "BO"
    }

    fn suggest(&mut self) -> [f64; 2] {
        if self.ys.len() < WARMUP {
            return [self.rng.next_f64(), self.rng.next_f64()];
        }
        let gp = Gp::fit(&self.xs, &self.ys);
        let best = self
            .tracker
            .get()
            .map(|(_, y)| y)
            .expect("observations exist");
        // ξ is defined on normalised targets; rescale to original units
        // by the sample spread.
        let mean = self.ys.iter().sum::<f64>() / self.ys.len() as f64;
        let spread = (self.ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>()
            / self.ys.len() as f64)
            .sqrt()
            .max(1e-12);
        let xi = self.xi * spread;

        let mut best_x = [0.5, 0.5];
        let mut best_ei = f64::MIN;
        let step = 1.0 / (CAND_GRID - 1) as f64;
        for i in 0..CAND_GRID {
            for j in 0..CAND_GRID {
                let mut jit = || (self.rng.next_f64() - 0.5) * step * 0.5;
                let xa = (i as f64 * step + jit()).clamp(0.0, 1.0);
                let xb = (j as f64 * step + jit()).clamp(0.0, 1.0);
                let x = [xa, xb];
                let e = Self::ei(gp.predict(&x), best, xi);
                if e > best_ei {
                    best_ei = e;
                    best_x = x;
                }
            }
        }
        best_x
    }

    fn observe(&mut self, x: [f64; 2], y: f64) {
        self.xs.push(x.to_vec());
        self.ys.push(y);
        self.tracker.update(x, y);
    }

    fn best(&self) -> Option<([f64; 2], f64)> {
        self.tracker.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump(x: [f64; 2]) -> f64 {
        let dx = x[0] - 0.62;
        let dy = x[1] - 0.31;
        1000.0 * (-6.0 * (dx * dx + dy * dy)).exp()
    }

    fn run(seed: u64, trials: usize, noise: f64) -> ([f64; 2], f64, usize) {
        let mut bo = BayesOpt::new(seed);
        let mut noise_rng = SimRng::new(seed ^ 0xdead);
        let mut first_good = usize::MAX;
        for t in 0..trials {
            let x = bo.suggest();
            let y = bump(x) * (1.0 + noise * noise_rng.normal());
            bo.observe(x, y);
            if first_good == usize::MAX && bump(x) > 950.0 {
                first_good = t + 1;
            }
        }
        let (x, y) = bo.best().unwrap();
        (x, y, first_good)
    }

    #[test]
    fn finds_the_peak_in_few_trials() {
        let (x, _, first_good) = run(1, 20, 0.0);
        assert!(
            (x[0] - 0.62).abs() < 0.1 && (x[1] - 0.31).abs() < 0.1,
            "best at {x:?}"
        );
        assert!(first_good <= 20, "never got close");
    }

    #[test]
    fn beats_random_search_on_average_trials() {
        // BO should reach the 95%-of-peak region in fewer trials than
        // random search, averaged over seeds — the Figure 14 claim.
        let mut bo_total = 0usize;
        let mut rnd_total = 0usize;
        for seed in 0..8 {
            let (_, _, bo_first) = run(seed, 30, 0.02);
            bo_total += bo_first.min(30);
            let mut rs = crate::tuners::RandomSearch::new(seed);
            let mut first = 30;
            for t in 0..30 {
                let x = rs.suggest();
                rs.observe(x, bump(x));
                if bump(x) > 950.0 {
                    first = t + 1;
                    break;
                }
            }
            rnd_total += first;
        }
        assert!(
            bo_total < rnd_total,
            "BO {bo_total} trials vs random {rnd_total}"
        );
    }

    #[test]
    fn tolerates_observation_noise() {
        let (x, _, _) = run(5, 25, 0.05);
        assert!(bump(x) > 800.0, "noisy best at {x:?} -> {}", bump(x));
    }

    #[test]
    fn surrogate_appears_after_two_observations() {
        let mut bo = BayesOpt::new(2);
        assert!(bo.surrogate().is_none());
        for _ in 0..2 {
            let x = bo.suggest();
            bo.observe(x, bump(x));
        }
        assert!(bo.surrogate().is_some());
        assert!(bo.predict([0.5, 0.5]).is_some());
    }

    #[test]
    fn suggestions_avoid_resampling_known_bad_regions() {
        // After the warm-up, EI should concentrate suggestions away from
        // a region observed to be poor.
        let mut bo = BayesOpt::new(3);
        // Seed observations: left half bad, right half good.
        for x in [[0.1, 0.5], [0.2, 0.5], [0.3, 0.5]] {
            bo.observe(x, 10.0);
        }
        for x in [[0.8, 0.5], [0.9, 0.5]] {
            bo.observe(x, 100.0);
        }
        let mut right = 0;
        for _ in 0..10 {
            let s = bo.suggest();
            if s[0] > 0.5 {
                right += 1;
            }
            // Do not observe: we are probing the acquisition only.
        }
        assert!(
            right >= 6,
            "only {right}/10 suggestions near the good region"
        );
    }

    #[test]
    fn ei_is_zero_when_certain_and_worse() {
        let p = Posterior {
            mean: 1.0,
            std_dev: 0.0,
        };
        assert_eq!(BayesOpt::ei(p, 2.0, 0.1), 0.0);
    }
}
