//! Simulation-clock-driven metrics for the ByteScheduler reproduction.
//!
//! The tracing layer ([`bs_sim::Trace`]) answers *what happened when*;
//! this crate answers *how much of it there was*: credit in use, queued
//! bytes, per-port utilisation, stall time. Three primitives cover every
//! instrumented quantity in the workspace:
//!
//! * [`Counter`] — a monotonically increasing event count (preemptions,
//!   transfers, bursts).
//! * [`Gauge`] — a point-in-time scalar with no history (peaks, finals).
//! * [`TimeSeries`] — a piecewise-constant function of [`SimTime`]: each
//!   `(instant, value)` sample holds until the next one. All derived
//!   summaries (time-weighted mean, time-weighted percentiles, integral)
//!   follow from that step-function reading, so a series sampled only on
//!   change is *exact*, not an approximation.
//!
//! Named metrics aggregate into a [`MetricSet`], the unit of export: it
//! renders to a `metrics.json` tree (via [`serde::Serialize`]), to
//! Perfetto counter tracks ([`MetricSet::counter_tracks`]) appended to a
//! Chrome trace, and to the `simctl metrics` summary table.
//!
//! Everything here is recording-only: nothing feeds back into the
//! simulation, so enabling telemetry cannot change event order or any
//! simulated result — only emit more output. The overhead contract is
//! enforced one layer up: instrumented components hold
//! `Option<...Telemetry>` fields that are `None` unless a run asks for
//! metrics, so the disabled path costs one branch per touch point.

use bs_sim::{CounterTrack, SimTime};
use serde::{Serialize, Value};

/// A monotonically increasing event count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.value
    }
}

/// A point-in-time scalar with no history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&mut self, v: f64) {
        self.value = v;
    }

    /// Adds to the value.
    pub fn add(&mut self, d: f64) {
        self.value += d;
    }

    /// Keeps the maximum of the current and given value.
    pub fn max_with(&mut self, v: f64) {
        if v > self.value {
            self.value = v;
        }
    }

    /// Current value.
    pub fn get(self) -> f64 {
        self.value
    }
}

/// A piecewise-constant function of simulation time.
///
/// Samples are `(instant, value)` pairs in non-decreasing time order;
/// each value holds until the next sample. Record only on change — the
/// step-function semantics make the derived statistics exact regardless
/// of sampling density.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Records `value` from `at` onwards. A second record at the same
    /// instant overwrites (the series is a function of time); a record
    /// equal to the current value is dropped (the step function is
    /// unchanged). Time must not go backwards — asserted in debug
    /// builds, clamped to the last instant in release builds.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(last) = self.samples.last_mut() {
            debug_assert!(at >= last.0, "time series sampled in the past");
            let at = at.max(last.0);
            if last.1 == value {
                return;
            }
            if last.0 == at {
                last.1 = value;
                // Collapse with the sample before, if this overwrite
                // restored its value.
                let n = self.samples.len();
                if n >= 2 && self.samples[n - 2].1 == value {
                    self.samples.pop();
                }
                return;
            }
        }
        self.samples.push((at, value));
    }

    /// Adjusts the current value by `delta` from `at` onwards (an empty
    /// series is treated as holding 0).
    pub fn step(&mut self, at: SimTime, delta: f64) {
        self.record(at, self.last_value() + delta);
    }

    /// The current (last recorded) value; 0 for an empty series.
    pub fn last_value(&self) -> f64 {
        self.samples.last().map_or(0.0, |&(_, v)| v)
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// `(duration, value)` segments of the step function on
    /// `[first sample, until)`.
    fn segments(&self, until: SimTime) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let n = self.samples.len();
        self.samples
            .iter()
            .enumerate()
            .filter_map(move |(i, &(t0, v))| {
                let t1 = if i + 1 < n {
                    self.samples[i + 1].0
                } else {
                    until
                };
                let t1 = t1.min(until);
                (t1 > t0).then(|| (t1.saturating_sub(t0), v))
            })
    }

    /// `∫ value dt` over `[first sample, until)`, in value·seconds.
    pub fn integral_secs(&self, until: SimTime) -> f64 {
        self.segments(until)
            .map(|(dt, v)| v * dt.as_secs_f64())
            .sum()
    }

    /// Time-weighted mean over `[first sample, until)`; 0 if the window
    /// is empty.
    pub fn time_weighted_mean(&self, until: SimTime) -> f64 {
        let (mut area, mut dur) = (0.0, 0.0);
        for (dt, v) in self.segments(until) {
            area += v * dt.as_secs_f64();
            dur += dt.as_secs_f64();
        }
        if dur > 0.0 {
            area / dur
        } else {
            0.0
        }
    }

    /// Time-weighted quantile `q ∈ [0, 1]` over `[first sample, until)`:
    /// the smallest value `x` such that the series is ≤ `x` for at least
    /// a fraction `q` of the window. Degenerate windows yield the last
    /// value.
    pub fn quantile(&self, q: f64, until: SimTime) -> f64 {
        let mut segs: Vec<(SimTime, f64)> = self.segments(until).collect();
        if segs.is_empty() {
            return self.last_value();
        }
        segs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let total: f64 = segs.iter().map(|(dt, _)| dt.as_secs_f64()).sum();
        if total <= 0.0 {
            return self.last_value();
        }
        let target = q.clamp(0.0, 1.0) * total;
        let mut acc = 0.0;
        for &(dt, v) in &segs {
            acc += dt.as_secs_f64();
            if acc >= target {
                return v;
            }
        }
        segs.last().expect("non-empty").1
    }

    /// Maximum recorded value; 0 for an empty series.
    pub fn max_value(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// All derived summaries over `[first sample, until)`.
    pub fn summary(&self, until: SimTime) -> SeriesSummary {
        SeriesSummary {
            mean: self.time_weighted_mean(until),
            p50: self.quantile(0.50, until),
            p95: self.quantile(0.95, until),
            max: self.max_value(),
            integral_secs: self.integral_secs(until),
            samples: self.samples.len(),
        }
    }
}

/// A piecewise-constant *set-valued* function of simulation time: each
/// sample is a bitmask (e.g. "which jobs are active on this NIC
/// direction right now"), holding until the next sample. Same recording
/// discipline as [`TimeSeries`] — record only on change, same-instant
/// records overwrite — so segment walks are exact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SetSeries {
    samples: Vec<(SimTime, u64)>,
}

impl SetSeries {
    /// An empty series.
    pub fn new() -> SetSeries {
        SetSeries::default()
    }

    /// Records `mask` from `at` onwards, with the same overwrite /
    /// dedup / collapse semantics as [`TimeSeries::record`].
    pub fn record(&mut self, at: SimTime, mask: u64) {
        if let Some(last) = self.samples.last_mut() {
            debug_assert!(at >= last.0, "set series sampled in the past");
            let at = at.max(last.0);
            if last.1 == mask {
                return;
            }
            if last.0 == at {
                last.1 = mask;
                let n = self.samples.len();
                if n >= 2 && self.samples[n - 2].1 == mask {
                    self.samples.pop();
                }
                return;
            }
        }
        self.samples.push((at, mask));
    }

    /// The current (last recorded) mask; empty for an empty series.
    pub fn last_mask(&self) -> u64 {
        self.samples.last().map_or(0, |&(_, m)| m)
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[(SimTime, u64)] {
        &self.samples
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// `(start, end, mask)` segments of the step function on
    /// `[first sample, until)`. Zero-duration segments are skipped.
    pub fn segments(&self, until: SimTime) -> impl Iterator<Item = (SimTime, SimTime, u64)> + '_ {
        let n = self.samples.len();
        self.samples
            .iter()
            .enumerate()
            .filter_map(move |(i, &(t0, m))| {
                let t1 = if i + 1 < n {
                    self.samples[i + 1].0
                } else {
                    until
                };
                let t1 = t1.min(until);
                (t1 > t0).then_some((t0, t1, m))
            })
    }
}

/// Derived summaries of one [`TimeSeries`].
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct SeriesSummary {
    /// Time-weighted mean.
    pub mean: f64,
    /// Time-weighted median.
    pub p50: f64,
    /// Time-weighted 95th percentile.
    pub p95: f64,
    /// Maximum recorded value.
    pub max: f64,
    /// `∫ value dt` in value·seconds.
    pub integral_secs: f64,
    /// Number of change points recorded.
    pub samples: usize,
}

/// One named metric inside a [`MetricSet`].
#[derive(Clone, Debug)]
pub enum Metric {
    /// A monotonic event count.
    Counter(u64),
    /// A point-in-time scalar.
    Gauge(f64),
    /// A quantity over time.
    Series(TimeSeries),
}

/// An insertion-ordered registry of named metrics — the unit of export.
///
/// Component telemetry structs flush into one `MetricSet` per run (with
/// a per-component name prefix); the set then renders to `metrics.json`,
/// Perfetto counter tracks, and the human summary table.
#[derive(Clone, Debug, Default)]
pub struct MetricSet {
    entries: Vec<(String, Metric)>,
    /// End of the observation window; series summaries integrate up to
    /// this instant.
    pub horizon: SimTime,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Registers a counter value.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.entries.push((name.into(), Metric::Counter(value)));
    }

    /// Registers a gauge value.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.entries.push((name.into(), Metric::Gauge(value)));
    }

    /// Registers a time series.
    pub fn series(&mut self, name: impl Into<String>, ts: TimeSeries) {
        self.entries.push((name.into(), Metric::Series(ts)));
    }

    /// Absorbs another set, prefixing every entry name (`prefix` +
    /// entry name) and keeping the later horizon.
    pub fn absorb(&mut self, prefix: &str, other: MetricSet) {
        for (name, m) in other.entries {
            self.entries.push((format!("{prefix}{name}"), m));
        }
        self.horizon = self.horizon.max(other.horizon);
    }

    /// Entries in registration order.
    pub fn entries(&self) -> &[(String, Metric)] {
        &self.entries
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a counter by exact name.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, m)| match m {
            Metric::Counter(v) if n == name => Some(*v),
            _ => None,
        })
    }

    /// Looks up a gauge by exact name.
    pub fn get_gauge(&self, name: &str) -> Option<f64> {
        self.entries.iter().find_map(|(n, m)| match m {
            Metric::Gauge(v) if n == name => Some(*v),
            _ => None,
        })
    }

    /// Looks up a series by exact name.
    pub fn get_series(&self, name: &str) -> Option<&TimeSeries> {
        self.entries.iter().find_map(|(n, m)| match m {
            Metric::Series(ts) if n == name => Some(ts),
            _ => None,
        })
    }

    /// Every series as a Perfetto counter track, in registration order.
    /// Series with no samples are skipped (an empty counter track is
    /// render noise).
    pub fn counter_tracks(&self) -> Vec<CounterTrack> {
        self.entries
            .iter()
            .filter_map(|(name, m)| match m {
                Metric::Series(ts) if !ts.is_empty() => Some(CounterTrack {
                    name: name.clone(),
                    samples: ts.samples().to_vec(),
                }),
                _ => None,
            })
            .collect()
    }
}

impl Serialize for MetricSet {
    fn to_value(&self) -> Value {
        let metrics = self
            .entries
            .iter()
            .map(|(name, m)| {
                let body = match m {
                    Metric::Counter(v) => Value::Object(vec![
                        ("kind".into(), Value::Str("counter".into())),
                        ("value".into(), Value::U64(*v)),
                    ]),
                    Metric::Gauge(v) => Value::Object(vec![
                        ("kind".into(), Value::Str("gauge".into())),
                        ("value".into(), Value::F64(*v)),
                    ]),
                    Metric::Series(ts) => {
                        let s = ts.summary(self.horizon);
                        Value::Object(vec![
                            ("kind".into(), Value::Str("series".into())),
                            ("mean".into(), Value::F64(s.mean)),
                            ("p50".into(), Value::F64(s.p50)),
                            ("p95".into(), Value::F64(s.p95)),
                            ("max".into(), Value::F64(s.max)),
                            ("integral_secs".into(), Value::F64(s.integral_secs)),
                            ("samples".into(), Value::U64(s.samples as u64)),
                        ])
                    }
                };
                (name.clone(), body)
            })
            .collect();
        Value::Object(vec![
            ("schema_version".into(), Value::U64(1)),
            (
                "horizon_us".into(),
                Value::F64(self.horizon.as_micros_f64()),
            ),
            ("metrics".into(), Value::Object(metrics)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    /// The recording discipline (drop equal-value pushes, overwrite
    /// same-instant pushes, collapse back-to-previous overwrites) makes
    /// redundant pushes exact no-ops: a noisy stream stores the same
    /// samples as its minimal form, so every derived summary — and
    /// every golden metrics file downstream — is byte-identical. This
    /// pins the coalescing rules against regression.
    #[test]
    fn coalesced_series_summaries_match_the_raw_stream_exactly() {
        // A push stream with every coalescable shape: equal-value
        // repeats, a same-instant overwrite chain, and an overwrite
        // that restores the previous value.
        let noisy_pushes: &[(u64, f64)] = &[
            (0, 1.0),
            (10, 1.0), // equal value: dropped
            (20, 0.0),
            (20, 0.5), // same instant: overwritten
            (20, 0.0), // same instant again: the 0.5 never existed
            (30, 0.0), // equal value: dropped
            (40, 2.0),
            (50, 2.0), // equal value: dropped
            (60, 1.0),
        ];
        let clean_pushes: &[(u64, f64)] = &[(0, 1.0), (20, 0.0), (40, 2.0), (60, 1.0)];
        let (mut noisy, mut clean) = (TimeSeries::new(), TimeSeries::new());
        for &(t, v) in noisy_pushes {
            noisy.record(us(t), v);
        }
        for &(t, v) in clean_pushes {
            clean.record(us(t), v);
        }
        assert_eq!(noisy, clean, "redundant pushes must be exact no-ops");
        assert_eq!(noisy.len(), 4, "1.0 | 0.0 | 2.0 | 1.0");
        assert!(noisy.len() < noisy_pushes.len(), "coalescing compresses");
        let until = us(100);
        assert_eq!(
            format!("{:?}", noisy.summary(until)),
            format!("{:?}", clean.summary(until)),
            "summaries (Debug floats round-trip) must be byte-identical"
        );
        // And the step function itself is the intended one: ∫ =
        // 1.0·20µs + 0.0·20µs + 2.0·20µs + 1.0·40µs = 100 µs·s/s.
        assert!((noisy.integral_secs(until) - 100e-6).abs() < 1e-15);
        assert_eq!(noisy.last_value(), 1.0);

        // SetSeries: identical discipline, including the collapse of an
        // overwrite that restores the previous mask.
        let (mut noisy_set, mut clean_set) = (SetSeries::new(), SetSeries::new());
        for &(t, m) in &[
            (0u64, 0b01u64),
            (10, 0b01),
            (20, 0b11),
            (20, 0b01),
            (30, 0b10),
        ] {
            noisy_set.record(us(t), m);
        }
        for &(t, m) in &[(0u64, 0b01u64), (30, 0b10)] {
            clean_set.record(us(t), m);
        }
        assert_eq!(noisy_set, clean_set);
        assert_eq!(noisy_set.samples(), &[(us(0), 0b01), (us(30), 0b10)]);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.0);
        g.add(0.5);
        g.max_with(1.0);
        assert_eq!(g.get(), 2.5);
        g.max_with(9.0);
        assert_eq!(g.get(), 9.0);
    }

    #[test]
    fn series_dedups_unchanged_and_overwrites_same_instant() {
        let mut ts = TimeSeries::new();
        ts.record(us(0), 1.0);
        ts.record(us(5), 1.0); // unchanged → dropped
        ts.record(us(10), 3.0);
        ts.record(us(10), 4.0); // same instant → overwrite
        assert_eq!(ts.samples(), &[(us(0), 1.0), (us(10), 4.0)]);
        // Overwrite back to the previous value collapses the sample.
        ts.record(us(10), 1.0);
        assert_eq!(ts.samples(), &[(us(0), 1.0)]);
    }

    #[test]
    fn step_tracks_running_value() {
        let mut ts = TimeSeries::new();
        ts.step(us(1), 2.0);
        ts.step(us(3), 3.0);
        ts.step(us(7), -5.0);
        assert_eq!(ts.last_value(), 0.0);
        assert_eq!(ts.samples(), &[(us(1), 2.0), (us(3), 5.0), (us(7), 0.0)]);
    }

    /// Hand-computed fixture: value 2 on [0, 10)µs, 6 on [10, 30)µs,
    /// 0 on [30, 40)µs.
    fn fixture() -> TimeSeries {
        let mut ts = TimeSeries::new();
        ts.record(us(0), 2.0);
        ts.record(us(10), 6.0);
        ts.record(us(30), 0.0);
        ts
    }

    #[test]
    fn time_weighted_mean_matches_hand_computation() {
        let ts = fixture();
        // (2·10 + 6·20 + 0·10) / 40 = 140/40 = 3.5
        assert!((ts.time_weighted_mean(us(40)) - 3.5).abs() < 1e-12);
        // Truncated window [0, 20): (2·10 + 6·10)/20 = 4.0
        assert!((ts.time_weighted_mean(us(20)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn integral_matches_hand_computation() {
        let ts = fixture();
        // 2·10µs + 6·20µs = 140 value·µs = 1.4e-4 value·s
        assert!((ts.integral_secs(us(40)) - 1.4e-4).abs() < 1e-16);
    }

    #[test]
    fn quantiles_match_hand_computation() {
        let ts = fixture();
        // Durations: value 0 → 10µs (25%), value 2 → 10µs (50%),
        // value 6 → 20µs (100%).
        assert_eq!(ts.quantile(0.10, us(40)), 0.0);
        assert_eq!(ts.quantile(0.25, us(40)), 0.0);
        assert_eq!(ts.quantile(0.50, us(40)), 2.0);
        assert_eq!(ts.quantile(0.95, us(40)), 6.0);
        assert_eq!(ts.quantile(1.0, us(40)), 6.0);
        assert_eq!(ts.max_value(), 6.0);
    }

    #[test]
    fn degenerate_windows_are_safe() {
        let ts = TimeSeries::new();
        assert_eq!(ts.time_weighted_mean(us(10)), 0.0);
        assert_eq!(ts.integral_secs(us(10)), 0.0);
        assert_eq!(ts.quantile(0.5, us(10)), 0.0);

        let mut one = TimeSeries::new();
        one.record(us(5), 7.0);
        // Window ends at (or before) the only sample: no duration.
        assert_eq!(one.time_weighted_mean(us(5)), 0.0);
        assert_eq!(one.quantile(0.5, us(5)), 7.0);
        assert_eq!(one.integral_secs(us(3)), 0.0);
    }

    #[test]
    fn summary_is_consistent() {
        let s = fixture().summary(us(40));
        assert!((s.mean - 3.5).abs() < 1e-12);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 6.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn set_series_segments_match_hand_computation() {
        let mut s = SetSeries::new();
        s.record(us(0), 0b01);
        s.record(us(5), 0b01); // unchanged → dropped
        s.record(us(10), 0b11);
        s.record(us(10), 0b10); // same instant → overwrite
        s.record(us(30), 0);
        assert_eq!(s.last_mask(), 0);
        let segs: Vec<_> = s.segments(us(40)).collect();
        assert_eq!(
            segs,
            vec![
                (us(0), us(10), 0b01),
                (us(10), us(30), 0b10),
                (us(30), us(40), 0),
            ]
        );
        // Truncated window drops the tail segment entirely.
        let segs: Vec<_> = s.segments(us(30)).collect();
        assert_eq!(segs.len(), 2);
        // Overwrite back to the previous mask collapses the sample.
        let mut t = SetSeries::new();
        t.record(us(0), 1);
        t.record(us(10), 3);
        t.record(us(10), 1);
        assert_eq!(t.samples(), &[(us(0), 1)]);
    }

    #[test]
    fn metric_set_exports_counter_tracks_and_json() {
        let mut set = MetricSet::new();
        set.counter("preemptions", 3);
        set.gauge("peak_in_flight", 12.0);
        set.series("credit_in_use", fixture());
        set.series("empty", TimeSeries::new());
        set.horizon = us(40);

        let tracks = set.counter_tracks();
        assert_eq!(tracks.len(), 1); // empty series skipped
        assert_eq!(tracks[0].name, "credit_in_use");
        assert_eq!(tracks[0].samples.len(), 3);

        let v = set.to_value();
        let json = serde_json::to_string_pretty(&v).expect("render");
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"preemptions\""));
        let metrics = v.get("metrics").expect("metrics object");
        let credit = metrics.get("credit_in_use").expect("series entry");
        assert_eq!(credit.get("kind"), Some(&Value::Str("series".into())));
    }

    #[test]
    fn absorb_prefixes_and_merges_horizon() {
        let mut a = MetricSet::new();
        a.counter("x", 1);
        a.horizon = us(10);
        let mut b = MetricSet::new();
        b.counter("x", 2);
        b.horizon = us(20);
        a.absorb("job0/", b);
        assert_eq!(a.get_counter("x"), Some(1));
        assert_eq!(a.get_counter("job0/x"), Some(2));
        assert_eq!(a.horizon, us(20));
    }
}
