//! The what-if query service: a long-running, batched request/response
//! engine over trace replay.
//!
//! One [`ReplayService`] owns a normalized trace plus base
//! [`ReplayOptions`]; clients ask "what if the cluster had bandwidth X /
//! placement Y / scheduler Z / N simulation threads?" as
//! [`WhatIfQuery`]s. Queries arrive in batches, and the service answers
//! a batch in three steps:
//!
//! 1. **Fingerprint & dedup.** Each query overlays the base options and
//!    the effective [`ReplayOptions`] is serialized to its canonical JSON
//!    — that string *is* the config fingerprint. Duplicate fingerprints
//!    inside a batch collapse to one execution.
//! 2. **Cache.** Fingerprints seen before answer straight from an LRU
//!    result cache (capacity [`ReplayService::new`]'s `cache_capacity`,
//!    hit counter exposed in [`ServiceStats`]). A cached answer is the
//!    *same* `ReplayReport` the cold run produced — replay is
//!    deterministic, so caching is semantically invisible.
//! 3. **Execute.** The remaining unique misses fan out across the
//!    process-wide persistent [`bs_sim::WorkerPool`] — the same threads
//!    the harness's sweep `parallel_map` uses — one full
//!    [`replay_trace`] per miss.
//!
//! The service is deliberately synchronous per batch (submit → answers),
//! which is all the harness and benchmark need; a daemon wrapping it in a
//! socket loop would add transport, not semantics.

use bs_cluster::PlacementPolicy;
use bs_runtime::SchedulerKind;
use bs_scope::{ScopeBus, ScopeEvent};
use bs_sim::{SimTime, WorkerPool};
use serde::Serialize;

use crate::replay::{replay_trace, ReplayOptions, ReplayReport};
use crate::trace::TraceJob;

/// One "what if the cluster were configured like this?" request. Every
/// field is an overlay on the service's base [`ReplayOptions`]; `None`
/// keeps the base value.
#[derive(Clone, Debug, Default, Serialize)]
pub struct WhatIfQuery {
    /// NIC bandwidth, Gbps.
    pub bandwidth_gbps: Option<f64>,
    /// Placement policy.
    pub placement: Option<PlacementPolicy>,
    /// Scheduler (and with it the ByteScheduler partition/credit knobs —
    /// the credit-config axis of a what-if sweep).
    pub scheduler: Option<SchedulerKind>,
    /// Simulation threads for the conservative-parallel cluster core.
    pub threads: Option<usize>,
    /// Replay only the first `n` arrivals.
    pub truncate: Option<usize>,
}

impl WhatIfQuery {
    /// The effective options this query resolves to over `base`.
    pub fn resolve(&self, base: &ReplayOptions) -> ReplayOptions {
        let mut o = base.clone();
        if let Some(b) = self.bandwidth_gbps {
            o.bandwidth_gbps = b;
        }
        if let Some(p) = self.placement {
            o.placement = p;
        }
        if let Some(s) = self.scheduler {
            o.scheduler = s;
        }
        if let Some(t) = self.threads {
            o.threads = t;
        }
        if let Some(n) = self.truncate {
            o.truncate = Some(n);
        }
        o
    }
}

/// How a batch answer was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum AnswerSource {
    /// Executed fresh in this batch.
    Computed,
    /// Served from the LRU cache (a previous batch computed it).
    Cache,
    /// Collapsed onto another query in the *same* batch with an
    /// identical fingerprint.
    BatchDedup,
}

/// One query's answer.
#[derive(Clone, Debug, Serialize)]
pub struct WhatIfAnswer {
    /// The effective-config fingerprint (canonical options JSON).
    pub fingerprint: String,
    /// Where the report came from.
    pub source: AnswerSource,
    /// The full replay outcome.
    pub report: ReplayReport,
}

/// Service counters, cumulative across batches.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct ServiceStats {
    /// Queries answered.
    pub queries: u64,
    /// Answers served from the LRU cache.
    pub cache_hits: u64,
    /// Answers collapsed onto an identical query in the same batch.
    pub batch_dedup: u64,
    /// Replays actually executed.
    pub executed: u64,
    /// Cache entries evicted by LRU pressure.
    pub evictions: u64,
}

/// A batched, cached what-if engine over one trace.
pub struct ReplayService {
    jobs: Vec<TraceJob>,
    base: ReplayOptions,
    /// LRU cache: most-recently-used at the back. Linear scans are fine —
    /// capacities are tens of entries guarding multi-second replays.
    cache: Vec<(String, ReplayReport)>,
    capacity: usize,
    stats: ServiceStats,
    /// Observed batches answered so far (numbers `whatif_batch` events).
    batches: u64,
}

impl ReplayService {
    /// A service over `jobs` with `base` defaults and an LRU of
    /// `cache_capacity` reports (minimum 1).
    pub fn new(jobs: Vec<TraceJob>, base: ReplayOptions, cache_capacity: usize) -> ReplayService {
        assert!(!jobs.is_empty(), "service needs a non-empty trace");
        ReplayService {
            jobs,
            base,
            cache: Vec::new(),
            capacity: cache_capacity.max(1),
            stats: ServiceStats::default(),
            batches: 0,
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// The canonical fingerprint of a query against this service's base.
    pub fn fingerprint(&self, q: &WhatIfQuery) -> String {
        serde_json::to_string(&q.resolve(&self.base)).expect("options serialize")
    }

    fn cache_get(&mut self, fp: &str) -> Option<ReplayReport> {
        let idx = self.cache.iter().position(|(k, _)| k == fp)?;
        // Touch: move to the MRU end.
        let entry = self.cache.remove(idx);
        let report = entry.1.clone();
        self.cache.push(entry);
        Some(report)
    }

    fn cache_put(&mut self, fp: String, report: ReplayReport) {
        if let Some(idx) = self.cache.iter().position(|(k, _)| *k == fp) {
            self.cache.remove(idx);
        } else if self.cache.len() == self.capacity {
            self.cache.remove(0);
            self.stats.evictions += 1;
        }
        self.cache.push((fp, report));
    }

    /// Answers a batch of queries, in input order. Unique cache misses
    /// execute concurrently on the shared persistent worker pool.
    pub fn submit_batch(&mut self, queries: &[WhatIfQuery]) -> Vec<WhatIfAnswer> {
        self.stats.queries += queries.len() as u64;

        // Classify each query: cache hit, batch duplicate, or miss.
        let fps: Vec<String> = queries.iter().map(|q| self.fingerprint(q)).collect();
        let mut misses: Vec<(String, ReplayOptions)> = Vec::new();
        let mut sources: Vec<AnswerSource> = Vec::with_capacity(queries.len());
        let mut cached: Vec<Option<ReplayReport>> = Vec::with_capacity(queries.len());
        for (q, fp) in queries.iter().zip(&fps) {
            if let Some(report) = self.cache_get(fp) {
                self.stats.cache_hits += 1;
                sources.push(AnswerSource::Cache);
                cached.push(Some(report));
            } else if misses.iter().any(|(k, _)| k == fp) {
                self.stats.batch_dedup += 1;
                sources.push(AnswerSource::BatchDedup);
                cached.push(None);
            } else {
                misses.push((fp.clone(), q.resolve(&self.base)));
                sources.push(AnswerSource::Computed);
                cached.push(None);
            }
        }

        // Execute the unique misses on the shared pool.
        self.stats.executed += misses.len() as u64;
        let mut slots: Vec<Option<ReplayReport>> = (0..misses.len()).map(|_| None).collect();
        {
            let jobs = &self.jobs;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .zip(&misses)
                .map(|(slot, (_, opts))| {
                    let t: Box<dyn FnOnce() + Send + '_> =
                        Box::new(move || *slot = Some(replay_trace(jobs, opts)));
                    t
                })
                .collect();
            WorkerPool::shared().run_scoped(tasks);
        }
        let fresh: Vec<(String, ReplayReport)> = misses
            .into_iter()
            .zip(slots)
            .map(|((fp, _), r)| (fp, r.expect("pool ran every task")))
            .collect();
        for (fp, report) in &fresh {
            self.cache_put(fp.clone(), report.clone());
        }

        // Assemble answers in input order.
        fps.into_iter()
            .zip(sources)
            .zip(cached)
            .map(|((fp, source), pre)| {
                let report = match pre {
                    Some(r) => r,
                    None => fresh
                        .iter()
                        .find(|(k, _)| *k == fp)
                        .expect("miss was executed")
                        .1
                        .clone(),
                };
                WhatIfAnswer {
                    fingerprint: fp,
                    source,
                    report,
                }
            })
            .collect()
    }

    /// [`Self::submit_batch`] with an optional scope bus: each batch
    /// publishes one `whatif_batch` event summarising how its answers
    /// were produced (computed / cache hit / in-batch dedup). The
    /// service has no simulated clock, so batch events carry `t = 0`
    /// and are ordered by their batch number.
    pub fn submit_batch_observed(
        &mut self,
        queries: &[WhatIfQuery],
        scope: Option<&mut ScopeBus>,
    ) -> Vec<WhatIfAnswer> {
        let before = self.stats;
        let answers = self.submit_batch(queries);
        self.batches += 1;
        if let Some(bus) = scope {
            bus.publish(ScopeEvent::WhatIfBatch {
                batch: self.batches,
                at: SimTime::ZERO,
                queries: queries.len(),
                computed: (self.stats.executed - before.executed) as usize,
                cache_hits: (self.stats.cache_hits - before.cache_hits) as usize,
                batch_dedup: (self.stats.batch_dedup - before.batch_dedup) as usize,
            });
        }
        answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ModelClass;

    fn trace(n: usize) -> Vec<TraceJob> {
        (0..n)
            .map(|i| TraceJob {
                name: format!("svc-{i}"),
                submit_secs: 10.0 * i as f64,
                gpus: 4,
                duration_secs: 900.0,
                class: ModelClass::Alexnet,
                iters: 3,
            })
            .collect()
    }

    fn opts() -> ReplayOptions {
        ReplayOptions {
            iters_cap: 3,
            wave: 4,
            ..ReplayOptions::default()
        }
    }

    #[test]
    fn repeat_query_hits_cache_with_identical_result() {
        let mut svc = ReplayService::new(trace(2), opts(), 4);
        let q = WhatIfQuery::default();
        let cold = svc.submit_batch(std::slice::from_ref(&q));
        assert_eq!(cold[0].source, AnswerSource::Computed);
        let warm = svc.submit_batch(std::slice::from_ref(&q));
        assert_eq!(warm[0].source, AnswerSource::Cache);
        assert_eq!(svc.stats().cache_hits, 1);
        assert_eq!(svc.stats().executed, 1);
        // The cached answer is byte-identical to the cold one.
        assert_eq!(
            serde_json::to_string(&cold[0].report).expect("serializes"),
            serde_json::to_string(&warm[0].report).expect("serializes"),
        );
    }

    #[test]
    fn batch_dedup_collapses_identical_queries() {
        let mut svc = ReplayService::new(trace(2), opts(), 4);
        let q = WhatIfQuery::default();
        let distinct = WhatIfQuery {
            bandwidth_gbps: Some(10.0),
            ..WhatIfQuery::default()
        };
        let answers = svc.submit_batch(&[q.clone(), distinct, q]);
        assert_eq!(answers[0].source, AnswerSource::Computed);
        assert_eq!(answers[1].source, AnswerSource::Computed);
        assert_eq!(answers[2].source, AnswerSource::BatchDedup);
        assert_eq!(svc.stats().executed, 2);
        assert_eq!(
            serde_json::to_string(&answers[0].report).expect("serializes"),
            serde_json::to_string(&answers[2].report).expect("serializes"),
        );
        // Different bandwidth must fingerprint differently.
        assert_ne!(answers[0].fingerprint, answers[1].fingerprint);
    }

    #[test]
    fn lru_evicts_oldest_and_recapped_queries_recompute() {
        let mut svc = ReplayService::new(trace(1), opts(), 1);
        let a = WhatIfQuery::default();
        let b = WhatIfQuery {
            bandwidth_gbps: Some(10.0),
            ..WhatIfQuery::default()
        };
        svc.submit_batch(std::slice::from_ref(&a));
        svc.submit_batch(std::slice::from_ref(&b)); // evicts a
        assert_eq!(svc.stats().evictions, 1);
        let again = svc.submit_batch(std::slice::from_ref(&a));
        assert_eq!(again[0].source, AnswerSource::Computed);
    }
}
