//! Wave-scheduled trace replay through the shared-fabric cluster
//! simulator.
//!
//! The cluster driver multiplexes at most [`MAX_JOBS`] tenants per run
//! (the tag namespace reserves 5 job-id bits), so a thousand-job trace
//! cannot ride one `run_cluster` call. The replay layer instead admits
//! jobs FCFS in **waves**: arrival-sorted batches of at most
//! [`ReplayOptions::wave`] jobs, each wave simulated as one cluster run
//! whose epoch is `max(previous wave's absolute finish, first arrival in
//! the wave)`. A job arriving mid-wave keeps its stagger (its in-run
//! arrival offset is `arrival − epoch`); a job arriving before its wave's
//! epoch queues, and that admission wait is reported separately:
//!
//! * **queueing delay** = `admitted − arrival` — time spent waiting for
//!   the fabric (earlier waves draining);
//! * **run time** = `finish − admitted` — time on the fabric, contending
//!   with the rest of its wave;
//! * **JCT** = queueing + run.
//!
//! This is deliberately the strictest FCFS batch discipline: no
//! backfilling, no wave overlap. It makes the replay deterministic (the
//! wave partition depends only on arrival order) and the queueing/run
//! split exact, at the cost of under-utilising the fabric between waves —
//! DESIGN.md §14 discusses the trade-off.

use bs_cluster::{
    run_cluster, run_cluster_observed, ClusterConfig, ClusterResult, DistSummary, JobSpec,
    PlacementPolicy,
};
use bs_engine::EngineConfig;
use bs_faults::FaultPlan;
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::job::MAX_JOBS;
use bs_runtime::{Arch, SchedulerKind, WorldConfig};
use bs_scope::{ScopeBus, ScopeEvent};
use bs_sim::SimTime;
use serde::Serialize;

use crate::trace::TraceJob;

/// Everything that parameterises one replay — also the identity the
/// what-if service fingerprints queries by.
#[derive(Clone, Debug, Serialize)]
pub struct ReplayOptions {
    /// NIC bandwidth of every cluster machine, Gbps.
    pub bandwidth_gbps: f64,
    /// Machines in the cluster (each an 8-GPU box with one duplex NIC).
    pub machines: usize,
    /// Jobs admitted per wave, clamped to `[1, MAX_JOBS]`.
    pub wave: usize,
    /// Trace-seconds → simulated-seconds compression. Public traces
    /// span weeks; at `1e-3` a day of arrivals lands in ~86 simulated
    /// seconds, enough for waves to actually contend.
    pub arrival_scale: f64,
    /// Upper bound on per-job simulated iterations (the lower bound is
    /// the simulator's warmup+2 floor).
    pub iters_cap: u64,
    /// Base RNG seed; job `i` jitters under `seed ^ i·φ` (golden-ratio
    /// stream splitting), so one knob reproduces the whole replay.
    pub seed: u64,
    /// Communication scheduler every replayed job runs.
    pub scheduler: SchedulerKind,
    /// How job-local nodes map onto machines.
    pub placement: PlacementPolicy,
    /// Simulation threads for the conservative-parallel cluster core
    /// (1 = sequential; results are bit-identical at any count).
    pub threads: usize,
    /// Replay only the first `n` jobs of the trace (arrival order), for
    /// smoke tests and truncated benchmarks. `None` replays everything.
    pub truncate: Option<usize>,
    /// Cluster-scope fault plan applied to **every wave**: each wave is
    /// one independent cluster run, so the plan's machine indices name
    /// the replay cluster's machines and its times are wave-relative
    /// (a failure at 150 ms recurs 150 ms into each wave). Machine
    /// failures trigger the driver's checkpoint/migrate/resume reaction;
    /// jobs with no healthy placement wait for the plan's scheduled
    /// restore.
    pub faults: Option<FaultPlan>,
}

impl Default for ReplayOptions {
    fn default() -> ReplayOptions {
        ReplayOptions {
            bandwidth_gbps: 25.0,
            machines: 8,
            wave: 8,
            arrival_scale: 1e-3,
            iters_cap: 8,
            seed: 1,
            scheduler: SchedulerKind::ByteScheduler {
                partition: 4_000_000,
                credit: 16_000_000,
            },
            placement: PlacementPolicy::RoundRobinSpread,
            threads: 1,
            truncate: None,
            faults: None,
        }
    }
}

/// One job's replay outcome. All times are simulated seconds on the
/// compressed axis.
#[derive(Clone, Debug, Serialize)]
pub struct ReplayedJob {
    /// Trace job id.
    pub name: String,
    /// Model class label the job normalized onto.
    pub class: &'static str,
    /// Trace GPU demand.
    pub gpus: u64,
    /// PS worker machines the job simulated with.
    pub workers: usize,
    /// Simulated iterations run.
    pub iters: u64,
    /// Wave index the job was admitted in.
    pub wave: usize,
    /// Compressed arrival.
    pub arrival_secs: f64,
    /// When the job's compute actually started: `max(arrival, epoch)`.
    pub admitted_secs: f64,
    /// `admitted − arrival`.
    pub queueing_secs: f64,
    /// `finish − admitted`.
    pub run_secs: f64,
    /// `queueing + run`.
    pub jct_secs: f64,
}

/// The outcome of replaying a whole trace.
#[derive(Clone, Debug, Serialize)]
pub struct ReplayReport {
    /// Per-job outcomes, in admission (arrival) order.
    pub jobs: Vec<ReplayedJob>,
    /// Waves the trace was admitted in.
    pub waves: usize,
    /// Absolute finish of the last wave, simulated seconds.
    pub makespan_secs: f64,
    /// Full JCT distribution (seconds).
    pub jct: DistSummary,
    /// Queueing-delay distribution (seconds).
    pub queueing: DistSummary,
    /// Run-time distribution (seconds).
    pub run: DistSummary,
    /// Total shared-fabric deliveries across all waves — the
    /// events/sec numerator for the replay benchmark.
    pub fabric_events: u64,
}

/// PS worker machines for a trace job: one per 8 GPUs, clamped so
/// workers + co-located shards fit the smallest supported cluster.
pub fn workers_for(gpus: u64) -> usize {
    (gpus.div_ceil(8) as usize).clamp(1, 4)
}

/// Builds the [`WorldConfig`] a trace job replays as: its class's model
/// on a sharded synchronous PS (the paper's layout), MXNet engine, RDMA
/// transport, fluid fabric, jitter seeded per job.
pub fn job_config(job: &TraceJob, idx: usize, opts: &ReplayOptions) -> WorldConfig {
    let workers = workers_for(job.gpus);
    let mut cfg = WorldConfig::new(
        job.class.model(),
        workers,
        Arch::ps(workers),
        NetConfig::gbps(opts.bandwidth_gbps, Transport::rdma()),
        EngineConfig::mxnet_ps(),
        opts.scheduler,
    );
    cfg.fabric = FabricModel::FairShare;
    cfg.iters = job.iters.clamp(3, opts.iters_cap.max(3));
    cfg.warmup = 1;
    cfg.jitter = 0.01;
    // Golden-ratio stream splitting: one base seed fans out to
    // decorrelated per-job streams, and the whole replay reproduces from
    // `opts.seed` alone.
    cfg.seed = opts.seed ^ (idx as u64).wrapping_mul(0x9E3779B97F4A7C15);
    cfg
}

/// One wave's full cluster outcome, kept only by the recording replay
/// variant ([`replay_trace_recorded`]): the per-wave telemetry
/// (`result.metrics`) and link-contention matrix (`result.contention`)
/// that the aggregate [`ReplayReport`] deliberately flattens away.
#[derive(Clone, Debug)]
pub struct ReplayWave {
    /// Wave index (0-based, admission order).
    pub wave: usize,
    /// Absolute start of the wave's cluster run, simulated seconds.
    pub epoch_secs: f64,
    /// The wave's cluster run, with whatever recorders were enabled.
    pub result: ClusterResult,
}

/// Replays a normalized trace under the given options. Deterministic:
/// the same trace and options serialize to byte-identical reports.
pub fn replay_trace(jobs: &[TraceJob], opts: &ReplayOptions) -> ReplayReport {
    replay_trace_recorded(jobs, opts, false, false).0
}

/// [`replay_trace`] with per-wave recorders: when `record_metrics` /
/// `record_contention` is set, each wave's cluster run records fabric
/// telemetry / the link-contention matrix and the full per-wave
/// [`ClusterResult`]s are returned alongside the aggregate report.
/// Recording is observation-only — the report is byte-identical to the
/// unrecorded [`replay_trace`] either way.
pub fn replay_trace_recorded(
    jobs: &[TraceJob],
    opts: &ReplayOptions,
    record_metrics: bool,
    record_contention: bool,
) -> (ReplayReport, Vec<ReplayWave>) {
    replay_trace_observed(jobs, opts, record_metrics, record_contention, None)
}

/// [`replay_trace_recorded`] with an optional scope observation bus.
///
/// Each wave publishes a `wave_admitted` event at its epoch, runs its
/// cluster under the bus with the bus offset set to the epoch — so every
/// in-wave event lands on the replay's absolute compressed-time axis —
/// and closes with a `wave_done` carrying the wave's JCT summary. The
/// bus is finished (rollups flushed) at the replay's makespan.
pub fn replay_trace_observed(
    jobs: &[TraceJob],
    opts: &ReplayOptions,
    record_metrics: bool,
    record_contention: bool,
    mut scope: Option<&mut ScopeBus>,
) -> (ReplayReport, Vec<ReplayWave>) {
    assert!(!jobs.is_empty(), "cannot replay an empty trace");
    let wave_size = opts.wave.clamp(1, MAX_JOBS);

    // Admission order: arrival, then trace position for ties.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .submit_secs
            .partial_cmp(&jobs[b].submit_secs)
            .expect("finite arrivals")
            .then(a.cmp(&b))
    });
    if let Some(n) = opts.truncate {
        order.truncate(n.max(1));
    }

    let cluster = {
        let mut c = ClusterConfig::new(
            opts.machines,
            NetConfig::gbps(opts.bandwidth_gbps, Transport::rdma()),
        );
        c.fabric = FabricModel::FairShare;
        c.placement = opts.placement;
        c.threads = opts.threads;
        c.record_metrics = record_metrics;
        c.record_contention = record_contention;
        c.faults = opts.faults.clone();
        c
    };
    let keep_waves = record_metrics || record_contention;

    let mut out: Vec<ReplayedJob> = Vec::with_capacity(order.len());
    let mut wave_results: Vec<ReplayWave> = Vec::new();
    let mut fabric_events = 0u64;
    let mut clock = 0.0f64; // absolute finish of the previous wave
    let mut waves = 0usize;
    for batch in order.chunks(wave_size) {
        let first_arrival = jobs[batch[0]].submit_secs * opts.arrival_scale;
        let epoch = clock.max(first_arrival);
        let specs: Vec<JobSpec> = batch
            .iter()
            .map(|&i| {
                let arrival = jobs[i].submit_secs * opts.arrival_scale;
                JobSpec::train_at(
                    jobs[i].name.clone(),
                    job_config(&jobs[i], i, opts),
                    SimTime::from_secs_f64((arrival - epoch).max(0.0)),
                )
            })
            .collect();
        let r = match scope.as_deref_mut() {
            Some(bus) => {
                // Every event the wave publishes shifts onto the replay's
                // absolute compressed-time axis.
                bus.set_offset(SimTime::from_secs_f64(epoch));
                bus.publish(ScopeEvent::WaveAdmitted {
                    wave: waves,
                    at: SimTime::ZERO,
                    jobs: batch.len(),
                });
                let r = run_cluster_observed(&cluster, &specs, Some(bus));
                let jcts: Vec<f64> = r.jobs.iter().map(|o| o.jct.as_secs_f64()).collect();
                bus.publish(ScopeEvent::WaveDone {
                    wave: waves,
                    at: r.makespan,
                    jobs: r.jobs.len(),
                    jct_mean_secs: jcts.iter().sum::<f64>() / jcts.len() as f64,
                    jct_max_secs: jcts.iter().cloned().fold(0.0, f64::max),
                });
                r
            }
            None => run_cluster(&cluster, &specs),
        };
        fabric_events += r.fabric_events;
        for (&i, outcome) in batch.iter().zip(&r.jobs) {
            let arrival = jobs[i].submit_secs * opts.arrival_scale;
            let admitted = epoch + outcome.arrival.as_secs_f64();
            let finish = epoch + outcome.finished_at.as_secs_f64();
            out.push(ReplayedJob {
                name: outcome.name.clone(),
                class: jobs[i].class.label(),
                gpus: jobs[i].gpus,
                workers: workers_for(jobs[i].gpus),
                iters: jobs[i].iters.clamp(3, opts.iters_cap.max(3)),
                wave: waves,
                arrival_secs: arrival,
                admitted_secs: admitted,
                queueing_secs: admitted - arrival,
                run_secs: finish - admitted,
                jct_secs: finish - arrival,
            });
        }
        clock = epoch + r.makespan.as_secs_f64();
        if keep_waves {
            wave_results.push(ReplayWave {
                wave: waves,
                epoch_secs: epoch,
                result: r,
            });
        }
        waves += 1;
    }
    if let Some(bus) = scope {
        bus.set_offset(SimTime::ZERO);
        bus.finish(SimTime::from_secs_f64(clock));
    }

    let report = ReplayReport {
        jct: DistSummary::from_unsorted(out.iter().map(|j| j.jct_secs).collect()),
        queueing: DistSummary::from_unsorted(out.iter().map(|j| j.queueing_secs).collect()),
        run: DistSummary::from_unsorted(out.iter().map(|j| j.run_secs).collect()),
        makespan_secs: clock,
        jobs: out,
        waves,
        fabric_events,
    };
    (report, wave_results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ModelClass;

    fn tiny_trace(n: usize) -> Vec<TraceJob> {
        (0..n)
            .map(|i| TraceJob {
                name: format!("job-{i}"),
                submit_secs: 40.0 * i as f64,
                gpus: 8,
                duration_secs: 1200.0,
                class: ModelClass::Alexnet,
                iters: 3,
            })
            .collect()
    }

    #[test]
    fn jct_decomposes_into_queueing_plus_run() {
        let report = replay_trace(
            &tiny_trace(3),
            &ReplayOptions {
                wave: 2,
                iters_cap: 3,
                ..ReplayOptions::default()
            },
        );
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.waves, 2);
        for j in &report.jobs {
            assert!(
                (j.jct_secs - (j.queueing_secs + j.run_secs)).abs() < 1e-9,
                "{j:?}"
            );
            assert!(j.queueing_secs >= 0.0 && j.run_secs > 0.0, "{j:?}");
            assert!(j.admitted_secs >= j.arrival_secs);
        }
        // The second wave's job queues behind the first wave iff the
        // fabric was still busy at its arrival; either way admission
        // respects FCFS: admitted times are non-decreasing.
        let admitted: Vec<f64> = report.jobs.iter().map(|j| j.admitted_secs).collect();
        assert!(admitted.windows(2).all(|w| w[0] <= w[1]), "{admitted:?}");
        assert!(report.makespan_secs > 0.0);
        assert!(report.fabric_events > 0);
    }

    #[test]
    fn wave_size_one_serialises_the_cluster() {
        let report = replay_trace(
            &tiny_trace(2),
            &ReplayOptions {
                wave: 1,
                iters_cap: 3,
                ..ReplayOptions::default()
            },
        );
        assert_eq!(report.waves, 2);
        // With one job per wave there is no intra-wave contention; the
        // second job cannot start before the first finishes or its own
        // arrival, whichever is later.
        let (a, b) = (&report.jobs[0], &report.jobs[1]);
        let first_finish = a.admitted_secs + a.run_secs;
        assert!(b.admitted_secs >= first_finish.min(b.arrival_secs) - 1e-9);
    }

    #[test]
    fn recorded_waves_carry_metrics_and_contention_without_changing_report() {
        let trace = tiny_trace(3);
        let opts = ReplayOptions {
            wave: 2,
            iters_cap: 3,
            ..ReplayOptions::default()
        };
        let plain = serde_json::to_string(&replay_trace(&trace, &opts)).expect("serializes");
        let (report, waves) = replay_trace_recorded(&trace, &opts, true, true);
        // Recording is observation-only: the aggregate report is
        // byte-identical to the unrecorded replay.
        assert_eq!(serde_json::to_string(&report).expect("serializes"), plain);
        assert_eq!(waves.len(), report.waves);
        for (i, w) in waves.iter().enumerate() {
            assert_eq!(w.wave, i);
            assert!(w.result.metrics.is_some(), "wave {i} metrics");
            let m = w.result.contention.as_ref().expect("wave contention");
            assert!(!m.links.is_empty(), "wave {i} saw fabric traffic");
        }
        // Unrecorded replay keeps no per-wave results at all.
        assert!(replay_trace_recorded(&trace, &opts, false, false)
            .1
            .is_empty());
    }

    #[test]
    fn per_wave_cluster_faults_apply_deterministically() {
        use bs_faults::MachineFailure;
        let trace = tiny_trace(3);
        let mut opts = ReplayOptions {
            wave: 2,
            iters_cap: 3,
            ..ReplayOptions::default()
        };
        let clean = serde_json::to_string(&replay_trace(&trace, &opts)).expect("serializes");
        opts.faults = Some(FaultPlan {
            machine_failures: vec![MachineFailure {
                machine: 1,
                at_us: 20_000,
                restore_us: Some(2_000_000),
            }],
            ..FaultPlan::empty()
        });
        let a = serde_json::to_string(&replay_trace(&trace, &opts)).expect("serializes");
        let b = serde_json::to_string(&replay_trace(&trace, &opts)).expect("serializes");
        assert_eq!(a, b, "faulted replay must stay byte-deterministic");
        assert_ne!(
            a, clean,
            "the recurring machine failure must perturb the replay"
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = tiny_trace(3);
        let opts = ReplayOptions {
            iters_cap: 3,
            ..ReplayOptions::default()
        };
        let a = serde_json::to_string(&replay_trace(&trace, &opts)).expect("serializes");
        let b = serde_json::to_string(&replay_trace(&trace, &opts)).expect("serializes");
        assert_eq!(a, b);
    }
}
