//! Cluster-trace replay and the batched what-if query service.
//!
//! The cluster simulator (`bs-cluster`) answers "how do N concurrent
//! jobs share one fabric?" for hand-built job mixes. This crate scales
//! that question to *production-shaped* workloads and turns it into a
//! query engine, in two layers:
//!
//! * **Trace ingestion** ([`trace`]) — loaders for two public job-trace
//!   dialects (Philly-style JSON, Alibaba-PAI-style CSV), validated
//!   against committed schemas by the shared draft-07-subset validator
//!   ([`schema`]) and normalized into one [`TraceJob`] stream: arrival
//!   time, GPU demand, a model class mapped onto the `crates/models` zoo,
//!   and an iteration count derived from recorded duration.
//! * **Replay** ([`replay`]) — feeds that stream through
//!   [`bs_cluster::run_cluster`] as FCFS waves of staggered arrivals
//!   (the driver's tag namespace caps tenants per run), reporting full
//!   JCT distributions — p50/p95/p99/max via nearest-rank percentiles —
//!   split into queueing delay and run time. Byte-deterministic: one
//!   seed reproduces the whole replay.
//! * **What-if service** ([`service`]) — a long-running batched
//!   request/response engine: concurrent [`WhatIfQuery`]s (bandwidth,
//!   placement, scheduler/credit config, thread count) are fingerprinted
//!   by canonical config JSON, deduplicated within a batch, answered
//!   from an LRU result cache on repeat, and executed on the persistent
//!   process-wide [`bs_sim::WorkerPool`] on miss.
//!
//! DESIGN.md §14 documents the trace schemas, normalization rules, the
//! wave admission model, and the service's batching/caching semantics.

pub mod replay;
pub mod schema;
pub mod service;
pub mod trace;

pub use replay::{
    replay_trace, replay_trace_observed, replay_trace_recorded, ReplayOptions, ReplayReport,
    ReplayWave, ReplayedJob,
};
pub use service::{AnswerSource, ReplayService, ServiceStats, WhatIfAnswer, WhatIfQuery};
pub use trace::{load_trace, ModelClass, TraceFormat, TraceJob};
