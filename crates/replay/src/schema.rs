//! A minimal JSON-Schema (draft-07 subset) validator.
//!
//! Grown from the test-suite's export-contract validator
//! (`tests/common/schema.rs` now delegates here) because trace ingestion
//! needs the same machinery at *runtime*: every trace a replay loads is
//! validated against its committed schema before normalization, so a
//! malformed trace fails with a row-level message instead of a panic
//! deep inside the simulator. It implements exactly the subset the
//! committed schemas use: `type`, `enum`, `required`, `properties`,
//! `additionalProperties`, `items`, `oneOf`, `minimum`,
//! `exclusiveMinimum`, `exclusiveMaximum`.

use serde_json::Value;

fn obj(v: &Value) -> Option<&[(String, Value)]> {
    match v {
        Value::Object(entries) => Some(entries),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::I64(n) => Some(n as f64),
        Value::U64(n) => Some(n as f64),
        Value::F64(n) => Some(n),
        _ => None,
    }
}

fn type_matches(ty: &str, v: &Value) -> bool {
    match ty {
        "object" => matches!(v, Value::Object(_)),
        "array" => matches!(v, Value::Array(_)),
        "string" => matches!(v, Value::Str(_)),
        "boolean" => matches!(v, Value::Bool(_)),
        "null" => matches!(v, Value::Null),
        "integer" => matches!(v, Value::I64(_) | Value::U64(_)),
        "number" => matches!(v, Value::I64(_) | Value::U64(_) | Value::F64(_)),
        other => panic!("schema uses unsupported type {other:?}"),
    }
}

/// Literal equality for `enum`, with numbers compared numerically so
/// `1`, `1.0`, and an i64/u64 split all agree.
fn value_eq(a: &Value, b: &Value) -> bool {
    match (as_f64(a), as_f64(b)) {
        (Some(x), Some(y)) => x == y,
        _ => match (a, b) {
            (Value::Str(x), Value::Str(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Null, Value::Null) => true,
            _ => false,
        },
    }
}

/// Validates `v` against `schema`, appending one message per violation
/// to `errs` with `path` as the JSON-pointer-ish location prefix.
pub fn validate(schema: &Value, v: &Value, path: &str, errs: &mut Vec<String>) {
    if let Some(Value::Array(options)) = schema.get("enum") {
        if !options.iter().any(|o| value_eq(o, v)) {
            errs.push(format!("{path}: {v:?} not in enum {options:?}"));
            return;
        }
    }
    if let Some(Value::Str(ty)) = schema.get("type") {
        if !type_matches(ty, v) {
            errs.push(format!("{path}: expected {ty}, got {v:?}"));
            return;
        }
    }
    if let Some(min) = schema.get("minimum").and_then(as_f64) {
        if let Some(x) = as_f64(v) {
            if x < min {
                errs.push(format!("{path}: {x} below minimum {min}"));
            }
        }
    }
    if let Some(min) = schema.get("exclusiveMinimum").and_then(as_f64) {
        if let Some(x) = as_f64(v) {
            if x <= min {
                errs.push(format!("{path}: {x} not above exclusiveMinimum {min}"));
            }
        }
    }
    if let Some(max) = schema.get("exclusiveMaximum").and_then(as_f64) {
        if let Some(x) = as_f64(v) {
            if x >= max {
                errs.push(format!("{path}: {x} not below exclusiveMaximum {max}"));
            }
        }
    }
    if let Some(Value::Array(options)) = schema.get("oneOf") {
        let matching = options
            .iter()
            .filter(|opt| {
                let mut sub = Vec::new();
                validate(opt, v, path, &mut sub);
                sub.is_empty()
            })
            .count();
        if matching != 1 {
            errs.push(format!(
                "{path}: matched {matching} of {} oneOf branches (need exactly 1)",
                options.len()
            ));
        }
    }
    if let Some(item_schema) = schema.get("items") {
        if let Value::Array(items) = v {
            for (i, item) in items.iter().enumerate() {
                validate(item_schema, item, &format!("{path}[{i}]"), errs);
            }
        }
    }

    let Some(entries) = obj(v) else { return };
    if let Some(Value::Array(required)) = schema.get("required") {
        for name in required {
            if let Value::Str(name) = name {
                if !entries.iter().any(|(k, _)| k == name) {
                    errs.push(format!("{path}: missing required property {name:?}"));
                }
            }
        }
    }
    let props = schema.get("properties").and_then(obj).unwrap_or(&[]);
    let additional = schema.get("additionalProperties");
    for (key, val) in entries {
        match props.iter().find(|(name, _)| name == key) {
            Some((_, sub)) => validate(sub, val, &format!("{path}/{key}"), errs),
            None => match additional {
                Some(Value::Bool(false)) => {
                    errs.push(format!("{path}: unexpected property {key:?}"));
                }
                Some(sub) if sub.is_object() => validate(sub, val, &format!("{path}/{key}"), errs),
                _ => {}
            },
        }
    }
}

/// Validates and collects: `Ok(())` on conformance, every violation
/// message otherwise.
pub fn check(schema: &Value, v: &Value) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    validate(schema, v, "$", &mut errs);
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::from_str(s).expect("test JSON parses")
    }

    #[test]
    fn accepts_conforming_and_rejects_violations() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["n", "tag"],
                "properties": {
                    "n": {"type": "integer", "minimum": 1},
                    "tag": {"type": "string", "enum": ["a", "b"]}
                },
                "additionalProperties": false
            }"#,
        );
        assert!(check(&schema, &parse(r#"{"n": 3, "tag": "a"}"#)).is_ok());
        let errs = check(&schema, &parse(r#"{"n": 0, "tag": "c", "x": 1}"#)).unwrap_err();
        assert_eq!(errs.len(), 3, "{errs:?}");
    }
}
