//! Trace ingestion: Philly-style JSON and Alibaba-PAI-style CSV job
//! traces, schema-validated and normalized into one [`TraceJob`] stream.
//!
//! Public cluster logs come in two shapes the loader understands:
//!
//! * **Philly-style JSON** — one document with a `jobs` array; each row
//!   carries `jobid`, `vc`, `submitted_time` (seconds), `gpus`
//!   (whole GPUs), `duration` (seconds) and a terminal `status`.
//! * **PAI-style CSV** — one row per job with header
//!   `job_name,submit_time,end_time,plan_gpu,status`; `plan_gpu` is in
//!   the PAI convention of centi-GPUs (100 = one GPU).
//!
//! Both are validated against their committed schemas
//! (`results/trace_philly.schema.json`, `results/trace_pai.schema.json`,
//! embedded at compile time) by the shared draft-07-subset validator in
//! [`crate::schema`] before a single row is normalized, so malformed
//! traces fail with a row-level message, never a panic mid-replay.
//!
//! # Normalization rules (DESIGN.md §14)
//!
//! Neither trace names the model a job trained, and both use wall-clock
//! spans far longer than a simulated iteration. Normalization is
//! therefore explicit and deterministic:
//!
//! * **Arrival** — `submitted_time` (PAI: `submit_time`), shifted so the
//!   earliest job in the trace arrives at 0. The replay layer compresses
//!   this axis by its `arrival_scale` when building the simulation.
//! * **GPU demand** — Philly `gpus` directly; PAI `round(plan_gpu/100)`,
//!   floored at one GPU.
//! * **Model class** — bucketed by GPU demand (≥16 GPUs draw from the
//!   large-model pool, ≥8 from the mid pool, the rest from the small
//!   pool), then picked inside the bucket by an FNV-1a hash of the job
//!   name. Same trace, same classes — byte-stable across runs.
//! * **Iterations** — one simulated iteration per 10 trace-minutes of
//!   recorded duration, clamped to `[3, cap]` (the floor is the
//!   simulator's warmup+2 minimum; the cap is a replay option). The
//!   heavy-tailed duration mix survives as a heavy-tailed iteration mix.

use bs_models::DnnModel;
use serde::Serialize;
use serde_json::Value;

use crate::schema;

/// The committed Philly-style trace schema.
pub const PHILLY_SCHEMA: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/trace_philly.schema.json"
));
/// The committed PAI-style trace schema (one CSV row, parsed).
pub const PAI_SCHEMA: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/trace_pai.schema.json"
));

/// Which trace dialect a text is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TraceFormat {
    /// Philly-style JSON document.
    PhillyJson,
    /// PAI-style CSV table.
    PaiCsv,
}

impl TraceFormat {
    /// Guesses the dialect from a filename (`.json` → Philly, `.csv` →
    /// PAI), falling back to content sniffing: a JSON document starts
    /// with `{`.
    pub fn detect(path: &str, text: &str) -> TraceFormat {
        if path.ends_with(".json") {
            TraceFormat::PhillyJson
        } else if path.ends_with(".csv") {
            TraceFormat::PaiCsv
        } else if text.trim_start().starts_with('{') {
            TraceFormat::PhillyJson
        } else {
            TraceFormat::PaiCsv
        }
    }
}

/// The model classes a trace job can normalize onto — the
/// `crates/models` zoo, bucketed by typical size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ModelClass {
    /// Small CNN (61 M params).
    Alexnet,
    /// Mid CNN, compute-heavy (26 M params).
    Resnet50,
    /// Mid CNN (24 M params).
    InceptionV3,
    /// Large CNN, comm-heavy (138 M params).
    Vgg16,
    /// Large sequence model (213 M params).
    Transformer,
    /// Large sequence model (110 M params).
    BertBase,
}

impl ModelClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ModelClass::Alexnet => "alexnet",
            ModelClass::Resnet50 => "resnet50",
            ModelClass::InceptionV3 => "inception_v3",
            ModelClass::Vgg16 => "vgg16",
            ModelClass::Transformer => "transformer",
            ModelClass::BertBase => "bert_base",
        }
    }

    /// Parses a label (the serialized form).
    pub fn from_label(s: &str) -> Option<ModelClass> {
        Some(match s {
            "alexnet" => ModelClass::Alexnet,
            "resnet50" => ModelClass::Resnet50,
            "inception_v3" => ModelClass::InceptionV3,
            "vgg16" => ModelClass::Vgg16,
            "transformer" => ModelClass::Transformer,
            "bert_base" => ModelClass::BertBase,
            _ => return None,
        })
    }

    /// The zoo model this class maps onto.
    pub fn model(self) -> DnnModel {
        match self {
            ModelClass::Alexnet => bs_models::zoo::alexnet(),
            ModelClass::Resnet50 => bs_models::zoo::resnet50(),
            ModelClass::InceptionV3 => bs_models::zoo::inception_v3(),
            ModelClass::Vgg16 => bs_models::zoo::vgg16(),
            ModelClass::Transformer => bs_models::zoo::transformer(),
            ModelClass::BertBase => bs_models::zoo::bert_base(),
        }
    }

    /// The deterministic demand→class mapping described in the module
    /// docs: bucket by GPU count, pick within the bucket by name hash.
    pub fn assign(name: &str, gpus: u64) -> ModelClass {
        let h = fnv1a(name.as_bytes());
        if gpus >= 16 {
            [
                ModelClass::Transformer,
                ModelClass::BertBase,
                ModelClass::Vgg16,
            ][(h % 3) as usize]
        } else if gpus >= 8 {
            [
                ModelClass::Vgg16,
                ModelClass::Resnet50,
                ModelClass::InceptionV3,
            ][(h % 3) as usize]
        } else {
            [
                ModelClass::Alexnet,
                ModelClass::Resnet50,
                ModelClass::InceptionV3,
            ][(h % 3) as usize]
        }
    }
}

/// FNV-1a, the classic byte-stable string hash — no RandomState, so the
/// class assignment is identical across processes and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One normalized trace job: the common stream both dialects reduce to,
/// and the unit the replay layer schedules.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TraceJob {
    /// Job identifier from the trace.
    pub name: String,
    /// Arrival in trace seconds, shifted so the trace's earliest job
    /// arrives at 0 (uncompressed; the replay applies `arrival_scale`).
    pub submit_secs: f64,
    /// Whole-GPU demand after normalization (≥ 1).
    pub gpus: u64,
    /// Recorded wall duration in trace seconds.
    pub duration_secs: f64,
    /// Assigned model class (serialized as its label).
    pub class: ModelClass,
    /// Simulated iterations the duration maps onto (before the replay
    /// cap).
    pub iters: u64,
}

impl TraceJob {
    /// Rebuilds a job from its serialized form — the round-trip
    /// direction the ingestion tests pin.
    pub fn from_value(v: &Value) -> Result<TraceJob, String> {
        let name = match v.get("name") {
            Some(Value::Str(s)) => s.clone(),
            other => return Err(format!("job name: expected string, got {other:?}")),
        };
        let class = match v.get("class") {
            Some(Value::Str(s)) => ModelClass::from_label(s)
                .ok_or_else(|| format!("{name}: unknown model class {s:?}"))?,
            other => return Err(format!("{name}: class: expected string, got {other:?}")),
        };
        Ok(TraceJob {
            submit_secs: req_f64(v, "submit_secs", &name)?,
            gpus: req_u64(v, "gpus", &name)?,
            duration_secs: req_f64(v, "duration_secs", &name)?,
            iters: req_u64(v, "iters", &name)?,
            name,
            class,
        })
    }
}

// `ModelClass` serializes as its label so the round trip is readable.
impl ModelClass {
    fn to_value(self) -> Value {
        Value::Str(self.label().to_string())
    }
}

/// Serializes jobs to the normalized-form JSON array used by the
/// round-trip tests and artefact dumps.
pub fn jobs_to_value(jobs: &[TraceJob]) -> Value {
    Value::Array(
        jobs.iter()
            .map(|j| {
                Value::Object(vec![
                    ("name".into(), Value::Str(j.name.clone())),
                    ("submit_secs".into(), Value::F64(j.submit_secs)),
                    ("gpus".into(), Value::U64(j.gpus)),
                    ("duration_secs".into(), Value::F64(j.duration_secs)),
                    ("class".into(), j.class.to_value()),
                    ("iters".into(), Value::U64(j.iters)),
                ])
            })
            .collect(),
    )
}

/// Parses the normalized-form array back into jobs.
pub fn jobs_from_value(v: &Value) -> Result<Vec<TraceJob>, String> {
    let Value::Array(items) = v else {
        return Err(format!("normalized trace: expected array, got {v:?}"));
    };
    items.iter().map(TraceJob::from_value).collect()
}

/// Loads and normalizes a trace text in the given dialect. The result is
/// in trace order; arrivals are shifted so the earliest is 0.
pub fn load_trace(text: &str, format: TraceFormat) -> Result<Vec<TraceJob>, String> {
    let mut jobs = match format {
        TraceFormat::PhillyJson => load_philly(text)?,
        TraceFormat::PaiCsv => load_pai(text)?,
    };
    if jobs.is_empty() {
        return Err("trace contains no jobs".to_string());
    }
    let t0 = jobs
        .iter()
        .map(|j| j.submit_secs)
        .fold(f64::INFINITY, f64::min);
    for j in &mut jobs {
        j.submit_secs -= t0;
    }
    Ok(jobs)
}

/// Simulated iterations for a recorded duration: one per 10
/// trace-minutes, floored at the simulator's warmup+2 minimum. The
/// replay layer applies its own upper cap.
fn iters_for_duration(duration_secs: f64) -> u64 {
    ((duration_secs / 600.0).round() as u64).max(3)
}

fn load_philly(text: &str) -> Result<Vec<TraceJob>, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("philly trace: {e}"))?;
    let schema: Value = serde_json::from_str(PHILLY_SCHEMA).expect("committed schema parses");
    schema::check(&schema, &doc)
        .map_err(|errs| format!("philly trace: schema violations: {}", errs.join("; ")))?;
    let Some(Value::Array(rows)) = doc.get("jobs") else {
        return Err("philly trace: missing jobs array".to_string());
    };
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let ctx = format!("jobs[{i}]");
            let name = match row.get("jobid") {
                Some(Value::Str(s)) => s.clone(),
                other => return Err(format!("{ctx}: jobid: expected string, got {other:?}")),
            };
            let gpus = req_u64(row, "gpus", &ctx)?;
            let duration_secs = req_f64(row, "duration", &ctx)?;
            Ok(TraceJob {
                submit_secs: req_f64(row, "submitted_time", &ctx)?,
                class: ModelClass::assign(&name, gpus),
                iters: iters_for_duration(duration_secs),
                gpus,
                duration_secs,
                name,
            })
        })
        .collect()
}

/// The exact header a PAI-style CSV must carry, in order.
pub const PAI_HEADER: &str = "job_name,submit_time,end_time,plan_gpu,status";

fn load_pai(text: &str) -> Result<Vec<TraceJob>, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err("pai trace: empty file".to_string());
    };
    if header.trim() != PAI_HEADER {
        return Err(format!(
            "pai trace: header {:?} != expected {PAI_HEADER:?}",
            header.trim()
        ));
    }
    let schema: Value = serde_json::from_str(PAI_SCHEMA).expect("committed schema parses");
    let mut jobs = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let row = lineno + 1; // 1-based, matching editors.
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 5 {
            return Err(format!(
                "pai trace row {row}: expected 5 columns, got {}",
                cols.len()
            ));
        }
        let num = |i: usize, field: &str| -> Result<f64, String> {
            cols[i]
                .trim()
                .parse::<f64>()
                .map_err(|_| format!("pai trace row {row}: {field} {:?} is not a number", cols[i]))
        };
        // Parse the row into a JSON object and run it through the
        // committed row schema, so CSV and JSON dialects share one
        // validation story.
        let parsed = Value::Object(vec![
            ("job_name".into(), Value::Str(cols[0].trim().to_string())),
            ("submit_time".into(), Value::F64(num(1, "submit_time")?)),
            ("end_time".into(), Value::F64(num(2, "end_time")?)),
            ("plan_gpu".into(), Value::F64(num(3, "plan_gpu")?)),
            ("status".into(), Value::Str(cols[4].trim().to_string())),
        ]);
        schema::check(&schema, &parsed)
            .map_err(|errs| format!("pai trace row {row}: {}", errs.join("; ")))?;
        let submit = num(1, "submit_time")?;
        let end = num(2, "end_time")?;
        if end <= submit {
            return Err(format!(
                "pai trace row {row}: end_time {end} not after submit_time {submit}"
            ));
        }
        let plan_gpu = num(3, "plan_gpu")?;
        // PAI convention: plan_gpu 100 == one whole GPU.
        let gpus = ((plan_gpu / 100.0).round() as u64).max(1);
        let name = cols[0].trim().to_string();
        jobs.push(TraceJob {
            submit_secs: submit,
            duration_secs: end - submit,
            class: ModelClass::assign(&name, gpus),
            iters: iters_for_duration(end - submit),
            gpus,
            name,
        });
    }
    Ok(jobs)
}

fn req_f64(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::F64(x)) => Ok(*x),
        Some(Value::I64(n)) => Ok(*n as f64),
        Some(Value::U64(n)) => Ok(*n as f64),
        other => Err(format!("{ctx}: {key}: expected number, got {other:?}")),
    }
}

fn req_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Value::U64(n)) => Ok(*n),
        Some(Value::I64(n)) if *n >= 0 => Ok(*n as u64),
        other => Err(format!(
            "{ctx}: {key}: expected non-negative integer, got {other:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_assignment_is_deterministic_and_bucketed() {
        let a = ModelClass::assign("job-123", 32);
        assert_eq!(a, ModelClass::assign("job-123", 32));
        // Large bucket never yields the small-pool models.
        for name in ["a", "b", "c", "d", "e", "f"] {
            let c = ModelClass::assign(name, 16);
            assert!(
                matches!(
                    c,
                    ModelClass::Transformer | ModelClass::BertBase | ModelClass::Vgg16
                ),
                "{name}: {c:?}"
            );
            let c = ModelClass::assign(name, 1);
            assert!(
                matches!(
                    c,
                    ModelClass::Alexnet | ModelClass::Resnet50 | ModelClass::InceptionV3
                ),
                "{name}: {c:?}"
            );
        }
    }

    #[test]
    fn iteration_mapping_floors_at_three() {
        assert_eq!(iters_for_duration(1.0), 3);
        assert_eq!(iters_for_duration(600.0), 3);
        assert_eq!(iters_for_duration(6000.0), 10);
    }

    #[test]
    fn format_detection() {
        assert_eq!(TraceFormat::detect("x.json", ""), TraceFormat::PhillyJson);
        assert_eq!(TraceFormat::detect("x.csv", ""), TraceFormat::PaiCsv);
        assert_eq!(
            TraceFormat::detect("x", "  {\"jobs\": []}"),
            TraceFormat::PhillyJson
        );
        assert_eq!(TraceFormat::detect("x", "a,b\n"), TraceFormat::PaiCsv);
    }

    #[test]
    fn pai_rejects_bad_header_and_bad_rows() {
        assert!(load_trace("nope\n", TraceFormat::PaiCsv)
            .unwrap_err()
            .contains("header"));
        let bad_cols = format!("{PAI_HEADER}\nj1,0.0,10.0,100\n");
        assert!(load_trace(&bad_cols, TraceFormat::PaiCsv)
            .unwrap_err()
            .contains("5 columns"));
        let bad_num = format!("{PAI_HEADER}\nj1,zero,10.0,100,Terminated\n");
        assert!(load_trace(&bad_num, TraceFormat::PaiCsv)
            .unwrap_err()
            .contains("not a number"));
        let bad_span = format!("{PAI_HEADER}\nj1,10.0,10.0,100,Terminated\n");
        assert!(load_trace(&bad_span, TraceFormat::PaiCsv)
            .unwrap_err()
            .contains("not after"));
        let bad_status = format!("{PAI_HEADER}\nj1,0.0,10.0,100,Sleeping\n");
        assert!(load_trace(&bad_status, TraceFormat::PaiCsv)
            .unwrap_err()
            .contains("enum"));
    }

    #[test]
    fn arrivals_shift_to_zero() {
        let text =
            format!("{PAI_HEADER}\nj1,100.0,700.0,100,Terminated\nj2,40.0,640.0,200,Terminated\n");
        let jobs = load_trace(&text, TraceFormat::PaiCsv).expect("loads");
        assert_eq!(jobs[0].submit_secs, 60.0);
        assert_eq!(jobs[1].submit_secs, 0.0);
        assert_eq!(jobs[1].gpus, 2);
    }
}
