//! Plugin state: the glue between engines, schedulers and comm backends.
//!
//! The paper's plugins (§3.2, §5) wrap framework operations into CommTasks
//! and translate completions back. Here the same bookkeeping is split into
//! two state machines the world driver consults:
//!
//! * [`PsPluginState`] — per-(worker, tensor) push/pull progress. Pull
//!   transfers are issued per *partition* as aggregation grants arrive
//!   (each partition is its own PS key, so its pull depends only on its
//!   own push — Theorem 1 condition 3); the layer's engine dependency is
//!   released when the last partition lands.
//! * [`ArPluginState`] — global all-reduce coordination: a tensor's
//!   collective may start only when **all** workers reported it ready
//!   (the master-Core rule of §5 that avoids deadlock), plus
//!   Horovod-style tensor fusion for the baseline.

use std::collections::{HashMap, VecDeque};

/// Per-(worker, tensor) PS communication progress.
#[derive(Clone, Debug, Default)]
struct TensorComm {
    iter: u64,
    parts: u32,
    push_done: u32,
    pull_done: u32,
    /// Aggregation grants received (baseline tensor-granularity gating).
    granted: u32,
    active: bool,
}

/// PS-side plugin bookkeeping for all workers.
#[derive(Debug)]
pub struct PsPluginState {
    tensors: Vec<Vec<TensorComm>>,
}

impl PsPluginState {
    /// Creates state for `num_workers` workers × `num_tensors` tensors.
    pub fn new(num_workers: usize, num_tensors: usize) -> Self {
        PsPluginState {
            tensors: vec![vec![TensorComm::default(); num_tensors]; num_workers],
        }
    }

    /// Worker `w`'s gradient for `tensor` (iteration `iter`, `parts`
    /// partitions) is ready to push. Panics if the previous iteration's
    /// communication for this tensor has not drained — that would violate
    /// the per-layer gating invariant.
    pub fn on_grad_ready(&mut self, w: usize, tensor: usize, iter: u64, parts: u32) {
        let t = &mut self.tensors[w][tensor];
        assert!(
            !t.active,
            "worker {w} tensor {tensor}: iteration {iter} gradient ready while iteration {} comm still active",
            t.iter
        );
        *t = TensorComm {
            iter,
            parts,
            push_done: 0,
            pull_done: 0,
            granted: 0,
            active: true,
        };
    }

    /// One aggregation grant arrived for (`w`, `tensor`). Returns true
    /// when every partition of the tensor has been granted — the moment a
    /// *baseline* engine's key-level pull dependency clears (§2.2:
    /// "without partitioning, the pull flow of a large tensor can start
    /// only after the push flow of the whole tensor is done").
    /// ByteScheduler pulls per partition instead and never calls this.
    pub fn on_grant_part(&mut self, w: usize, tensor: usize, iter: u64) -> bool {
        let t = &mut self.tensors[w][tensor];
        debug_assert!(t.active && t.iter == iter, "grant out of phase");
        t.granted += 1;
        debug_assert!(t.granted <= t.parts);
        t.granted == t.parts
    }

    /// One push partition of (`w`, `tensor`) completed. Returns true when
    /// the whole tensor has been pushed.
    pub fn on_push_part_done(&mut self, w: usize, tensor: usize, iter: u64) -> bool {
        let t = &mut self.tensors[w][tensor];
        debug_assert!(t.active && t.iter == iter, "push completion out of phase");
        t.push_done += 1;
        debug_assert!(t.push_done <= t.parts);
        t.push_done == t.parts
    }

    /// One pull partition of (`w`, `tensor`) completed. Returns true when
    /// the whole tensor has been pulled — the layer's dependency releases.
    pub fn on_pull_part_done(&mut self, w: usize, tensor: usize, iter: u64) -> bool {
        let t = &mut self.tensors[w][tensor];
        debug_assert!(t.active && t.iter == iter, "pull completion out of phase");
        t.pull_done += 1;
        debug_assert!(t.pull_done <= t.parts);
        if t.pull_done == t.parts {
            t.active = false;
            true
        } else {
            false
        }
    }
}

/// One tensor's global all-reduce state.
#[derive(Clone, Debug, Default)]
struct ArTensor {
    iter: u64,
    ready_workers: u32,
    parts: u32,
    parts_done: u32,
    active: bool,
}

/// A fused baseline collective: the tensors it carries.
#[derive(Clone, Debug)]
pub struct FusedBatch {
    /// `(tensor, iteration)` pairs coalesced into this op.
    pub tensors: Vec<(u32, u64)>,
    /// Total payload bytes.
    pub bytes: u64,
}

/// All-reduce plugin bookkeeping (shared across workers: the ring is one
/// global resource and ordering decisions are made once, by the master).
#[derive(Debug)]
pub struct ArPluginState {
    num_workers: u32,
    tensors: Vec<ArTensor>,
    /// Baseline fusion buffer: globally-ready tensors awaiting the ring,
    /// FIFO.
    fusion_queue: VecDeque<(u32, u64, u64)>, // (tensor, iter, bytes)
    /// In-flight fused batches by batch id.
    batches: HashMap<u64, FusedBatch>,
    next_batch: u64,
}

impl ArPluginState {
    /// Creates state for a ring of `num_workers` over `num_tensors`.
    pub fn new(num_workers: usize, num_tensors: usize) -> Self {
        ArPluginState {
            num_workers: num_workers as u32,
            tensors: vec![ArTensor::default(); num_tensors],
            fusion_queue: VecDeque::new(),
            batches: HashMap::new(),
            next_batch: 0,
        }
    }

    /// One worker reported `tensor` ready for iteration `iter`. Returns
    /// true when the *last* worker reports — the moment the master may
    /// schedule the collective.
    pub fn on_worker_ready(&mut self, tensor: usize, iter: u64, parts: u32) -> bool {
        let t = &mut self.tensors[tensor];
        if !t.active {
            assert_eq!(
                t.ready_workers, 0,
                "tensor {tensor}: stale readiness from a previous iteration"
            );
            *t = ArTensor {
                iter,
                ready_workers: 0,
                parts,
                parts_done: 0,
                active: true,
            };
        }
        assert_eq!(
            t.iter, iter,
            "tensor {tensor}: workers disagree on iteration"
        );
        t.ready_workers += 1;
        assert!(
            t.ready_workers <= self.num_workers,
            "tensor {tensor}: more readiness reports than workers"
        );
        t.ready_workers == self.num_workers
    }

    /// One collective partition of `tensor` finished. Returns true when
    /// the whole tensor is reduced.
    pub fn on_part_done(&mut self, tensor: usize, iter: u64) -> bool {
        let t = &mut self.tensors[tensor];
        debug_assert!(
            t.active && t.iter == iter,
            "collective completion out of phase"
        );
        t.parts_done += 1;
        debug_assert!(t.parts_done <= t.parts);
        if t.parts_done == t.parts {
            t.active = false;
            t.ready_workers = 0;
            true
        } else {
            false
        }
    }

    /// Baseline path: queue a globally-ready tensor for fusion.
    pub fn queue_for_fusion(&mut self, tensor: u32, iter: u64, bytes: u64) {
        self.fusion_queue.push_back((tensor, iter, bytes));
    }

    /// Baseline path: pop the next fused batch of at most `fusion_bytes`
    /// (always at least one tensor, even if oversized — Horovod never
    /// splits a tensor). Returns the batch id and payload, or `None` when
    /// the buffer is empty.
    pub fn next_fused_batch(&mut self, fusion_bytes: u64) -> Option<(u64, u64)> {
        let mut tensors = Vec::new();
        let mut bytes = 0u64;
        while let Some(&(t, iter, b)) = self.fusion_queue.front() {
            if !tensors.is_empty() && bytes + b > fusion_bytes {
                break;
            }
            self.fusion_queue.pop_front();
            tensors.push((t, iter));
            bytes += b;
        }
        if tensors.is_empty() {
            return None;
        }
        let id = self.next_batch;
        self.next_batch += 1;
        self.batches.insert(id, FusedBatch { tensors, bytes });
        Some((id, bytes))
    }

    /// Baseline path: a fused batch completed; returns its tensors.
    pub fn take_batch(&mut self, id: u64) -> FusedBatch {
        self.batches.remove(&id).expect("unknown fused batch")
    }

    /// Marks a baseline whole-tensor op as "all parts done" bookkeeping:
    /// baseline collectives carry whole tensors, so completing the batch
    /// completes each member tensor.
    pub fn complete_whole_tensor(&mut self, tensor: usize, iter: u64) {
        let t = &mut self.tensors[tensor];
        debug_assert!(t.active && t.iter == iter);
        t.active = false;
        t.ready_workers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_push_and_pull_complete_per_tensor() {
        let mut ps = PsPluginState::new(2, 3);
        ps.on_grad_ready(0, 1, 0, 3);
        assert!(!ps.on_push_part_done(0, 1, 0));
        assert!(!ps.on_push_part_done(0, 1, 0));
        assert!(ps.on_push_part_done(0, 1, 0));
        assert!(!ps.on_pull_part_done(0, 1, 0));
        assert!(!ps.on_pull_part_done(0, 1, 0));
        assert!(ps.on_pull_part_done(0, 1, 0));
        // The tensor can go again next iteration.
        ps.on_grad_ready(0, 1, 1, 3);
    }

    #[test]
    #[should_panic(expected = "still active")]
    fn ps_overlapping_iterations_rejected() {
        let mut ps = PsPluginState::new(1, 1);
        ps.on_grad_ready(0, 0, 0, 2);
        ps.on_grad_ready(0, 0, 1, 2);
    }

    #[test]
    fn ar_requires_every_worker_before_start() {
        let mut ar = ArPluginState::new(3, 2);
        assert!(!ar.on_worker_ready(0, 0, 4));
        assert!(!ar.on_worker_ready(0, 0, 4));
        assert!(ar.on_worker_ready(0, 0, 4));
        // Complete all 4 parts.
        for k in 0..4 {
            assert_eq!(ar.on_part_done(0, 0), k == 3);
        }
        // Next iteration resets.
        assert!(!ar.on_worker_ready(0, 1, 4));
    }

    #[test]
    #[should_panic(expected = "disagree on iteration")]
    fn ar_mixed_iterations_rejected() {
        let mut ar = ArPluginState::new(2, 1);
        ar.on_worker_ready(0, 0, 1);
        ar.on_worker_ready(0, 1, 1);
    }

    #[test]
    fn fusion_coalesces_up_to_threshold() {
        let mut ar = ArPluginState::new(2, 5);
        for (t, b) in [(0u32, 30u64), (1, 30), (2, 30), (3, 10)] {
            ar.queue_for_fusion(t, 0, b);
        }
        // Threshold 64: first batch takes tensors 0 and 1 (60 bytes).
        let (id, bytes) = ar.next_fused_batch(64).unwrap();
        assert_eq!(bytes, 60);
        assert_eq!(ar.take_batch(id).tensors, vec![(0, 0), (1, 0)]);
        let (id2, bytes2) = ar.next_fused_batch(64).unwrap();
        assert_eq!(bytes2, 40);
        assert_eq!(ar.take_batch(id2).tensors, vec![(2, 0), (3, 0)]);
        assert!(ar.next_fused_batch(64).is_none());
    }

    #[test]
    fn fusion_never_splits_an_oversized_tensor() {
        let mut ar = ArPluginState::new(2, 1);
        ar.queue_for_fusion(0, 0, 1_000);
        let (_, bytes) = ar.next_fused_batch(64).unwrap();
        assert_eq!(bytes, 1_000, "oversized tensor goes alone, unsplit");
    }
}
