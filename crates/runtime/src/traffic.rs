//! Co-tenant burst traffic: the single injection path for
//! [`BackgroundLoad`](crate::config::BackgroundLoad) bursts.
//!
//! Both the single-job [`crate::world`] driver and the shared-cluster
//! driver (`bs-cluster`) model a synthetic co-tenant the same way: an
//! initial burst per NIC pair, looped on delivery after a jittered gap.
//! [`BurstSource`] owns the timers and the gap RNG; the driver decides
//! which node pairs carry bursts and routes delivered burst events back
//! here.

use std::collections::BTreeSet;

use bs_net::{CompletedTransfer, NetPort, NodeId};
use bs_sim::{SimRng, SimTime};

use crate::config::BackgroundLoad;
use crate::job::NodeMap;

/// Tag bit marking a co-tenant (background) transfer; real subtask
/// tokens never set it (iterations stay far below 2^15).
pub const BG_TAG: u64 = 1 << 63;

/// True when `tag` identifies a co-tenant burst rather than a scheduled
/// subtask.
pub fn is_burst_tag(tag: u64) -> bool {
    tag & BG_TAG != 0
}

/// A looping co-tenant burst generator over a fixed set of NIC pairs.
///
/// Timers and tags are kept in *job-local* (inner) terms; fabric node ids
/// are recorded as delivered (they are already fabric-global), and tags
/// are namespaced through the job's [`NodeMap`] on every submission so
/// multiple burst sources can share one fabric.
#[derive(Clone, Debug)]
pub struct BurstSource {
    load: BackgroundLoad,
    /// Pending re-submissions: `(when, src, dst, inner tag)`.
    timers: BTreeSet<(SimTime, usize, usize, u64)>,
    /// Gap jitter (real tenants are not phase-locked; without jitter,
    /// deterministic bursts can starve a connection forever on the FIFO
    /// fabric).
    rng: SimRng,
}

impl BurstSource {
    /// Creates a source; `seed` keys the gap-jitter RNG stream.
    pub fn new(load: BackgroundLoad, seed: u64) -> BurstSource {
        BurstSource {
            load,
            timers: BTreeSet::new(),
            rng: SimRng::new(seed),
        }
    }

    /// The configured load.
    pub fn load(&self) -> BackgroundLoad {
        self.load
    }

    /// Submits one initial burst on a fabric pair. `inner_tag` must have
    /// [`BG_TAG`] set so the delivery routes back to this source.
    pub fn seed<P: NetPort>(
        &mut self,
        now: SimTime,
        fabric: &mut P,
        nodes: &NodeMap,
        src: NodeId,
        dst: NodeId,
        inner_tag: u64,
    ) {
        debug_assert!(is_burst_tag(inner_tag), "burst tags must set BG_TAG");
        fabric.submit(now, src, dst, self.load.burst_bytes, nodes.tag(inner_tag));
    }

    /// Earliest pending re-submission, or `MAX` when none.
    pub fn next_time(&self) -> SimTime {
        self.timers
            .first()
            .map(|&(t, _, _, _)| t)
            .unwrap_or(SimTime::MAX)
    }

    /// Submits every burst due at or before `t`.
    pub fn fire_due<P: NetPort>(&mut self, t: SimTime, fabric: &mut P, nodes: &NodeMap) {
        while let Some(&(bt, src, dst, tag)) = self.timers.first() {
            if bt > t {
                break;
            }
            self.timers.pop_first();
            fabric.submit(
                t,
                NodeId(src),
                NodeId(dst),
                self.load.burst_bytes,
                nodes.tag(tag),
            );
        }
    }

    /// A burst delivered: schedule the next one on the same pair after a
    /// jittered gap — uniform in `[0.5g, 1.5g]` plus up to 50 µs even at
    /// `g = 0`, so the co-tenant's cycle drifts relative to the job's, as
    /// real cross traffic does. `c.tag` must already be stripped to the
    /// inner tag.
    pub fn on_delivered(&mut self, now: SimTime, c: &CompletedTransfer) {
        self.requeue(now, c.src, c.dst, c.tag);
    }

    /// Schedules the next burst on a pair after the jittered gap. Also
    /// the re-arm path when a link flap kills an in-flight burst: the
    /// co-tenant's traffic generator does not stop because one burst was
    /// lost, it just tries again next cycle.
    pub fn requeue(&mut self, now: SimTime, src: NodeId, dst: NodeId, inner_tag: u64) {
        let g = self.load.gap_us as f64;
        let gap = self.rng.uniform(0.5 * g, 1.5 * g + 50.0);
        self.timers.insert((
            now + SimTime::from_micros(gap as u64),
            src.0,
            dst.0,
            inner_tag,
        ));
    }

    /// Pending re-submission timers (for debug diagnostics).
    pub fn pending(&self) -> usize {
        self.timers.len()
    }
}
