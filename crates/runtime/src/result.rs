//! Measurement output of one run.

use bs_sim::{OnlineStats, SimTime, Trace};
use bs_telemetry::MetricSet;
use serde::Serialize;

/// How a run ended — the distinction that lets fault experiments tell
/// graceful degradation from silent wrongness.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum RunOutcome {
    /// Nothing was lost; the run needed no recovery action.
    Completed,
    /// Faults perturbed the run but every lost transfer was recovered and
    /// training finished correctly.
    DegradedCompleted {
        /// Retransmit attempts performed (timeouts + flap kills).
        retries: u64,
        /// Retransmits re-driven after a link flap killed the original
        /// in-flight transfer.
        reroutes: u64,
    },
    /// The run aborted: recovery exhausted its retry budget.
    Failed {
        /// Human-readable abort cause.
        reason: String,
    },
}

/// The measured outcome of one simulated training run.
#[derive(Clone, Debug, Serialize)]
pub struct RunResult {
    /// Steady-state iteration period in seconds (mean over the measured
    /// window, excluding warm-up).
    pub iteration_period: f64,
    /// Training speed in samples/sec (images/sec or tokens/sec) across the
    /// whole job — the y-axis of the paper's figures.
    pub speed: f64,
    /// Unit label for `speed`.
    pub speed_unit: &'static str,
    /// Scheduler label ("Baseline", "P3", "ByteScheduler", …).
    pub scheduler: &'static str,
    /// Per-iteration wall times (seconds) of the measured window.
    pub iter_times: Vec<f64>,
    /// Std-dev of the measured iteration times.
    pub iter_time_std: f64,
    /// Total payload bytes that crossed point-to-point wires.
    pub p2p_bytes: u64,
    /// Total payload bytes reduced by collectives.
    pub collective_bytes: u64,
    /// Virtual time at which the run ended.
    pub finished_at: SimTime,
    /// Execution trace (when `WorldConfig::record_trace` was set).
    pub trace: Option<Trace>,
    /// Busiest NIC direction's busy fraction over the run (PS / FIFO
    /// fabric only; 0 otherwise). ~1.0 means a wire was the bottleneck.
    pub peak_port_utilisation: f64,
    /// Simulated communication completions: point-to-point deliveries on
    /// PS runs, collectives on all-reduce runs. The perf runner divides
    /// this by wall time for its events/sec figure.
    pub comm_events: u64,
    /// Highest number of simultaneously in-flight transfers on the
    /// point-to-point fabric (0 for all-reduce runs).
    pub peak_in_flight: usize,
    /// Run metrics (when `WorldConfig::record_metrics` was set): credit
    /// occupancy and stall series per lane, per-NIC utilisation, per-GPU
    /// busy/idle, with summaries closed at `finished_at`.
    pub metrics: Option<MetricSet>,
    /// Critical-path attribution (when `WorldConfig::record_xray` was
    /// set): per-iteration wall time split across compute / wire /
    /// credit-wait / queue-wait / aggregation / barrier, plus the tensors
    /// owning the most critical-path time.
    pub xray: Option<bs_xray::XrayReport>,
    /// How the run ended. Always [`RunOutcome::Completed`] without a
    /// fault plan.
    pub outcome: RunOutcome,
}

impl RunResult {
    /// Builds the result from the raw compute-iteration timestamps of the
    /// measurement worker.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_iteration_marks(
        marks: &[SimTime],
        warmup: usize,
        global_batch: u64,
        speed_unit: &'static str,
        scheduler: &'static str,
        p2p_bytes: u64,
        collective_bytes: u64,
        finished_at: SimTime,
    ) -> RunResult {
        assert!(
            marks.len() > warmup + 1,
            "need at least two measured iterations (got {} marks, warmup {warmup})",
            marks.len()
        );
        let mut stats = OnlineStats::new();
        let mut iter_times = Vec::with_capacity(marks.len() - warmup - 1);
        for w in warmup..marks.len() - 1 {
            let dt = (marks[w + 1] - marks[w]).as_secs_f64();
            iter_times.push(dt);
            stats.push(dt);
        }
        let iteration_period = stats.mean();
        RunResult {
            iteration_period,
            speed: global_batch as f64 / iteration_period,
            speed_unit,
            scheduler,
            iter_times,
            iter_time_std: stats.std_dev(),
            p2p_bytes,
            collective_bytes,
            finished_at,
            trace: None,
            peak_port_utilisation: 0.0,
            comm_events: 0,
            peak_in_flight: 0,
            metrics: None,
            xray: None,
            outcome: RunOutcome::Completed,
        }
    }

    /// Builds the result of a run that aborted before measuring anything
    /// (recovery exhausted its retry budget): no speed, no iteration
    /// statistics — just the outcome and whatever virtual time elapsed.
    pub(crate) fn failed(
        speed_unit: &'static str,
        scheduler: &'static str,
        finished_at: SimTime,
        reason: String,
    ) -> RunResult {
        RunResult {
            iteration_period: 0.0,
            speed: 0.0,
            speed_unit,
            scheduler,
            iter_times: Vec::new(),
            iter_time_std: 0.0,
            p2p_bytes: 0,
            collective_bytes: 0,
            finished_at,
            trace: None,
            peak_port_utilisation: 0.0,
            comm_events: 0,
            peak_in_flight: 0,
            metrics: None,
            xray: None,
            outcome: RunOutcome::Failed { reason },
        }
    }

    /// Speed-up of this run over `baseline`, as the paper reports it
    /// (e.g. +0.85 ⇒ "85 % faster").
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        self.speed / baseline.speed - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marks(ms: &[u64]) -> Vec<SimTime> {
        ms.iter().map(|&m| SimTime::from_millis(m)).collect()
    }

    #[test]
    fn period_averages_post_warmup_intervals() {
        // Iterations at 0, 100, 220, 320, 420 ms; warmup 1 discards the
        // first interval: periods 120, 100, 100 -> mean 106.67 ms.
        let r = RunResult::from_iteration_marks(
            &marks(&[0, 100, 220, 320, 420]),
            1,
            1000,
            "images/sec",
            "Baseline",
            0,
            0,
            SimTime::from_millis(420),
        );
        assert!((r.iteration_period - 0.10666667).abs() < 1e-6);
        assert_eq!(r.iter_times.len(), 3);
        assert!((r.speed - 1000.0 / 0.10666667).abs() < 1.0);
    }

    #[test]
    fn speedup_is_relative_speed_gain() {
        let base = RunResult::from_iteration_marks(
            &marks(&[0, 200, 400]),
            0,
            100,
            "images/sec",
            "Baseline",
            0,
            0,
            SimTime::ZERO,
        );
        let fast = RunResult::from_iteration_marks(
            &marks(&[0, 100, 200]),
            0,
            100,
            "images/sec",
            "ByteScheduler",
            0,
            0,
            SimTime::ZERO,
        );
        assert!((fast.speedup_over(&base) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two measured iterations")]
    fn too_few_marks_rejected() {
        RunResult::from_iteration_marks(
            &marks(&[0, 100]),
            1,
            1,
            "images/sec",
            "Baseline",
            0,
            0,
            SimTime::ZERO,
        );
    }
}
