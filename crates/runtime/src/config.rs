//! Experiment configuration: everything that defines one training run.

use bs_comm::PsMode;
use bs_engine::EngineConfig;
use bs_models::DnnModel;
use bs_net::{FabricModel, NetConfig};
use serde::Serialize;

/// Gradient-synchronisation architecture.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum Arch {
    /// Sharded parameter server. The paper co-locates one shard per worker
    /// machine (`num_servers == num_workers` in all its PS experiments).
    Ps {
        /// Synchronous or asynchronous training.
        mode: PsMode,
        /// Number of PS shards.
        num_servers: usize,
        /// Whether the *baseline* splits tensors above 1 MB across shards
        /// (MXNet's big-array bound). The paper's baselines show the
        /// naive whole-tensor round-robin placement and its load
        /// imbalance (§6.2), so the default is `false`; flipping it is
        /// the balanced-baseline ablation.
        baseline_bigarray_split: bool,
    },
    /// Ring all-reduce (NCCL-style).
    AllReduce {
        /// Horovod-style tensor fusion threshold for the *baseline*
        /// scheduler: ready tensors waiting for the ring are coalesced
        /// into single collectives up to this many bytes. `None` disables
        /// fusion. Vanilla Horovod defaults to 64 MB.
        baseline_fusion_bytes: Option<u64>,
        /// Expected wait before a baseline fused batch launches, modelling
        /// Horovod's coordinator cycle (default CYCLE_TIME = 5 ms ⇒ a mean
        /// wait of half that). ByteScheduler replaces the cycle with
        /// event-driven scheduling, so scheduled runs pay nothing here.
        baseline_cycle_delay_us: u64,
    },
}

impl Arch {
    /// Synchronous PS with one shard per worker — the paper's PS layout.
    pub fn ps(num_workers: usize) -> Arch {
        Arch::Ps {
            mode: PsMode::Synchronous,
            num_servers: num_workers,
            baseline_bigarray_split: false,
        }
    }

    /// All-reduce with Horovod's default 64 MB baseline fusion and 5 ms
    /// coordinator cycle (mean wait 2.5 ms).
    pub fn allreduce() -> Arch {
        Arch::AllReduce {
            baseline_fusion_bytes: Some(64 * 1024 * 1024),
            baseline_cycle_delay_us: 2_500,
        }
    }

    /// Number of scheduler lanes this architecture needs (§2.2: PS
    /// schedules upload and download independently; all-reduce has one
    /// stream).
    pub fn num_lanes(&self) -> usize {
        match self {
            Arch::Ps { .. } => 2,
            Arch::AllReduce { .. } => 1,
        }
    }
}

/// Which scheduling policy drives communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SchedulerKind {
    /// The vanilla framework: FIFO readiness order, no repartitioning,
    /// engine graph as shipped (barrier and all).
    Baseline,
    /// FIFO order but with fixed-size partitioning — Figure 4(a)'s
    /// configuration, isolating partition overhead from scheduling.
    FifoPartitioned {
        /// Partition size in bytes.
        partition: u64,
    },
    /// FIFO order with partitioning *and* credit-metered release —
    /// Figure 4(b)'s configuration: the ByteScheduler machinery with all
    /// priorities equal, isolating the credit-size trade-off.
    FifoCredit {
        /// Partition size in bytes.
        partition: u64,
        /// Credit size in bytes.
        credit: u64,
    },
    /// P3 (Jayarajan et al.): priority + 160 KB partitions + stop-and-wait.
    P3,
    /// ByteScheduler with explicit knobs (δ, c). The auto-tuner searches
    /// over these.
    ByteScheduler {
        /// Partition size δ in bytes.
        partition: u64,
        /// Credit size c in bytes (per lane).
        credit: u64,
    },
}

impl SchedulerKind {
    /// Whether this policy requires the ByteScheduler engine rewrite
    /// (Dependency Proxies + out-of-engine communication). The baselines
    /// run the engine graph as shipped.
    pub fn needs_scheduled_engine(&self) -> bool {
        matches!(
            self,
            SchedulerKind::P3
                | SchedulerKind::ByteScheduler { .. }
                | SchedulerKind::FifoCredit { .. }
        )
    }

    /// Display name for result tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "Baseline",
            SchedulerKind::FifoPartitioned { .. } => "FIFO+partition",
            SchedulerKind::FifoCredit { .. } => "FIFO+credit",
            SchedulerKind::P3 => "P3",
            SchedulerKind::ByteScheduler { .. } => "ByteScheduler",
        }
    }
}

/// A synthetic co-tenant: every worker NIC periodically carries a foreign
/// burst (modelled as a server→worker transfer sharing the same ports the
/// job's pulls use, plus a worker→server burst on the push side).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct BackgroundLoad {
    /// Bytes per burst.
    pub burst_bytes: u64,
    /// Gap between one burst's delivery and the next submission, µs.
    /// Smaller gap = heavier congestion; gap 0 ≈ a saturating tenant.
    pub gap_us: u64,
}

/// One complete experiment configuration.
#[derive(Clone, Debug, Serialize)]
pub struct WorldConfig {
    /// The model being trained.
    pub model: DnnModel,
    /// Number of workers. For PS runs a "worker" is a machine (8 GPUs, the
    /// paper's layout); for all-reduce a worker is one GPU.
    pub num_workers: usize,
    /// GPUs aggregated inside each worker (8 for PS machines, 1 for
    /// all-reduce ranks). Scales the global batch; intra-worker scaling is
    /// assumed perfect (see DESIGN.md).
    pub gpus_per_worker: u64,
    /// Gradient-synchronisation architecture.
    pub arch: Arch,
    /// Network bandwidth + transport.
    pub net: NetConfig,
    /// Which framework engine flavour is simulated (vanilla form; the
    /// runtime applies the ByteScheduler rewrite automatically when the
    /// scheduler needs it).
    pub engine: EngineConfig,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Point-to-point fabric discipline (PS runs only; the collective
    /// stream has its own model). `SerialFifo` is the paper's abstraction
    /// and the default; `FairShare` is the multiplexed-transport
    /// sensitivity study.
    pub fabric: FabricModel,
    /// Per-tensor partition-size override for the ByteScheduler policy —
    /// the §7 "different partition sizes for different layers" extension.
    /// When set, entry `i` replaces the uniform δ for tensor `i`.
    pub per_tensor_partition: Option<Vec<u64>>,
    /// Communication-priority override: entry `i` is tensor `i`'s
    /// priority (lower = more urgent). Defaults to the §3.2 derivation
    /// (layer index). Used by the Theorem 1 exhaustive-permutation tests
    /// and available for custom policies.
    pub priority_override: Option<Vec<u64>>,
    /// A co-tenant's traffic contending on this job's NICs (§7 "shared
    /// network with congestion"). PS runs only.
    pub background: Option<BackgroundLoad>,
    /// Deterministic fault schedule for this run: link degradations and
    /// flaps (PS fabrics), per-transfer Bernoulli loss, and worker
    /// stragglers, recovered per the plan's
    /// [`bs_faults::RecoveryPolicy`]. `None` — and the empty plan — leave
    /// every run bit-identical to a fault-free one.
    pub faults: Option<bs_faults::FaultPlan>,
    /// Record an execution trace (compute ops, wire occupancies,
    /// collectives) into [`crate::RunResult::trace`], exportable to
    /// `chrome://tracing` via `bs_sim::Trace::to_chrome_json`.
    pub record_trace: bool,
    /// Record run metrics (credit occupancy, queue depths, per-NIC
    /// utilisation, GPU busy/stall accounting) into
    /// [`crate::RunResult::metrics`]. Off by default: the disabled path
    /// costs one branch per instrumented point, keeping benchmark runs
    /// bit-identical with or without the telemetry layer compiled in.
    pub record_metrics: bool,
    /// Record the causal event log (per-partition lifecycles, compute
    /// spans, credit stalls, aggregation instants) and attach the derived
    /// critical-path attribution to [`crate::RunResult::xray`]. With
    /// `record_trace` also set, flow arrows (BP → wire) ride along in the
    /// Perfetto trace. Off by default and recording-only — results stay
    /// bit-identical with or without it.
    pub record_xray: bool,
    /// Iterations to run.
    pub iters: u64,
    /// Iterations discarded before measuring (the paper warms up for 10).
    pub warmup: u64,
    /// RNG seed for compute jitter.
    pub seed: u64,
    /// Fractional std-dev of per-op compute jitter (0 disables).
    pub jitter: f64,
}

impl WorldConfig {
    /// A configuration with the measurement defaults used across the
    /// harness: 15 measured iterations after 3 warm-up, 1 % jitter.
    pub fn new(
        model: DnnModel,
        num_workers: usize,
        arch: Arch,
        net: NetConfig,
        engine: EngineConfig,
        scheduler: SchedulerKind,
    ) -> Self {
        let gpus_per_worker = match arch {
            Arch::Ps { .. } => 8,
            Arch::AllReduce { .. } => 1,
        };
        WorldConfig {
            model,
            num_workers,
            gpus_per_worker,
            arch,
            net,
            engine,
            scheduler,
            fabric: FabricModel::SerialFifo,
            per_tensor_partition: None,
            priority_override: None,
            background: None,
            faults: None,
            record_trace: false,
            record_metrics: false,
            record_xray: false,
            iters: 18,
            warmup: 3,
            seed: 1,
            jitter: 0.01,
        }
    }

    /// Total GPUs across the job — the x-axis of Figures 10–12.
    pub fn total_gpus(&self) -> u64 {
        self.num_workers as u64 * self.gpus_per_worker
    }

    /// Samples processed per iteration across the job.
    pub fn global_batch(&self) -> u64 {
        self.model.batch_per_worker * self.total_gpus()
    }

    /// The paper's "linear scaling" reference: single-GPU speed times the
    /// GPU count.
    pub fn linear_scaling_speed(&self) -> f64 {
        self.model.single_worker_speed() * self.total_gpus() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_net::Transport;

    #[test]
    fn ps_runs_count_machines_and_8_gpus_each() {
        let cfg = WorldConfig::new(
            bs_models::zoo::vgg16(),
            4,
            Arch::ps(4),
            NetConfig::gbps(100.0, Transport::tcp()),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        );
        assert_eq!(cfg.total_gpus(), 32);
        assert_eq!(cfg.global_batch(), 32 * 32);
        assert_eq!(cfg.arch.num_lanes(), 2);
    }

    #[test]
    fn allreduce_runs_count_single_gpu_ranks() {
        let cfg = WorldConfig::new(
            bs_models::zoo::resnet50(),
            16,
            Arch::allreduce(),
            NetConfig::gbps(100.0, Transport::rdma()),
            EngineConfig::mxnet_allreduce(),
            SchedulerKind::Baseline,
        );
        assert_eq!(cfg.total_gpus(), 16);
        assert_eq!(cfg.arch.num_lanes(), 1);
    }

    #[test]
    fn only_scheduling_policies_rewrite_the_engine() {
        assert!(!SchedulerKind::Baseline.needs_scheduled_engine());
        assert!(!SchedulerKind::FifoPartitioned { partition: 4096 }.needs_scheduled_engine());
        assert!(SchedulerKind::P3.needs_scheduled_engine());
        assert!(SchedulerKind::ByteScheduler {
            partition: 1,
            credit: 1
        }
        .needs_scheduled_engine());
    }

    #[test]
    fn linear_scaling_is_gpu_proportional() {
        let model = bs_models::zoo::vgg16();
        let mk = |n| {
            WorldConfig::new(
                model.clone(),
                n,
                Arch::ps(n),
                NetConfig::gbps(100.0, Transport::tcp()),
                EngineConfig::mxnet_ps(),
                SchedulerKind::Baseline,
            )
        };
        assert!((mk(8).linear_scaling_speed() / mk(2).linear_scaling_speed() - 4.0).abs() < 1e-9);
    }
}
