//! The single-job co-simulation driver: one [`JobState`] on a private
//! fabric under one clock.
//!
//! All per-job mechanics (plugins, schedulers, backends) live in
//! [`crate::job`]; this module owns what a *driver* owns — the fabric,
//! the clock, and the cascade loop — which is exactly the split that lets
//! `bs-cluster` multiplex many [`JobState`]s over one shared fabric with
//! the same loop structure.

use bs_net::{Fabric, NetPort, ScopeWindow};
use bs_scope::{ScopeBus, ScopeEvent};
use bs_sim::{SimTime, Trace};

use crate::config::{Arch, WorldConfig};
use crate::job::{wire_span_into_trace, JobEvent, JobNetStats, JobState, NodeMap};
use crate::result::RunResult;

struct World {
    job: JobState,
    fabric: Fabric,
    now: SimTime,
}

/// Runs one configuration to completion and reports the measured speed.
///
/// Panics with a diagnostic if the configuration deadlocks — a scheduling
/// policy that loses work or a dependency cycle is a bug, not a data point.
pub fn run(cfg: &WorldConfig) -> RunResult {
    run_observed(cfg, None)
}

/// [`run`] with an optional scope observation bus attached.
///
/// When `scope` is `Some`, the job and fabric publish lifecycle events
/// (iteration boundaries, retransmits, fault firings, NIC-utilisation
/// windows) onto the bus as they happen. Observation is recording-only:
/// it never feeds back into simulation decisions, so the run's results,
/// traces and metrics are byte-identical with or without a bus — the
/// `scope_recording_does_not_change_results` test pins this.
pub fn run_observed(cfg: &WorldConfig, scope: Option<&mut ScopeBus>) -> RunResult {
    let mut world = World::build(cfg);
    if let Some(bus) = scope {
        world.job.enable_scope(0, SimTime::ZERO);
        world.fabric.enable_scope(SimTime::ZERO, bus.window());
        world.run_loop(Some(bus));
        // Close the stream: flush the fabric's partial window, any
        // straggling job events, then the bus's own open rollups.
        world.fabric.finish_scope(world.now);
        let mut wins = Vec::new();
        world.fabric.drain_scope_windows(&mut wins);
        for w in &wins {
            bus.publish(net_window_event(w));
        }
        world.job.publish_scope(bus);
        bus.finish(world.now);
    } else {
        world.run_loop(None);
    }
    world.into_result(cfg)
}

/// Maps a fabric NIC-utilisation window onto its bus event.
pub fn net_window_event(w: &ScopeWindow) -> ScopeEvent {
    ScopeEvent::NetWindow {
        start: w.start,
        at: w.end,
        util_secs: w.util_secs,
        mean_util: w.mean_util,
    }
}

/// The single-job event loop, generic over the fabric so each fabric gets
/// its own fully inlined instantiation.
fn drive_job<P: NetPort>(
    job: &mut JobState,
    fabric: &mut P,
    now: &mut SimTime,
    mut scope: Option<&mut ScopeBus>,
) {
    job.seed_background(*now, fabric);
    let mut queue: Vec<JobEvent> = Vec::new();
    let mut net_events: Vec<bs_net::NetEvent> = Vec::new();
    let mut scope_windows: Vec<ScopeWindow> = Vec::new();
    let mut spins_at_same_instant: u64 = 0;
    let mut last_now = SimTime::ZERO;
    let debug_loop = std::env::var("BS_DEBUG_LOOP").is_ok();
    loop {
        if *now == last_now {
            spins_at_same_instant += 1;
            assert!(
                spins_at_same_instant < 1_000_000,
                "event loop spinning at {} without progress",
                now
            );
        } else {
            last_now = *now;
            spins_at_same_instant = 0;
        }
        if debug_loop {
            debug_progress_line(job, fabric, *now, spins_at_same_instant);
        }
        // Drain all cascades at the current instant. `handle` pushes
        // follow-on events directly onto the queue (same LIFO order
        // as the old collect-then-extend, without the Vec churn).
        while let Some(ev) = queue.pop() {
            job.handle(ev, *now, fabric, &mut queue);
        }
        if let Some(bus) = scope.as_deref_mut() {
            job.publish_scope(bus);
        }
        if job.done() {
            return;
        }
        // Find the next instant anything happens.
        let t = job.next_event_time().min(fabric.next_event_time());
        if t.is_never() {
            panic!(
                "simulation stalled at {}: iterations done {:?}, queued work {:?}",
                now,
                job.debug_iterations(),
                job.debug_sched_queues()
            );
        }
        *now = t;
        // Job-owned sources first (co-tenant bursts, GPU ops, the
        // private ring stream), then the shared fabric — the same
        // within-instant order the loop has always used.
        job.advance(t, fabric, &mut queue);
        if fabric.wants_advance(t) {
            fabric.advance_into(t, &mut net_events);
            for c in net_events.drain(..) {
                queue.push(JobEvent::Net(c));
            }
        }
        if let Some(bus) = scope.as_deref_mut() {
            job.publish_scope(bus);
            fabric.drain_scope_windows(&mut scope_windows);
            for w in scope_windows.drain(..) {
                bus.publish(net_window_event(&w));
            }
        }
    }
}

/// `BS_DEBUG_LOOP=1` diagnostics: a progress line every 100k loop
/// turns, with subsystem queue depths — the first tool to reach for
/// when a configuration seems wedged.
#[cold]
fn debug_progress_line<P: NetPort>(job: &JobState, fabric: &P, now: SimTime, spins: u64) {
    static COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let c = COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    if !c.is_multiple_of(100_000) {
        return;
    }
    let (nf, nq) = if job.debug_ring_outstanding() > 0 {
        (job.debug_ring_outstanding(), 0)
    } else {
        (fabric.in_flight(), fabric.queued())
    };
    eprintln!(
        "loop {c}: now={} spins={spins} iters_done={:?} marks={} sched_q={:?}              net_flight={nf} net_q={nq} bg_timers={}",
        now,
        job.debug_iterations(),
        job.debug_marks(),
        job.debug_sched_queues(),
        job.debug_bg_timers()
    );
    for row in fabric.debug_stalled().iter().take(4) {
        eprintln!("  stalled: {row:?}");
    }
}

impl World {
    fn build(cfg: &WorldConfig) -> World {
        let nodes_needed = JobState::fabric_nodes_needed(cfg);
        // Ring runs keep their collective stream private and never touch
        // the point-to-point fabric; give them a minimal idle one.
        let mut fabric = Fabric::new(cfg.fabric, nodes_needed.max(2), cfg.net);
        if cfg.record_trace && matches!(cfg.arch, Arch::Ps { .. }) {
            fabric.enable_trace();
        }
        if cfg.record_metrics && matches!(cfg.arch, Arch::Ps { .. }) {
            fabric.enable_telemetry(SimTime::ZERO);
        }
        if cfg.record_xray && matches!(cfg.arch, Arch::Ps { .. }) {
            fabric.enable_xray();
        }
        let job = JobState::build(cfg, NodeMap::identity(nodes_needed));
        World {
            job,
            fabric,
            now: SimTime::ZERO,
        }
    }

    fn run_loop(&mut self, scope: Option<&mut ScopeBus>) {
        // Monomorphise the hot loop over the concrete fabric: every
        // per-event submit/advance call inlines instead of dispatching
        // through the enum millions of times per run.
        let mut now = self.now;
        match &mut self.fabric {
            Fabric::Fifo(n) => drive_job(&mut self.job, n, &mut now, scope),
            Fabric::Fluid(n) => drive_job(&mut self.job, n, &mut now, scope),
        }
        self.now = now;
    }

    fn into_result(mut self, cfg: &WorldConfig) -> RunResult {
        // Wire lifecycles must land in the partition records before the
        // trace is assembled: flow arrows point at wire-start instants.
        if cfg.record_xray {
            let recs = self.fabric.take_xray();
            self.job.absorb_wire_xray(&recs);
        }
        let trace = cfg.record_trace.then(|| self.assemble_trace());
        let net = JobNetStats {
            p2p_bytes: self.fabric.bytes_delivered(),
            comm_events: self.fabric.transfers_delivered(),
            peak_in_flight: self.fabric.peak_in_flight(),
            peak_port_utilisation: self.fabric.peak_port_utilisation(self.now),
        };
        let fabric_metrics = self.fabric.take_metrics(self.now);
        let mut result = self.job.into_result(cfg, self.now, net);
        result.trace = trace;
        if let Some(fm) = fabric_metrics {
            result
                .metrics
                .get_or_insert_with(bs_telemetry::MetricSet::new)
                .absorb("net/", fm);
        }
        // With both recorders on, the run's series double as Perfetto
        // counter tracks alongside the span trace.
        if let (Some(trace), Some(ms)) = (&mut result.trace, &result.metrics) {
            for t in ms.counter_tracks() {
                trace.push_counter(t.name, t.samples);
            }
        }
        result
    }

    /// Collects the recorded spans from every subsystem into one trace
    /// with human-readable track and span names.
    fn assemble_trace(&mut self) -> Trace {
        let mut trace = Trace::new();
        self.job.append_compute_trace(&mut trace, "");
        for span in self.fabric.take_trace() {
            wire_span_into_trace(&mut trace, &span, "");
        }
        self.job.append_ring_trace(&mut trace, "");
        self.job.append_xray_flows(&mut trace, "");
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use bs_engine::EngineConfig;
    use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
    use bs_net::{NetConfig, Transport};

    /// A small comm-heavy model: the first layer carries a big tensor
    /// (VGG/Transformer-like inversion: big tensors near the input suffer
    /// most under FIFO).
    fn comm_heavy() -> DnnModel {
        let gpu = GpuSpec::custom(1e12, 2.0);
        ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
            .explicit(
                "l0",
                40_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .explicit(
                "l1",
                5_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .explicit(
                "l2",
                5_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .explicit(
                "l3",
                1_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .build()
    }

    fn net10g() -> NetConfig {
        NetConfig::gbps(10.0, Transport::tcp())
    }

    fn cfg(
        model: DnnModel,
        workers: usize,
        arch: Arch,
        engine: EngineConfig,
        sched: SchedulerKind,
    ) -> WorldConfig {
        let mut c = WorldConfig::new(model, workers, arch, net10g(), engine, sched);
        c.iters = 10;
        c.warmup = 2;
        c.jitter = 0.0;
        c
    }

    fn bs(partition: u64, credit: u64) -> SchedulerKind {
        SchedulerKind::ByteScheduler { partition, credit }
    }

    #[test]
    fn baseline_ps_runs_and_is_sublinear() {
        let c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        );
        let r = run(&c);
        assert!(r.speed > 0.0);
        assert!(
            r.speed < c.linear_scaling_speed(),
            "comm-heavy baseline cannot hit linear scaling"
        );
        assert!(r.p2p_bytes > 0);
    }

    #[test]
    fn bytescheduler_beats_baseline_on_ps() {
        let base = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        ));
        let tuned = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(2_000_000, 8_000_000),
        ));
        assert!(
            tuned.speed > base.speed,
            "ByteScheduler {} must beat baseline {}",
            tuned.speed,
            base.speed
        );
    }

    #[test]
    fn barrier_engine_is_slower_than_per_layer_engine() {
        let mxnet = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        ));
        let tf = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::tensorflow_ps(),
            SchedulerKind::Baseline,
        ));
        assert!(
            tf.speed <= mxnet.speed + 1e-9,
            "the global barrier cannot help: tf {} vs mxnet {}",
            tf.speed,
            mxnet.speed
        );
    }

    #[test]
    fn crossing_the_barrier_recovers_the_gap() {
        // With ByteScheduler, the TF-style engine should perform like the
        // MXNet-style engine: the barrier is crossed (§3.4).
        let sched = bs(2_000_000, 8_000_000);
        let mxnet = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            sched,
        ));
        let tf = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::tensorflow_ps(),
            sched,
        ));
        let rel = (tf.speed - mxnet.speed).abs() / mxnet.speed;
        assert!(
            rel < 0.02,
            "crossed-barrier TF must match MXNet: {} vs {}",
            tf.speed,
            mxnet.speed
        );
    }

    #[test]
    fn p3_lands_between_baseline_and_bytescheduler() {
        let base = run(&cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        ));
        let p3 = run(&cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            SchedulerKind::P3,
        ));
        let tuned = run(&cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            bs(500_000, 1_000_000),
        ));
        assert!(
            p3.speed > base.speed,
            "P3 {} vs base {}",
            p3.speed,
            base.speed
        );
        assert!(
            tuned.speed > p3.speed,
            "ByteScheduler {} must beat P3 {} (stop-and-wait + tiny partitions)",
            tuned.speed,
            p3.speed
        );
    }

    #[test]
    fn allreduce_baseline_and_scheduled_both_run() {
        let base = run(&cfg(
            comm_heavy(),
            4,
            Arch::allreduce(),
            EngineConfig::mxnet_allreduce(),
            SchedulerKind::Baseline,
        ));
        let tuned = run(&cfg(
            comm_heavy(),
            4,
            Arch::allreduce(),
            EngineConfig::mxnet_allreduce(),
            bs(8_000_000, 16_000_000),
        ));
        assert!(base.collective_bytes > 0);
        assert!(
            tuned.speed >= base.speed * 0.95,
            "scheduled all-reduce must not regress much"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let mut c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(2_000_000, 8_000_000),
        );
        c.jitter = 0.02;
        c.seed = 42;
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a.speed, b.speed);
        c.seed = 43;
        let d = run(&c);
        assert_ne!(a.speed, d.speed);
    }

    #[test]
    fn async_ps_runs() {
        let mut c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(2_000_000, 8_000_000),
        );
        c.arch = Arch::Ps {
            mode: bs_comm::PsMode::Asynchronous,
            num_servers: 2,
            baseline_bigarray_split: false,
        };
        let r = run(&c);
        assert!(r.speed > 0.0);
    }

    #[test]
    fn comm_bound_runs_show_a_saturated_port() {
        // The comm-heavy toy at 10 Gbps: its bottleneck NIC should be
        // busy most of the time; a compute-bound run at 100 Gbps should
        // not be.
        let r = run(&cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            bs(1_000_000, 4_000_000),
        ));
        assert!(
            r.peak_port_utilisation > 0.4,
            "comm-bound peak utilisation {:.2}",
            r.peak_port_utilisation
        );
        let mut light = cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            bs(1_000_000, 4_000_000),
        );
        light.net = NetConfig::gbps(100.0, Transport::rdma());
        let r2 = run(&light);
        assert!(
            r2.peak_port_utilisation < r.peak_port_utilisation,
            "more bandwidth must lower utilisation: {:.2} vs {:.2}",
            r2.peak_port_utilisation,
            r.peak_port_utilisation
        );
    }

    #[test]
    fn recorded_trace_covers_compute_and_wire() {
        let mut c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(1_000_000, 4_000_000),
        );
        c.record_trace = true;
        let r = run(&c);
        let trace = r.trace.expect("trace recorded");
        assert!(!trace.is_empty());
        let has = |prefix: &str| trace.spans.iter().any(|s| s.name.starts_with(prefix));
        assert!(has("fwd0@"), "compute spans present");
        assert!(has("bwd3@"), "backward spans present");
        assert!(has("push t"), "push spans present");
        assert!(has("pull t"), "pull spans present");
        for s in &trace.spans {
            assert!(s.end >= s.start);
        }
        // And the export parses as JSON.
        let json = trace.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        // Without the flag, no trace is attached.
        c.record_trace = false;
        assert!(run(&c).trace.is_none());
    }

    #[test]
    fn recorded_metrics_cover_scheduler_fabric_and_gpus() {
        let mut c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(1_000_000, 4_000_000),
        );
        c.record_metrics = true;
        c.record_trace = true;
        let r = run(&c);
        let ms = r.metrics.as_ref().expect("metrics recorded");
        assert_eq!(ms.horizon, r.finished_at);
        // Scheduler, engine and fabric layers all reported.
        assert!(ms.get_series("worker0/sched/lane0/credit_in_use").is_some());
        assert!(ms.get_series("worker1/gpu_busy").is_some());
        assert!(ms.get_series("net/nic0/up_util").is_some());
        assert!(ms.get_counter("net/transfers_delivered").unwrap_or(0) > 0);
        // Stall accounting: busy + stall covers each worker's window.
        let busy = ms.get_gauge("worker0/gpu_busy_secs").expect("busy gauge");
        let stall = ms
            .get_gauge("worker0/comm_stall_secs")
            .expect("stall gauge");
        assert!(busy > 0.0 && stall > 0.0);
        assert!((busy + stall - r.finished_at.as_secs_f64()).abs() < 1e-9);
        // With both recorders on, series ride along as counter tracks.
        let trace = r.trace.as_ref().expect("trace recorded");
        assert!(!trace.counters.is_empty());
        assert!(trace.to_chrome_json().contains("\"ph\":\"C\""));
        // Metrics stay off (and absent) by default.
        c.record_metrics = false;
        c.record_trace = false;
        assert!(run(&c).metrics.is_none());
    }

    #[test]
    fn recorded_xray_attributes_every_iteration_exactly() {
        let mut c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(1_000_000, 4_000_000),
        );
        c.record_xray = true;
        c.record_trace = true;
        let r = run(&c);
        let x = r.xray.as_ref().expect("xray recorded");
        assert_eq!(x.scheduler, "ByteScheduler");
        assert!(!x.iterations.is_empty());
        // Exact tiling: every measured iteration's categories sum to its
        // wall time, and the totals sum to the measured window.
        for it in &x.iterations {
            assert_eq!(it.attribution.total_ns(), it.wall_ns());
        }
        assert_eq!(
            x.totals.total_ns(),
            x.measured_wall_ns,
            "attribution must tile the measured window"
        );
        // A comm-heavy run spends critical-path time on the wire, and the
        // big first tensor dominates the tensor ranking.
        assert!(x.totals.wire_ns > 0, "wire time on the critical path");
        assert!(x.totals.compute_ns > 0);
        assert_eq!(x.tensors.first().map(|t| t.tensor), Some(0));
        // Flow arrows rode along into the Perfetto trace.
        let trace = r.trace.as_ref().expect("trace recorded");
        assert!(!trace.flows.is_empty(), "BP->wire flow arrows present");
        assert!(trace.to_chrome_json().contains("\"ph\":\"s\""));
        // Off by default.
        c.record_xray = false;
        c.record_trace = false;
        assert!(run(&c).xray.is_none());
    }

    #[test]
    fn xray_recording_does_not_change_results() {
        for fabric in [
            bs_net::FabricModel::SerialFifo,
            bs_net::FabricModel::FairShare,
        ] {
            let mut c = cfg(
                comm_heavy(),
                2,
                Arch::ps(2),
                EngineConfig::mxnet_ps(),
                bs(2_000_000, 8_000_000),
            );
            c.fabric = fabric;
            c.jitter = 0.02;
            let off = run(&c);
            c.record_xray = true;
            let on = run(&c);
            assert_eq!(off.speed, on.speed, "{fabric:?}");
            assert_eq!(off.finished_at, on.finished_at, "{fabric:?}");
            assert_eq!(off.p2p_bytes, on.p2p_bytes, "{fabric:?}");
            assert_eq!(off.iter_times, on.iter_times, "{fabric:?}");
        }
    }

    #[test]
    fn metrics_recording_does_not_change_results() {
        let mut c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(2_000_000, 8_000_000),
        );
        c.jitter = 0.02;
        let off = run(&c);
        c.record_metrics = true;
        let on = run(&c);
        assert_eq!(off.speed, on.speed);
        assert_eq!(off.finished_at, on.finished_at);
        assert_eq!(off.p2p_bytes, on.p2p_bytes);
    }

    /// Attaching a scope bus is pure observation: results are
    /// byte-identical with and without it, on both fabrics, even under a
    /// fault plan exercising every emission site (iteration marks,
    /// retransmits, fault firings, NIC windows).
    #[test]
    fn scope_recording_does_not_change_results() {
        use bs_faults::{FaultPlan, RecoveryPolicy};
        use bs_scope::{Collector, ScopeBus};
        for fabric in [
            bs_net::FabricModel::SerialFifo,
            bs_net::FabricModel::FairShare,
        ] {
            let mut c = cfg(
                comm_heavy(),
                2,
                Arch::ps(2),
                EngineConfig::mxnet_ps(),
                bs(2_000_000, 8_000_000),
            );
            c.fabric = fabric;
            c.jitter = 0.02;
            c.record_trace = true;
            c.faults = Some(FaultPlan {
                loss_rate: 0.02,
                recovery: RecoveryPolicy {
                    timeout_us: 1_000,
                    max_retries: 16,
                },
                ..FaultPlan::empty()
            });
            let off = run(&c);
            let mut bus = ScopeBus::new();
            let (collector, log) = Collector::new();
            bus.subscribe(Box::new(collector));
            let on = run_observed(&c, Some(&mut bus));
            assert_eq!(off.speed, on.speed, "{fabric:?}");
            assert_eq!(off.finished_at, on.finished_at, "{fabric:?}");
            assert_eq!(off.p2p_bytes, on.p2p_bytes, "{fabric:?}");
            assert_eq!(off.iter_times, on.iter_times, "{fabric:?}");
            assert_eq!(off.outcome, on.outcome, "{fabric:?}");
            let (off_t, on_t) = (off.trace.unwrap(), on.trace.unwrap());
            assert_eq!(
                off_t.to_chrome_json(),
                on_t.to_chrome_json(),
                "{fabric:?}: traces must be byte-identical"
            );
            let kinds: std::collections::HashSet<&'static str> =
                log.events().iter().map(|e| e.kind()).collect();
            for k in [
                "iter_done",
                "iter_ema",
                "stall_window",
                "retransmit",
                "net_window",
            ] {
                assert!(kinds.contains(k), "{fabric:?}: missing {k} events");
            }
        }
    }

    #[test]
    fn pytorch_nccl_baseline_runs() {
        let r = run(&cfg(
            comm_heavy(),
            4,
            Arch::allreduce(),
            EngineConfig::pytorch_allreduce(),
            SchedulerKind::Baseline,
        ));
        assert!(r.speed > 0.0);
    }

    use crate::result::RunOutcome;
    use bs_faults::{FaultPlan, LinkDir, LinkEvent, LinkFlap, RecoveryPolicy, StragglerSpec};

    fn fault_cfg() -> WorldConfig {
        cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(2_000_000, 8_000_000),
        )
    }

    /// The empty plan is the identity: attaching it changes not one bit
    /// of the run — the "empty-plan-only" recording guarantee.
    #[test]
    fn empty_fault_plan_is_bit_identical_to_none() {
        for fabric in [
            bs_net::FabricModel::SerialFifo,
            bs_net::FabricModel::FairShare,
        ] {
            let mut c = fault_cfg();
            c.fabric = fabric;
            c.jitter = 0.02;
            let bare = run(&c);
            c.faults = Some(FaultPlan::empty());
            let planned = run(&c);
            assert_eq!(bare.speed, planned.speed, "{fabric:?}");
            assert_eq!(bare.finished_at, planned.finished_at, "{fabric:?}");
            assert_eq!(bare.iter_times, planned.iter_times, "{fabric:?}");
            assert_eq!(bare.p2p_bytes, planned.p2p_bytes, "{fabric:?}");
            assert_eq!(planned.outcome, RunOutcome::Completed, "{fabric:?}");
        }
    }

    /// Bernoulli loss with retries: the run completes degraded on both
    /// fabrics, every retry is counted, and the loss costs time.
    #[test]
    fn loss_recovers_and_reports_degraded() {
        for fabric in [
            bs_net::FabricModel::SerialFifo,
            bs_net::FabricModel::FairShare,
        ] {
            let mut c = fault_cfg();
            c.fabric = fabric;
            let clean = run(&c);
            c.faults = Some(FaultPlan {
                loss_rate: 0.02,
                recovery: RecoveryPolicy {
                    timeout_us: 1_000,
                    max_retries: 16,
                },
                ..FaultPlan::empty()
            });
            let lossy = run(&c);
            let RunOutcome::DegradedCompleted { retries, .. } = lossy.outcome else {
                panic!(
                    "{fabric:?}: expected degraded completion, got {:?}",
                    lossy.outcome
                );
            };
            assert!(retries > 0, "{fabric:?}");
            assert!(
                lossy.finished_at >= clean.finished_at,
                "{fabric:?}: recovery cannot make the run faster"
            );
        }
    }

    /// A mid-run link flap kills in-flight transfers; recovery re-drives
    /// them and the run completes with reroutes counted.
    #[test]
    fn flap_kills_in_flight_transfers_and_recovers() {
        for fabric in [
            bs_net::FabricModel::SerialFifo,
            bs_net::FabricModel::FairShare,
        ] {
            let mut c = fault_cfg();
            c.fabric = fabric;
            // Worker 0's NIC drops for 30 ms in the middle of iteration-1
            // comm (the first window where transfers are on the wire).
            c.faults = Some(FaultPlan {
                flaps: vec![LinkFlap {
                    node: 0,
                    from_us: 40_000,
                    to_us: 70_000,
                }],
                recovery: RecoveryPolicy {
                    timeout_us: 1_000,
                    max_retries: 8,
                },
                ..FaultPlan::empty()
            });
            let r = run(&c);
            let RunOutcome::DegradedCompleted { retries, reroutes } = r.outcome else {
                panic!(
                    "{fabric:?}: expected degraded completion, got {:?}",
                    r.outcome
                );
            };
            assert!(reroutes > 0, "{fabric:?}: the flap must kill something");
            assert!(retries >= reroutes, "{fabric:?}");
        }
    }

    /// Degrading a NIC mid-run slows the run down; restoring it later
    /// still leaves the total behind the fault-free run.
    #[test]
    fn link_degradation_costs_time() {
        let mut c = fault_cfg();
        let clean = run(&c);
        c.faults = Some(FaultPlan {
            link_events: vec![
                LinkEvent {
                    at_us: 20_000,
                    node: 2,
                    dir: LinkDir::Down,
                    scale: 0.25,
                },
                LinkEvent {
                    at_us: 120_000,
                    node: 2,
                    dir: LinkDir::Down,
                    scale: 1.0,
                },
            ],
            ..FaultPlan::empty()
        });
        let degraded = run(&c);
        assert_eq!(degraded.outcome, RunOutcome::Completed, "nothing was lost");
        assert!(
            degraded.finished_at > clean.finished_at,
            "a 4x slower shard downlink must cost wall time: {} vs {}",
            degraded.finished_at,
            clean.finished_at
        );
    }

    /// A straggling worker drags the whole synchronous job.
    #[test]
    fn straggler_slows_the_job() {
        let mut c = fault_cfg();
        let clean = run(&c);
        c.faults = Some(FaultPlan {
            stragglers: vec![StragglerSpec {
                worker: 1,
                from_iter: 2,
                to_iter: 8,
                factor: 3.0,
            }],
            ..FaultPlan::empty()
        });
        let slow = run(&c);
        assert_eq!(slow.outcome, RunOutcome::Completed);
        assert!(
            slow.finished_at > clean.finished_at,
            "a 3x straggler must cost wall time"
        );
    }

    /// Exhausting the retry cap aborts the run with a reason instead of
    /// deadlocking the event loop.
    #[test]
    fn retry_cap_exhaustion_fails_the_run() {
        let mut c = fault_cfg();
        c.faults = Some(FaultPlan {
            loss_rate: 0.95,
            recovery: RecoveryPolicy {
                timeout_us: 100,
                max_retries: 1,
            },
            ..FaultPlan::empty()
        });
        let r = run(&c);
        let RunOutcome::Failed { reason } = r.outcome else {
            panic!("expected failure, got {:?}", r.outcome);
        };
        assert!(reason.contains("retransmit attempts"), "{reason}");
        assert_eq!(r.speed, 0.0);
        assert!(r.iter_times.is_empty());
    }

    /// Ring collectives lose and retry too, in both baseline (fused) and
    /// scheduled modes.
    #[test]
    fn ring_loss_recovers_on_both_graph_modes() {
        for sched in [SchedulerKind::Baseline, bs(8_000_000, 16_000_000)] {
            let mut c = cfg(
                comm_heavy(),
                4,
                Arch::allreduce(),
                EngineConfig::mxnet_allreduce(),
                sched,
            );
            // Fused baseline graphs run few collectives, so the rate must
            // be high enough that the fixed seed drops at least one.
            c.faults = Some(FaultPlan {
                loss_rate: 0.15,
                recovery: RecoveryPolicy {
                    timeout_us: 1_000,
                    max_retries: 16,
                },
                ..FaultPlan::empty()
            });
            let r = run(&c);
            let RunOutcome::DegradedCompleted { retries, .. } = r.outcome else {
                panic!(
                    "{sched:?}: expected degraded completion, got {:?}",
                    r.outcome
                );
            };
            assert!(retries > 0, "{sched:?}");
        }
    }

    /// Fault runs are deterministic: same seed and plan, same everything;
    /// a different seed shifts the loss stream.
    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let mut c = fault_cfg();
        c.jitter = 0.02;
        c.faults = Some(FaultPlan {
            loss_rate: 0.02,
            recovery: RecoveryPolicy {
                timeout_us: 1_000,
                max_retries: 16,
            },
            ..FaultPlan::empty()
        });
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a.speed, b.speed);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.outcome, b.outcome);
        c.seed = 99;
        let d = run(&c);
        assert_ne!(a.finished_at, d.finished_at);
    }

    /// Fault telemetry counters ride the normal metrics channel, and the
    /// reclaimed credit shows up on the scheduler's own ledger.
    #[test]
    fn fault_counters_land_in_metrics() {
        let mut c = fault_cfg();
        c.record_metrics = true;
        c.faults = Some(FaultPlan {
            loss_rate: 0.02,
            recovery: RecoveryPolicy {
                timeout_us: 1_000,
                max_retries: 16,
            },
            ..FaultPlan::empty()
        });
        let r = run(&c);
        let ms = r.metrics.as_ref().expect("metrics recorded");
        let retries = ms.get_counter("faults/retries").expect("retries counter");
        assert!(retries > 0);
        assert!(ms.get_counter("faults/dropped_bytes").unwrap_or(0) > 0);
        assert_eq!(
            ms.get_counter("faults/reclaimed_bytes"),
            ms.get_counter("faults/dropped_bytes"),
            "delivery-gated credit: every dropped byte was reclaimed"
        );
        // The schedulers' own reclaim ledgers agree in total.
        let sched_reclaimed: u64 = (0..2)
            .map(|w| {
                ms.get_counter(&format!("worker{w}/sched/lane0/reclaimed_bytes"))
                    .unwrap_or(0)
                    + ms.get_counter(&format!("worker{w}/sched/lane1/reclaimed_bytes"))
                        .unwrap_or(0)
            })
            .sum();
        assert_eq!(
            Some(sched_reclaimed),
            ms.get_counter("faults/reclaimed_bytes")
        );
    }
}
