//! The co-simulation loop: engines × schedulers × comm backends.

use bs_comm::{AllReduceConfig, ParamServer, PartitionKey, PsConfig, RingAllReduce, ShardAssign};
use bs_core::{
    partition_tensor, ByteScheduler, CommKind, CommTask, FifoScheduler, P3Scheduler, Scheduler,
    WorkItem,
};
use bs_engine::{EngineEvent, ExternalRole, IterDag, WorkerEngine};
use bs_net::{Fabric, NetEvent, NodeId};
use bs_sim::{SimRng, SimTime};

use crate::config::{Arch, SchedulerKind, WorldConfig};
use crate::plugin::{ArPluginState, PsPluginState};
use crate::result::RunResult;
use crate::token::Token;
use bs_engine::{NodeKind, Pass};
use bs_sim::Trace;

/// Internal event routed between subsystems during one timestamp.
enum Ev {
    Engine(usize, EngineEvent),
    Net(NetEvent),
    Ring(bs_comm::CompletedOp),
}

// One `Backend` exists per run, so the Ps/Ring size gap costs nothing.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Ps {
        network: Fabric,
        ps: ParamServer,
    },
    Ring {
        ring: RingAllReduce,
        /// Baseline fusion threshold (bytes); irrelevant for scheduled runs.
        fusion_bytes: u64,
        /// Baseline fusion-cycle launch delay; zero for scheduled runs.
        cycle_delay: SimTime,
    },
}

struct World {
    num_workers: usize,
    /// PS shard count (0 for all-reduce runs).
    num_servers: usize,
    iters: u64,
    baseline_graph: bool,
    /// Per-tensor partition byte sizes.
    partitions: Vec<Vec<u64>>,
    /// Per-tensor total bytes.
    tensor_bytes: Vec<u64>,
    /// Per-tensor scheduling priority.
    priorities: Vec<u64>,
    engines: Vec<WorkerEngine>,
    /// PS: one per worker. All-reduce: a single master in slot 0 (§5).
    scheds: Vec<Box<dyn Scheduler>>,
    backend: Backend,
    ps_plug: Option<PsPluginState>,
    ar_plug: Option<ArPluginState>,
    /// Co-tenant traffic configuration (PS only).
    background: Option<crate::config::BackgroundLoad>,
    /// Pending co-tenant re-submissions: (when, src, dst, tag).
    bg_timers: std::collections::BTreeSet<(SimTime, usize, usize, u64)>,
    /// Gap jitter for co-tenant bursts (real tenants are not
    /// phase-locked; without jitter, deterministic bursts can starve a
    /// connection forever on the FIFO fabric).
    bg_rng: SimRng,
    /// Worker 0's compute-iteration completion times.
    marks: Vec<SimTime>,
    /// Scheduled all-reduce: partitions released by the master scheduler,
    /// awaiting fusion onto the ring (FIFO preserves the priority order
    /// the scheduler chose).
    ar_release_queue: std::collections::VecDeque<(u64, u64)>, // (token, bytes)
    /// Scheduled all-reduce: in-flight fused ops by tag.
    ar_sched_batches: std::collections::HashMap<u64, Vec<(u64, u64)>>,
    ar_next_batch: u64,
    /// Reusable buffer for scheduler polls (`drain_sched` runs on every
    /// completion; this keeps the hot path allocation-free).
    sched_scratch: Vec<WorkItem>,
    now: SimTime,
}

/// Runs one configuration to completion and reports the measured speed.
///
/// Panics with a diagnostic if the configuration deadlocks — a scheduling
/// policy that loses work or a dependency cycle is a bug, not a data point.
pub fn run(cfg: &WorldConfig) -> RunResult {
    let mut world = World::build(cfg);
    world.run_loop();
    world.into_result(cfg)
}

impl World {
    fn build(cfg: &WorldConfig) -> World {
        assert!(cfg.num_workers >= 1, "need at least one worker");
        assert!(
            cfg.warmup + 2 <= cfg.iters,
            "need at least two measured iterations after warmup"
        );
        let n_layers = cfg.model.num_layers();

        let engine_cfg = if cfg.scheduler.needs_scheduled_engine() {
            cfg.engine.scheduled()
        } else {
            cfg.engine
        };
        let template = IterDag::build(n_layers, engine_cfg);

        let partition_unit = match cfg.scheduler {
            SchedulerKind::Baseline => None,
            SchedulerKind::FifoPartitioned { partition } => Some(partition),
            SchedulerKind::FifoCredit { partition, .. } => Some(partition),
            SchedulerKind::P3 => Some(P3Scheduler::DEFAULT_PARTITION),
            SchedulerKind::ByteScheduler { partition, .. } => Some(partition),
        };

        let tensor_bytes: Vec<u64> = cfg.model.layers.iter().map(|l| l.param_bytes).collect();
        // MXNet-style big-array splitting: the vanilla PS baseline slices
        // any tensor above 1 MB across the server shards (balanced
        // placement), while keeping the *pull-after-whole-push* key-level
        // dependency (§2.2). Scheduling policies use their own δ instead.
        const BIGARRAY_BOUND: u64 = 1 << 20;
        let baseline_split_servers = match (cfg.scheduler, cfg.arch) {
            (
                SchedulerKind::Baseline,
                Arch::Ps {
                    num_servers,
                    baseline_bigarray_split: true,
                    ..
                },
            ) => Some(num_servers as u64),
            _ => None,
        };
        if cfg.per_tensor_partition.is_some() {
            assert!(
                matches!(cfg.scheduler, SchedulerKind::ByteScheduler { .. }),
                "per-tensor partition sizes require the ByteScheduler policy"
            );
            assert_eq!(
                cfg.per_tensor_partition.as_ref().map(Vec::len),
                Some(n_layers),
                "per-tensor partition override must cover every layer"
            );
        }
        let partitions: Vec<Vec<u64>> = (0..n_layers)
            .map(|i| {
                let unit = if let Some(v) = &cfg.per_tensor_partition {
                    Some(v[i].max(1))
                } else if let Some(servers) = baseline_split_servers {
                    let slices = servers.min(tensor_bytes[i].div_ceil(BIGARRAY_BOUND)).max(1);
                    Some(tensor_bytes[i].div_ceil(slices).max(1))
                } else {
                    partition_unit
                };
                partition_tensor(
                    &CommTask {
                        tensor: i as u32,
                        kind: CommKind::Push,
                        bytes: tensor_bytes[i],
                    },
                    unit,
                )
                .iter()
                .map(|s| s.bytes)
                .collect()
            })
            .collect();

        // FifoCredit isolates the credit knob: all priorities equal, so
        // the ByteScheduler queue degenerates to arrival order.
        let priorities: Vec<u64> = if let Some(p) = &cfg.priority_override {
            assert_eq!(
                p.len(),
                n_layers,
                "priority override must cover every layer"
            );
            p.clone()
        } else if matches!(cfg.scheduler, SchedulerKind::FifoCredit { .. }) {
            vec![0; n_layers]
        } else {
            (0..n_layers)
                .map(|i| cfg.engine.kind.priority_of_layer(i, n_layers))
                .collect()
        };

        let lanes = cfg.arch.num_lanes();
        let num_scheds = match cfg.arch {
            Arch::Ps { .. } => cfg.num_workers,
            Arch::AllReduce { .. } => 1,
        };
        let scheds: Vec<Box<dyn Scheduler>> = (0..num_scheds)
            .map(|_| -> Box<dyn Scheduler> {
                match cfg.scheduler {
                    SchedulerKind::Baseline => Box::new(FifoScheduler::new(lanes)),
                    SchedulerKind::FifoPartitioned { partition } => {
                        Box::new(FifoScheduler::with_partition(Some(partition), lanes))
                    }
                    SchedulerKind::P3 => Box::new(P3Scheduler::new(lanes)),
                    SchedulerKind::ByteScheduler { partition, credit }
                    | SchedulerKind::FifoCredit { partition, credit } => {
                        Box::new(ByteScheduler::new(partition, credit, lanes))
                    }
                }
            })
            .collect();

        let mut root_rng = SimRng::new(cfg.seed);
        let engines: Vec<WorkerEngine> = (0..cfg.num_workers)
            .map(|w| {
                let jitter = if cfg.jitter > 0.0 {
                    Some((root_rng.fork(w as u64), cfg.jitter))
                } else {
                    None
                };
                WorkerEngine::new(template.clone(), &cfg.model, cfg.iters, jitter)
            })
            .collect();

        let (backend, ps_plug, ar_plug) = match cfg.arch {
            Arch::Ps {
                mode, num_servers, ..
            } => {
                let network = Fabric::new(cfg.fabric, cfg.num_workers + num_servers, cfg.net);
                // Scheduling policies spread δ-sized keys round-robin
                // (balanced); the unsplit baseline places whole tensors
                // round-robin — the naive assignment whose imbalance §6.2
                // calls out.
                let assign = if partition_unit.is_some() || baseline_split_servers.is_some() {
                    ShardAssign::PerPartition
                } else {
                    ShardAssign::PerTensor
                };
                let ps = ParamServer::new(PsConfig {
                    num_workers: cfg.num_workers,
                    num_servers,
                    assign,
                    mode,
                });
                (
                    Backend::Ps { network, ps },
                    Some(PsPluginState::new(cfg.num_workers, n_layers)),
                    None,
                )
            }
            Arch::AllReduce {
                baseline_fusion_bytes,
                baseline_cycle_delay_us,
            } => {
                assert!(cfg.num_workers >= 2, "a ring needs at least two workers");
                let ring = RingAllReduce::new(AllReduceConfig::new(cfg.num_workers, cfg.net));
                (
                    Backend::Ring {
                        ring,
                        fusion_bytes: baseline_fusion_bytes.unwrap_or(0),
                        cycle_delay: SimTime::from_micros(baseline_cycle_delay_us),
                    },
                    None,
                    Some(ArPluginState::new(cfg.num_workers, n_layers)),
                )
            }
        };

        let num_servers = match cfg.arch {
            Arch::Ps { num_servers, .. } => num_servers,
            Arch::AllReduce { .. } => 0,
        };
        let mut engines = engines;
        let mut backend = backend;
        if cfg.record_trace {
            for e in &mut engines {
                e.enable_trace();
            }
            match &mut backend {
                Backend::Ps { network, .. } => network.enable_trace(),
                Backend::Ring { ring, .. } => ring.enable_trace(),
            }
        }
        World {
            num_workers: cfg.num_workers,
            num_servers,
            iters: cfg.iters,
            baseline_graph: !cfg.scheduler.needs_scheduled_engine(),
            partitions,
            tensor_bytes,
            priorities,
            engines,
            scheds,
            backend,
            ps_plug,
            ar_plug,
            background: cfg.background,
            bg_timers: std::collections::BTreeSet::new(),
            bg_rng: SimRng::new(cfg.seed ^ 0xB6_0000),
            marks: Vec::new(),
            ar_release_queue: std::collections::VecDeque::new(),
            ar_sched_batches: std::collections::HashMap::new(),
            ar_next_batch: 0,
            sched_scratch: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// Tag bit marking a co-tenant (background) transfer; real subtask
    /// tokens never set it (iterations stay far below 2^15).
    const BG_TAG: u64 = 1 << 63;

    /// Submits the co-tenant's initial bursts: one per worker NIC in each
    /// direction, looped on delivery (see `handle_net`).
    fn seed_background(&mut self) {
        let Some(bg) = self.background else { return };
        let Backend::Ps { network, ps } = &mut self.backend else {
            assert!(
                self.background.is_none(),
                "background load is modelled for PS runs only"
            );
            return;
        };
        let _ = ps;
        let num_servers = self.num_servers;
        for w in 0..self.num_workers {
            let server = NodeId(self.num_workers + (w % num_servers));
            // Downlink contender (fights the worker's pulls)...
            network.submit(
                self.now,
                server,
                NodeId(w),
                bg.burst_bytes,
                Self::BG_TAG | (2 * w as u64),
            );
            // ...and an uplink contender (fights its pushes).
            network.submit(
                self.now,
                NodeId(w),
                server,
                bg.burst_bytes,
                Self::BG_TAG | (2 * w as u64 + 1),
            );
        }
    }

    fn run_loop(&mut self) {
        self.seed_background();
        let mut queue: Vec<Ev> = Vec::new();
        let mut net_events: Vec<bs_net::NetEvent> = Vec::new();
        let mut spins_at_same_instant: u64 = 0;
        let mut last_now = SimTime::ZERO;
        let debug_loop = std::env::var("BS_DEBUG_LOOP").is_ok();
        loop {
            if self.now == last_now {
                spins_at_same_instant += 1;
                assert!(
                    spins_at_same_instant < 1_000_000,
                    "event loop spinning at {} without progress",
                    self.now
                );
            } else {
                last_now = self.now;
                spins_at_same_instant = 0;
            }
            if debug_loop {
                self.debug_progress_line(spins_at_same_instant);
            }
            // Drain all cascades at the current instant. `handle` pushes
            // follow-on events directly onto the queue (same LIFO order
            // as the old collect-then-extend, without the Vec churn).
            while let Some(ev) = queue.pop() {
                self.handle(ev, &mut queue);
            }
            if self
                .engines
                .iter()
                .all(|e| e.done_iterations() == self.iters)
            {
                return;
            }
            // Find the next instant anything happens.
            let mut t = SimTime::MAX;
            for e in &self.engines {
                t = t.min(e.next_event_time());
            }
            if let Some(&(bt, _, _, _)) = self.bg_timers.first() {
                t = t.min(bt);
            }
            match &self.backend {
                Backend::Ps { network, .. } => t = t.min(network.next_event_time()),
                Backend::Ring { ring, .. } => t = t.min(ring.next_event_time()),
            }
            if t.is_never() {
                panic!(
                    "simulation stalled at {}: iterations done {:?}, queued work {:?}",
                    self.now,
                    self.engines
                        .iter()
                        .map(|e| e.done_iterations())
                        .collect::<Vec<_>>(),
                    self.scheds.iter().map(|s| s.queued()).collect::<Vec<_>>()
                );
            }
            self.now = t;
            // Fire due co-tenant bursts.
            while let Some(&(bt, src, dst, tag)) = self.bg_timers.first() {
                if bt > t {
                    break;
                }
                self.bg_timers.pop_first();
                if let Backend::Ps { network, .. } = &mut self.backend {
                    network.submit(
                        t,
                        NodeId(src),
                        NodeId(dst),
                        self.background.expect("bg configured").burst_bytes,
                        tag,
                    );
                }
            }
            for w in 0..self.engines.len() {
                let e = &mut self.engines[w];
                // An engine whose next GPU-op end lies beyond `t` (and
                // with nothing buffered) cannot emit anything; skip it.
                if e.next_event_time() > t && !e.has_pending() {
                    continue;
                }
                e.advance_queued(t);
                for ev in e.drain_pending() {
                    queue.push(Ev::Engine(w, ev));
                }
            }
            match &mut self.backend {
                Backend::Ps { network, .. } => {
                    if network.wants_advance(t) {
                        network.advance_into(t, &mut net_events);
                        for c in net_events.drain(..) {
                            queue.push(Ev::Net(c));
                        }
                    }
                }
                Backend::Ring { ring, .. } => {
                    if ring.next_event_time() <= t {
                        for c in ring.advance(t) {
                            queue.push(Ev::Ring(c));
                        }
                    }
                }
            }
        }
    }

    /// `BS_DEBUG_LOOP=1` diagnostics: a progress line every 100k loop
    /// turns, with subsystem queue depths — the first tool to reach for
    /// when a configuration seems wedged.
    fn debug_progress_line(&self, spins: u64) {
        static COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let c = COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if !c.is_multiple_of(100_000) {
            return;
        }
        let (nf, nq) = match &self.backend {
            Backend::Ps { network, .. } => (network.in_flight(), network.queued()),
            Backend::Ring { ring, .. } => (ring.outstanding(), 0),
        };
        eprintln!(
            "loop {c}: now={} spins={spins} iters_done={:?} marks={} sched_q={:?}              net_flight={nf} net_q={nq} bg_timers={}",
            self.now,
            self.engines
                .iter()
                .map(|e| e.done_iterations())
                .collect::<Vec<_>>(),
            self.marks.len(),
            self.scheds.iter().map(|s| s.queued()).collect::<Vec<_>>(),
            self.bg_timers.len()
        );
        if let Backend::Ps { network, .. } = &self.backend {
            for row in network.debug_stalled().iter().take(4) {
                eprintln!("  stalled: {row:?}");
            }
        }
    }

    fn handle(&mut self, ev: Ev, out: &mut Vec<Ev>) {
        match ev {
            Ev::Engine(w, event) => self.handle_engine(w, event),
            Ev::Net(c) => self.handle_net(c, out),
            Ev::Ring(c) => self.handle_ring(c, out),
        }
    }

    fn handle_engine(&mut self, w: usize, event: EngineEvent) {
        match event {
            EngineEvent::ComputeIterDone { iter: _, at } => {
                if w == 0 {
                    self.marks.push(at);
                }
            }
            EngineEvent::AllDone { .. } => {}
            EngineEvent::ExternalReady { iter, role, .. } => match role {
                ExternalRole::ProxyReady(i) | ExternalRole::Push(i)
                    if matches!(self.backend, Backend::Ps { .. }) =>
                {
                    self.on_grad_ready_ps(w, i, iter);
                }
                ExternalRole::ProxyReady(i) | ExternalRole::AllReduce(i) => {
                    self.on_grad_ready_ar(i, iter);
                }
                ExternalRole::Pull(_) | ExternalRole::ProxyFinish(_) => {}
                other => panic!("role {other:?} unexpected for this backend"),
            },
        }
    }

    /// Worker `w`'s gradient for tensor `i` is ready: submit its push
    /// subtasks to the worker's scheduler.
    fn on_grad_ready_ps(&mut self, w: usize, i: usize, iter: u64) {
        let parts = self.partitions[i].len() as u32;
        self.ps_plug
            .as_mut()
            .expect("PS plugin")
            .on_grad_ready(w, i, iter, parts);
        for (p, &bytes) in self.partitions[i].iter().enumerate() {
            let token = Token {
                iter,
                worker: w,
                kind: CommKind::Push,
                tensor: i as u32,
                part: p as u32,
            }
            .pack();
            self.scheds[w].submit(
                self.now,
                WorkItem {
                    lane: CommKind::Push.lane(),
                    priority: self.priorities[i],
                    bytes,
                    token,
                },
            );
        }
        self.drain_sched(w);
    }

    /// A worker reported tensor `i` ready for all-reduce. When the last
    /// worker reports, the master submits the collective (§5).
    fn on_grad_ready_ar(&mut self, i: usize, iter: u64) {
        let parts = if self.baseline_graph {
            1
        } else {
            self.partitions[i].len() as u32
        };
        let all_ready = self
            .ar_plug
            .as_mut()
            .expect("AR plugin")
            .on_worker_ready(i, iter, parts);
        if !all_ready {
            return;
        }
        if self.baseline_graph {
            self.ar_plug
                .as_mut()
                .unwrap()
                .queue_for_fusion(i as u32, iter, self.tensor_bytes[i]);
            self.maybe_submit_fused();
        } else {
            for (p, &bytes) in self.partitions[i].iter().enumerate() {
                let token = Token {
                    iter,
                    worker: 0,
                    kind: CommKind::AllReduce,
                    tensor: i as u32,
                    part: p as u32,
                }
                .pack();
                self.scheds[0].submit(
                    self.now,
                    WorkItem {
                        lane: 0,
                        priority: self.priorities[i],
                        bytes,
                        token,
                    },
                );
            }
            self.drain_sched(0);
        }
    }

    /// Hands everything the scheduler releases to the wire.
    fn drain_sched(&mut self, s: usize) {
        let mut items = std::mem::take(&mut self.sched_scratch);
        debug_assert!(items.is_empty());
        self.scheds[s].poll_into(self.now, &mut items);
        let submitted_to_ring = !items.is_empty() && matches!(self.backend, Backend::Ring { .. });
        for item in items.drain(..) {
            match &mut self.backend {
                Backend::Ps { network, ps } => {
                    let tok = Token::unpack(item.token);
                    let key = PartitionKey {
                        tensor: tok.tensor,
                        part: tok.part,
                    };
                    let shard = ps.shard_of(key);
                    match tok.kind {
                        CommKind::Push => {
                            network.submit(
                                self.now,
                                NodeId(tok.worker),
                                shard,
                                item.bytes,
                                item.token,
                            );
                        }
                        CommKind::Pull => {
                            network.submit(
                                self.now,
                                shard,
                                NodeId(tok.worker),
                                item.bytes,
                                item.token,
                            );
                        }
                        CommKind::AllReduce => unreachable!("all-reduce token on PS backend"),
                    }
                }
                Backend::Ring { .. } => {
                    // Released partitions pass through Horovod-style
                    // fusion before reaching the ring (§5: ByteScheduler
                    // wraps Horovod's DistributedOptimizer).
                    self.ar_release_queue.push_back((item.token, item.bytes));
                }
            }
        }
        self.sched_scratch = items;
        if submitted_to_ring {
            self.maybe_submit_scheduled_fused();
        }
    }

    /// Scheduled all-reduce: when the ring is idle, fuse the released
    /// partitions at the head of the queue (up to the fusion threshold)
    /// into one collective. Event-driven — no Horovod cycle delay, one of
    /// ByteScheduler's implementation advantages.
    fn maybe_submit_scheduled_fused(&mut self) {
        let Backend::Ring {
            ring, fusion_bytes, ..
        } = &mut self.backend
        else {
            return;
        };
        if ring.outstanding() > 0 || self.ar_release_queue.is_empty() {
            return;
        }
        let limit = (*fusion_bytes).max(1);
        let mut members = Vec::new();
        let mut total = 0u64;
        while let Some(&(token, bytes)) = self.ar_release_queue.front() {
            if !members.is_empty() && total + bytes > limit {
                break;
            }
            self.ar_release_queue.pop_front();
            members.push((token, bytes));
            total += bytes;
        }
        let id = self.ar_next_batch;
        self.ar_next_batch += 1;
        self.ar_sched_batches.insert(id, members);
        ring.submit(self.now, total, id);
    }

    /// Baseline all-reduce: launch the next fused collective if the ring
    /// is idle (ring FIFO means pre-queueing buys nothing, and waiting
    /// maximises fusion — Horovod's cycle behaviour).
    fn maybe_submit_fused(&mut self) {
        let Backend::Ring {
            ring,
            fusion_bytes,
            cycle_delay,
        } = &mut self.backend
        else {
            return;
        };
        if ring.outstanding() > 0 {
            return;
        }
        if let Some((id, bytes)) = self
            .ar_plug
            .as_mut()
            .expect("AR plugin")
            .next_fused_batch(*fusion_bytes)
        {
            ring.submit_after(self.now, *cycle_delay, bytes, id);
        }
    }

    /// Queues one pull partition on the worker's scheduler.
    fn submit_pull(&mut self, worker: usize, tensor: usize, iter: u64, part: u32) {
        let token = Token {
            iter,
            worker,
            kind: CommKind::Pull,
            tensor: tensor as u32,
            part,
        }
        .pack();
        let bytes = self.partitions[tensor][part as usize];
        self.scheds[worker].submit(
            self.now,
            WorkItem {
                lane: CommKind::Pull.lane(),
                priority: self.priorities[tensor],
                bytes,
                token,
            },
        );
    }

    fn handle_net(&mut self, ev: NetEvent, out: &mut Vec<Ev>) {
        // Co-tenant bursts loop forever: when one delivers, schedule the
        // next after the configured gap. Releases are ignored.
        if let NetEvent::Delivered(c) = ev {
            if c.tag & Self::BG_TAG != 0 {
                let bg = self.background.expect("bg transfer without config");
                // Jittered gap: uniform in [0.5g, 1.5g] (plus up to 50 µs
                // even at g = 0) so the co-tenant's cycle drifts relative
                // to the job's — as real cross traffic does.
                let g = bg.gap_us as f64;
                let gap = self.bg_rng.uniform(0.5 * g, 1.5 * g + 50.0);
                self.bg_timers.insert((
                    self.now + SimTime::from_micros(gap as u64),
                    c.src.0,
                    c.dst.0,
                    c.tag,
                ));
                return;
            }
        }
        if let NetEvent::Released(c) = ev {
            if c.tag & Self::BG_TAG != 0 {
                return;
            }
        }
        let c = match ev {
            NetEvent::Released(c) => {
                // Wire accepted the message: release-gated schedulers
                // (P3's stop-and-wait) get their credit back now.
                let tok = Token::unpack(c.tag);
                if self.scheds[tok.worker].credit_on_release() {
                    self.scheds[tok.worker].complete(self.now, tok.kind.lane(), c.bytes);
                    self.drain_sched(tok.worker);
                }
                return;
            }
            NetEvent::Delivered(c) => c,
        };
        let tok = Token::unpack(c.tag);
        let (w, i) = (tok.worker, tok.tensor as usize);
        let credit_on_delivery = !self.scheds[w].credit_on_release();
        match tok.kind {
            CommKind::Push => {
                if credit_on_delivery {
                    self.scheds[w].complete(self.now, CommKind::Push.lane(), c.bytes);
                    self.drain_sched(w);
                }
                let all_pushed = self
                    .ps_plug
                    .as_mut()
                    .expect("PS plugin")
                    .on_push_part_done(w, i, tok.iter);
                if all_pushed && self.baseline_graph {
                    self.engines[w].complete_external_queued(
                        self.now,
                        tok.iter,
                        ExternalRole::Push(i),
                    );
                    for ev in self.engines[w].drain_pending() {
                        out.push(Ev::Engine(w, ev));
                    }
                }
                // Aggregation bookkeeping: which pulls became legal?
                let Backend::Ps { ps, .. } = &mut self.backend else {
                    unreachable!("push completion without PS backend")
                };
                let key = PartitionKey {
                    tensor: tok.tensor,
                    part: tok.part,
                };
                let grants = ps.on_push_complete(tok.iter, key, w);
                for g in grants {
                    if self.baseline_graph {
                        // Key-level dependency: the worker pulls the
                        // tensor only once every slice is aggregated.
                        let all_granted = self
                            .ps_plug
                            .as_mut()
                            .expect("PS plugin")
                            .on_grant_part(g.worker, i, tok.iter);
                        if all_granted {
                            for p in 0..self.partitions[i].len() {
                                self.submit_pull(g.worker, i, tok.iter, p as u32);
                            }
                            self.drain_sched(g.worker);
                        }
                    } else {
                        // Partition-level dependency: partial pull after
                        // partial push (Theorem 1 condition 3).
                        self.submit_pull(g.worker, i, tok.iter, g.key.part);
                        self.drain_sched(g.worker);
                    }
                }
            }
            CommKind::Pull => {
                if credit_on_delivery {
                    self.scheds[w].complete(self.now, CommKind::Pull.lane(), c.bytes);
                    self.drain_sched(w);
                }
                let all_pulled = self
                    .ps_plug
                    .as_mut()
                    .expect("PS plugin")
                    .on_pull_part_done(w, i, tok.iter);
                if all_pulled {
                    let (iter, role) = if self.baseline_graph {
                        (tok.iter, ExternalRole::Pull(i))
                    } else {
                        (tok.iter + 1, ExternalRole::ProxyFinish(i))
                    };
                    self.engines[w].complete_external_queued(self.now, iter, role);
                    for ev in self.engines[w].drain_pending() {
                        out.push(Ev::Engine(w, ev));
                    }
                }
            }
            CommKind::AllReduce => unreachable!("collective token on the p2p network"),
        }
    }

    fn handle_ring(&mut self, c: bs_comm::CompletedOp, out: &mut Vec<Ev>) {
        if self.baseline_graph {
            let batch = self.ar_plug.as_mut().expect("AR plugin").take_batch(c.tag);
            for (tensor, iter) in batch.tensors {
                self.ar_plug
                    .as_mut()
                    .unwrap()
                    .complete_whole_tensor(tensor as usize, iter);
                for w in 0..self.num_workers {
                    self.engines[w].complete_external_queued(
                        self.now,
                        iter,
                        ExternalRole::AllReduce(tensor as usize),
                    );
                    for ev in self.engines[w].drain_pending() {
                        out.push(Ev::Engine(w, ev));
                    }
                }
            }
            self.maybe_submit_fused();
        } else {
            let members = self
                .ar_sched_batches
                .remove(&c.tag)
                .expect("unknown scheduled batch");
            for (token, bytes) in members {
                let tok = Token::unpack(token);
                self.scheds[0].complete(self.now, 0, bytes);
                let done = self
                    .ar_plug
                    .as_mut()
                    .expect("AR plugin")
                    .on_part_done(tok.tensor as usize, tok.iter);
                if done {
                    for w in 0..self.num_workers {
                        self.engines[w].complete_external_queued(
                            self.now,
                            tok.iter + 1,
                            ExternalRole::ProxyFinish(tok.tensor as usize),
                        );
                        for ev in self.engines[w].drain_pending() {
                            out.push(Ev::Engine(w, ev));
                        }
                    }
                }
            }
            self.drain_sched(0);
            self.maybe_submit_scheduled_fused();
        }
    }

    fn into_result(mut self, cfg: &WorldConfig) -> RunResult {
        let trace = cfg.record_trace.then(|| self.assemble_trace());
        let peak_util = match &self.backend {
            Backend::Ps { network, .. } => network.peak_port_utilisation(self.now),
            Backend::Ring { .. } => 0.0,
        };
        let (p2p, coll) = match &self.backend {
            Backend::Ps { network, .. } => (network.bytes_delivered(), 0),
            Backend::Ring { ring, .. } => (0, ring.bytes_reduced()),
        };
        let (comm_events, peak_in_flight) = match &self.backend {
            Backend::Ps { network, .. } => {
                (network.transfers_delivered(), network.peak_in_flight())
            }
            Backend::Ring { ring, .. } => (ring.ops_reduced(), 0),
        };
        let mut result = RunResult::from_iteration_marks(
            &self.marks,
            cfg.warmup as usize,
            cfg.global_batch(),
            cfg.model.sample_unit.label(),
            cfg.scheduler.label(),
            p2p,
            coll,
            self.now,
        );
        result.trace = trace;
        result.peak_port_utilisation = peak_util;
        result.comm_events = comm_events;
        result.peak_in_flight = peak_in_flight;
        result
    }

    /// Collects the recorded spans from every subsystem into one trace
    /// with human-readable track and span names.
    fn assemble_trace(&mut self) -> Trace {
        let mut trace = Trace::new();
        for (w, engine) in self.engines.iter_mut().enumerate() {
            let dag = engine.dag().clone();
            for (iter, node, start, end) in engine.take_trace() {
                let name = match dag.nodes[node].kind {
                    NodeKind::Compute { layer, pass } => match pass {
                        Pass::Forward => format!("fwd{layer}@it{iter}"),
                        Pass::Backward => format!("bwd{layer}@it{iter}"),
                    },
                    _ => continue,
                };
                trace.push(name, format!("worker{w}/gpu"), start, end);
            }
        }
        match &mut self.backend {
            Backend::Ps { network, .. } => {
                for (tag, src, dst, start, end) in network.take_trace() {
                    if tag & Self::BG_TAG != 0 {
                        trace.push(
                            "co-tenant burst",
                            format!("node{src}->node{dst}/bg"),
                            start,
                            end,
                        );
                        continue;
                    }
                    let tok = Token::unpack(tag);
                    let (name, track) = match tok.kind {
                        CommKind::Push => (
                            format!("push t{}.p{}@it{}", tok.tensor, tok.part, tok.iter),
                            format!("worker{}/up", tok.worker),
                        ),
                        CommKind::Pull => (
                            format!("pull t{}.p{}@it{}", tok.tensor, tok.part, tok.iter),
                            format!("worker{}/down", tok.worker),
                        ),
                        CommKind::AllReduce => unreachable!("collective on p2p fabric"),
                    };
                    trace.push(name, track, start, end);
                }
            }
            Backend::Ring { ring, .. } => {
                for (tag, start, end) in ring.take_trace() {
                    // Scheduled batches and baseline fused batches both
                    // use opaque batch ids; name them generically.
                    trace.push(format!("allreduce batch {tag}"), "ring", start, end);
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_engine::EngineConfig;
    use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
    use bs_net::{NetConfig, Transport};

    /// A small comm-heavy model: the first layer carries a big tensor
    /// (VGG/Transformer-like inversion: big tensors near the input suffer
    /// most under FIFO).
    fn comm_heavy() -> DnnModel {
        let gpu = GpuSpec::custom(1e12, 2.0);
        ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
            .explicit(
                "l0",
                40_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .explicit(
                "l1",
                5_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .explicit(
                "l2",
                5_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .explicit(
                "l3",
                1_000_000,
                SimTime::from_millis(4),
                SimTime::from_millis(8),
            )
            .build()
    }

    fn net10g() -> NetConfig {
        NetConfig::gbps(10.0, Transport::tcp())
    }

    fn cfg(
        model: DnnModel,
        workers: usize,
        arch: Arch,
        engine: EngineConfig,
        sched: SchedulerKind,
    ) -> WorldConfig {
        let mut c = WorldConfig::new(model, workers, arch, net10g(), engine, sched);
        c.iters = 10;
        c.warmup = 2;
        c.jitter = 0.0;
        c
    }

    fn bs(partition: u64, credit: u64) -> SchedulerKind {
        SchedulerKind::ByteScheduler { partition, credit }
    }

    #[test]
    fn baseline_ps_runs_and_is_sublinear() {
        let c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        );
        let r = run(&c);
        assert!(r.speed > 0.0);
        assert!(
            r.speed < c.linear_scaling_speed(),
            "comm-heavy baseline cannot hit linear scaling"
        );
        assert!(r.p2p_bytes > 0);
    }

    #[test]
    fn bytescheduler_beats_baseline_on_ps() {
        let base = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        ));
        let tuned = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(2_000_000, 8_000_000),
        ));
        assert!(
            tuned.speed > base.speed,
            "ByteScheduler {} must beat baseline {}",
            tuned.speed,
            base.speed
        );
    }

    #[test]
    fn barrier_engine_is_slower_than_per_layer_engine() {
        let mxnet = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        ));
        let tf = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::tensorflow_ps(),
            SchedulerKind::Baseline,
        ));
        assert!(
            tf.speed <= mxnet.speed + 1e-9,
            "the global barrier cannot help: tf {} vs mxnet {}",
            tf.speed,
            mxnet.speed
        );
    }

    #[test]
    fn crossing_the_barrier_recovers_the_gap() {
        // With ByteScheduler, the TF-style engine should perform like the
        // MXNet-style engine: the barrier is crossed (§3.4).
        let sched = bs(2_000_000, 8_000_000);
        let mxnet = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            sched,
        ));
        let tf = run(&cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::tensorflow_ps(),
            sched,
        ));
        let rel = (tf.speed - mxnet.speed).abs() / mxnet.speed;
        assert!(
            rel < 0.02,
            "crossed-barrier TF must match MXNet: {} vs {}",
            tf.speed,
            mxnet.speed
        );
    }

    #[test]
    fn p3_lands_between_baseline_and_bytescheduler() {
        let base = run(&cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            SchedulerKind::Baseline,
        ));
        let p3 = run(&cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            SchedulerKind::P3,
        ));
        let tuned = run(&cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            bs(500_000, 1_000_000),
        ));
        assert!(
            p3.speed > base.speed,
            "P3 {} vs base {}",
            p3.speed,
            base.speed
        );
        assert!(
            tuned.speed > p3.speed,
            "ByteScheduler {} must beat P3 {} (stop-and-wait + tiny partitions)",
            tuned.speed,
            p3.speed
        );
    }

    #[test]
    fn allreduce_baseline_and_scheduled_both_run() {
        let base = run(&cfg(
            comm_heavy(),
            4,
            Arch::allreduce(),
            EngineConfig::mxnet_allreduce(),
            SchedulerKind::Baseline,
        ));
        let tuned = run(&cfg(
            comm_heavy(),
            4,
            Arch::allreduce(),
            EngineConfig::mxnet_allreduce(),
            bs(8_000_000, 16_000_000),
        ));
        assert!(base.collective_bytes > 0);
        assert!(
            tuned.speed >= base.speed * 0.95,
            "scheduled all-reduce must not regress much"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let mut c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(2_000_000, 8_000_000),
        );
        c.jitter = 0.02;
        c.seed = 42;
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a.speed, b.speed);
        c.seed = 43;
        let d = run(&c);
        assert_ne!(a.speed, d.speed);
    }

    #[test]
    fn async_ps_runs() {
        let mut c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(2_000_000, 8_000_000),
        );
        c.arch = Arch::Ps {
            mode: bs_comm::PsMode::Asynchronous,
            num_servers: 2,
            baseline_bigarray_split: false,
        };
        let r = run(&c);
        assert!(r.speed > 0.0);
    }

    #[test]
    fn comm_bound_runs_show_a_saturated_port() {
        // The comm-heavy toy at 10 Gbps: its bottleneck NIC should be
        // busy most of the time; a compute-bound run at 100 Gbps should
        // not be.
        let r = run(&cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            bs(1_000_000, 4_000_000),
        ));
        assert!(
            r.peak_port_utilisation > 0.4,
            "comm-bound peak utilisation {:.2}",
            r.peak_port_utilisation
        );
        let mut light = cfg(
            comm_heavy(),
            4,
            Arch::ps(4),
            EngineConfig::mxnet_ps(),
            bs(1_000_000, 4_000_000),
        );
        light.net = NetConfig::gbps(100.0, Transport::rdma());
        let r2 = run(&light);
        assert!(
            r2.peak_port_utilisation < r.peak_port_utilisation,
            "more bandwidth must lower utilisation: {:.2} vs {:.2}",
            r2.peak_port_utilisation,
            r.peak_port_utilisation
        );
    }

    #[test]
    fn recorded_trace_covers_compute_and_wire() {
        let mut c = cfg(
            comm_heavy(),
            2,
            Arch::ps(2),
            EngineConfig::mxnet_ps(),
            bs(1_000_000, 4_000_000),
        );
        c.record_trace = true;
        let r = run(&c);
        let trace = r.trace.expect("trace recorded");
        assert!(!trace.is_empty());
        let has = |prefix: &str| trace.spans.iter().any(|s| s.name.starts_with(prefix));
        assert!(has("fwd0@"), "compute spans present");
        assert!(has("bwd3@"), "backward spans present");
        assert!(has("push t"), "push spans present");
        assert!(has("pull t"), "pull spans present");
        for s in &trace.spans {
            assert!(s.end >= s.start);
        }
        // And the export parses as JSON.
        let json = trace.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        // Without the flag, no trace is attached.
        c.record_trace = false;
        assert!(run(&c).trace.is_none());
    }

    #[test]
    fn pytorch_nccl_baseline_runs() {
        let r = run(&cfg(
            comm_heavy(),
            4,
            Arch::allreduce(),
            EngineConfig::pytorch_allreduce(),
            SchedulerKind::Baseline,
        ));
        assert!(r.speed > 0.0);
    }
}
