//! Job-scoped simulation state: one training job's engines, schedulers,
//! comm backend and plugins, decoupled from fabric ownership.
//!
//! Historically the single-job [`crate::world`] driver owned everything,
//! including the point-to-point fabric. A shared cluster needs the
//! opposite factoring: *N* jobs multiplex one fabric under one clock, so
//! the per-job state lives here in [`JobState`] and the fabric is passed
//! in by whichever driver owns it — [`crate::world::run`] for a solo job,
//! `bs-cluster` for a co-scheduled fleet. A [`NodeMap`] translates
//! job-local node indices (worker `w`, shard `s`) to fabric [`NodeId`]s
//! and namespaces wire tags with the job's id, so transfers from
//! different jobs are distinguishable on the shared wire.

use bs_comm::{AllReduceConfig, ParamServer, PartitionKey, PsConfig, RingAllReduce, ShardAssign};
use bs_core::{
    partition_tensor, ByteScheduler, CommKind, CommTask, FifoScheduler, P3Scheduler, Scheduler,
    WorkItem,
};
use bs_engine::{EngineEvent, ExternalRole, IterDag, NodeKind, Pass, WorkerEngine};
use bs_faults::{job_seed, FaultInjector, FaultPlan, LinkChange, LinkDir};
use bs_net::{DroppedTransfer, NetEvent, NetPort, NodeId, WireSpan, WireXrayRecord};
use bs_scope::{ScopeBus, ScopeEvent};
use bs_sim::{SimRng, SimTime, Trace};
use bs_telemetry::MetricSet;
use bs_xray::{
    AggEvent, ComputeSpan, PartRecord, RingHopRecord, RingOp, StallSpan, XrayLog, XrayReport,
};

use crate::config::{Arch, SchedulerKind, WorldConfig};
use crate::plugin::{ArPluginState, PsPluginState};
use crate::result::{RunOutcome, RunResult};
use crate::token::Token;
use crate::traffic::{is_burst_tag, BurstSource, BG_TAG};

/// Bit position of the job-id field inside wire tags.
pub const JOB_SHIFT: u32 = 58;
/// Width of the job-id field. 5 bits ⇒ up to 32 jobs per fabric.
pub const JOB_BITS: u32 = 5;
/// Mask selecting the job-id field.
pub const JOB_MASK: u64 = ((1 << JOB_BITS) - 1) << JOB_SHIFT;
/// Most jobs a single fabric can multiplex.
pub const MAX_JOBS: usize = 1 << JOB_BITS;

/// Extracts the job id from a wire tag.
pub fn job_of_tag(tag: u64) -> usize {
    ((tag & JOB_MASK) >> JOB_SHIFT) as usize
}

/// Strips the job-id field, leaving the job-local tag.
pub fn inner_tag(tag: u64) -> u64 {
    tag & !JOB_MASK
}

/// Maps a job's local node indices onto fabric nodes and namespaces its
/// wire tags.
///
/// Job-local node numbering follows the single-job convention: workers
/// are `0..num_workers`, PS shards are `num_workers..num_workers +
/// num_servers`. Job 0 with an identity map produces tags bit-identical
/// to a solo [`crate::world::run`] — the equivalence the cluster's
/// degenerate-case tests pin.
#[derive(Clone, Debug)]
pub struct NodeMap {
    nodes: Vec<NodeId>,
    job_bits: u64,
}

impl NodeMap {
    /// Identity map for a solo job occupying fabric nodes `0..n` with
    /// job id 0 (tags pass through unchanged).
    pub fn identity(n: usize) -> NodeMap {
        NodeMap {
            nodes: (0..n).map(NodeId).collect(),
            job_bits: 0,
        }
    }

    /// Maps job `job`'s local nodes onto the given fabric nodes. The
    /// placement must be injective — two of a job's nodes sharing a
    /// machine would mean loopback traffic the fabric does not model.
    pub fn new(job: usize, nodes: Vec<NodeId>) -> NodeMap {
        assert!(
            job < MAX_JOBS,
            "job id {job} exceeds the {MAX_JOBS}-job tag budget"
        );
        let mut seen = std::collections::HashSet::new();
        for n in &nodes {
            assert!(seen.insert(n.0), "node {n:?} assigned twice within one job");
        }
        NodeMap {
            nodes,
            job_bits: (job as u64) << JOB_SHIFT,
        }
    }

    /// Number of fabric nodes this job occupies.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the job occupies no fabric nodes (all-reduce jobs ride a
    /// private collective stream).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The fabric node backing job-local node `local`.
    pub fn node(&self, local: usize) -> NodeId {
        self.nodes[local]
    }

    /// All fabric nodes this job occupies, in job-local order.
    pub fn fabric_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Namespaces a job-local tag for the wire.
    pub fn tag(&self, inner: u64) -> u64 {
        debug_assert_eq!(inner & JOB_MASK, 0, "inner tag overflows into job bits");
        inner | self.job_bits
    }

    /// The job id this map namespaces tags under.
    pub fn job(&self) -> usize {
        (self.job_bits >> JOB_SHIFT) as usize
    }
}

/// Internal event routed between a job's subsystems during one timestamp.
pub enum JobEvent {
    /// An engine event from worker `usize`.
    Engine(usize, EngineEvent),
    /// A point-to-point fabric milestone (tag already stripped to the
    /// job-local form).
    Net(NetEvent),
    /// A completed collective on the job's private ring stream.
    Ring(bs_comm::CompletedOp),
}

// One backend exists per job, so the Ps/Ring size gap costs nothing.
#[allow(clippy::large_enum_variant)]
enum JobBackend {
    Ps {
        ps: ParamServer,
    },
    Ring {
        ring: RingAllReduce,
        /// Baseline fusion threshold (bytes); irrelevant for scheduled runs.
        fusion_bytes: u64,
        /// Baseline fusion-cycle launch delay; zero for scheduled runs.
        cycle_delay: SimTime,
    },
}

/// Point-to-point statistics a driver attributes to one job when closing
/// it out (the fabric's own counters are fabric-global).
#[derive(Clone, Copy, Debug, Default)]
pub struct JobNetStats {
    /// Payload bytes delivered for this job.
    pub p2p_bytes: u64,
    /// Point-to-point deliveries for this job.
    pub comm_events: u64,
    /// Peak concurrently in-flight transfers (fabric-global high-water).
    pub peak_in_flight: usize,
    /// Busiest NIC direction's busy fraction (FIFO fabric only).
    pub peak_port_utilisation: f64,
}

/// One training job's complete simulation state minus the fabric.
pub struct JobState {
    num_workers: usize,
    /// PS shard count (0 for all-reduce runs).
    num_servers: usize,
    iters: u64,
    baseline_graph: bool,
    /// Per-tensor partition byte sizes.
    partitions: Vec<Vec<u64>>,
    /// Per-tensor total bytes.
    tensor_bytes: Vec<u64>,
    /// Per-tensor scheduling priority.
    priorities: Vec<u64>,
    engines: Vec<WorkerEngine>,
    /// PS: one per worker. All-reduce: a single master in slot 0 (§5).
    scheds: Vec<Box<dyn Scheduler>>,
    backend: JobBackend,
    ps_plug: Option<PsPluginState>,
    ar_plug: Option<ArPluginState>,
    /// Co-tenant traffic source (PS only).
    burst: Option<BurstSource>,
    /// Job-local → fabric node translation and tag namespace.
    nodes: NodeMap,
    /// Worker 0's compute-iteration completion times.
    marks: Vec<SimTime>,
    /// Scheduled all-reduce: partitions released by the master scheduler,
    /// awaiting fusion onto the ring (FIFO preserves the priority order
    /// the scheduler chose).
    ar_release_queue: std::collections::VecDeque<(u64, u64)>, // (token, bytes)
    /// Scheduled all-reduce: in-flight fused ops by tag.
    ar_sched_batches: std::collections::HashMap<u64, Vec<(u64, u64)>>,
    ar_next_batch: u64,
    /// Reusable buffer for scheduler polls (`drain_sched` runs on every
    /// completion; this keeps the hot path allocation-free).
    sched_scratch: Vec<WorkItem>,
    /// Causal-tracing state (`None` unless `record_xray` was set).
    xray: Option<JobXray>,
    /// Fault injection and loss recovery (`None` without a fault plan).
    faults: Option<Box<JobFaults>>,
    /// Scope observation state (`None` unless the run is observed).
    scope: Option<Box<JobScope>>,
}

/// A lost partition waiting out its retransmit backoff.
#[derive(Clone, Copy, Debug)]
struct LostPart {
    token: u64,
    bytes: u64,
}

/// Fault-injection cursor plus the recovery state machine: lost
/// partitions sit in `pending` keyed by a monotonic sequence number until
/// their backoff `timers` fire, then re-enter the scheduler under the
/// same token. `attempts` is the per-partition retry ledger that enforces
/// the plan's retry cap; exceeding it sets `failed` and aborts the run
/// with [`RunOutcome::Failed`].
struct JobFaults {
    injector: FaultInjector,
    /// Pending backoff timers, earliest first; `seq` breaks ties.
    timers: std::collections::BTreeSet<(SimTime, u64)>,
    /// `seq` → the lost partition its timer will resubmit.
    pending: std::collections::HashMap<u64, LostPart>,
    next_seq: u64,
    /// token (or collective tag) → retransmit attempts so far. Cleared
    /// on successful delivery.
    attempts: std::collections::HashMap<u64, u32>,
    retries: u64,
    reroutes: u64,
    dropped_bytes: u64,
    reclaimed_bytes: u64,
    failed: Option<String>,
}

impl JobFaults {
    fn new(plan: &FaultPlan, seed: u64) -> JobFaults {
        JobFaults {
            injector: FaultInjector::new(plan, seed),
            timers: std::collections::BTreeSet::new(),
            pending: std::collections::HashMap::new(),
            next_seq: 0,
            attempts: std::collections::HashMap::new(),
            retries: 0,
            reroutes: 0,
            dropped_bytes: 0,
            reclaimed_bytes: 0,
            failed: None,
        }
    }
}

/// Per-job scope observation state: lifecycle events buffered in the
/// order the job emitted them, waiting for the owning driver to publish
/// them onto the run's [`ScopeBus`]. The split between buffering here
/// and publishing there is what lets the parallel cluster driver replay
/// a free-run epoch's events in exact sequential order.
struct JobScope {
    /// Bus-visible job id.
    job: usize,
    /// Job start (arrival) instant; anchors the first iteration's wall.
    start: SimTime,
    /// Buffered events, oldest first.
    pending: Vec<ScopeEvent>,
    /// How many of `pending` the driver has already published.
    published: usize,
    /// Worker 0's cumulative GPU-busy seconds at the last mark.
    busy_so_far: f64,
    /// Fault-recovery retries counted through the last mark.
    retries_seen: u64,
}

/// Per-job causal-tracing state: one [`PartRecord`] per submitted
/// partition, indexed by its unique token so scheduler grants and fabric
/// lifecycles can be matched back in O(1).
struct JobXray {
    /// Job start (arrival) instant.
    start: SimTime,
    parts: Vec<PartRecord>,
    /// token → index into `parts`.
    index: std::collections::HashMap<u64, usize>,
}

impl JobXray {
    fn note_enqueue(&mut self, token: u64, lane: usize, pull: bool, bytes: u64, now: SimTime) {
        let tok = Token::unpack(token);
        let rec = PartRecord::enqueued_at(
            token, tok.iter, tok.worker, tok.tensor, tok.part, lane, pull, bytes, now,
        );
        self.index.insert(token, self.parts.len());
        self.parts.push(rec);
    }

    fn note_granted(&mut self, token: u64, now: SimTime) {
        if let Some(&i) = self.index.get(&token) {
            self.parts[i].granted = now;
        }
    }
}

impl JobState {
    /// Fabric nodes a configuration needs: workers + shards for PS, none
    /// for all-reduce (its collective stream is private).
    pub fn fabric_nodes_needed(cfg: &WorldConfig) -> usize {
        match cfg.arch {
            Arch::Ps { num_servers, .. } => cfg.num_workers + num_servers,
            Arch::AllReduce { .. } => 0,
        }
    }

    /// Builds a job starting at time zero (the solo-run case).
    pub fn build(cfg: &WorldConfig, nodes: NodeMap) -> JobState {
        Self::build_at(cfg, nodes, SimTime::ZERO)
    }

    /// Builds a job whose compute begins at `arrival` — a job joining a
    /// shared cluster mid-simulation.
    pub fn build_at(cfg: &WorldConfig, nodes: NodeMap, arrival: SimTime) -> JobState {
        assert!(cfg.num_workers >= 1, "need at least one worker");
        assert!(
            cfg.warmup + 2 <= cfg.iters,
            "need at least two measured iterations after warmup"
        );
        assert_eq!(
            nodes.len(),
            Self::fabric_nodes_needed(cfg),
            "node map must cover every worker and shard"
        );
        let n_layers = cfg.model.num_layers();

        let engine_cfg = if cfg.scheduler.needs_scheduled_engine() {
            cfg.engine.scheduled()
        } else {
            cfg.engine
        };
        let template = IterDag::build(n_layers, engine_cfg);

        let partition_unit = match cfg.scheduler {
            SchedulerKind::Baseline => None,
            SchedulerKind::FifoPartitioned { partition } => Some(partition),
            SchedulerKind::FifoCredit { partition, .. } => Some(partition),
            SchedulerKind::P3 => Some(P3Scheduler::DEFAULT_PARTITION),
            SchedulerKind::ByteScheduler { partition, .. } => Some(partition),
        };

        let tensor_bytes: Vec<u64> = cfg.model.layers.iter().map(|l| l.param_bytes).collect();
        // MXNet-style big-array splitting: the vanilla PS baseline slices
        // any tensor above 1 MB across the server shards (balanced
        // placement), while keeping the *pull-after-whole-push* key-level
        // dependency (§2.2). Scheduling policies use their own δ instead.
        const BIGARRAY_BOUND: u64 = 1 << 20;
        let baseline_split_servers = match (cfg.scheduler, cfg.arch) {
            (
                SchedulerKind::Baseline,
                Arch::Ps {
                    num_servers,
                    baseline_bigarray_split: true,
                    ..
                },
            ) => Some(num_servers as u64),
            _ => None,
        };
        if cfg.per_tensor_partition.is_some() {
            assert!(
                matches!(cfg.scheduler, SchedulerKind::ByteScheduler { .. }),
                "per-tensor partition sizes require the ByteScheduler policy"
            );
            assert_eq!(
                cfg.per_tensor_partition.as_ref().map(Vec::len),
                Some(n_layers),
                "per-tensor partition override must cover every layer"
            );
        }
        let partitions: Vec<Vec<u64>> = (0..n_layers)
            .map(|i| {
                let unit = if let Some(v) = &cfg.per_tensor_partition {
                    Some(v[i].max(1))
                } else if let Some(servers) = baseline_split_servers {
                    let slices = servers.min(tensor_bytes[i].div_ceil(BIGARRAY_BOUND)).max(1);
                    Some(tensor_bytes[i].div_ceil(slices).max(1))
                } else {
                    partition_unit
                };
                partition_tensor(
                    &CommTask {
                        tensor: i as u32,
                        kind: CommKind::Push,
                        bytes: tensor_bytes[i],
                    },
                    unit,
                )
                .iter()
                .map(|s| s.bytes)
                .collect()
            })
            .collect();

        // FifoCredit isolates the credit knob: all priorities equal, so
        // the ByteScheduler queue degenerates to arrival order.
        let priorities: Vec<u64> = if let Some(p) = &cfg.priority_override {
            assert_eq!(
                p.len(),
                n_layers,
                "priority override must cover every layer"
            );
            p.clone()
        } else if matches!(cfg.scheduler, SchedulerKind::FifoCredit { .. }) {
            vec![0; n_layers]
        } else {
            (0..n_layers)
                .map(|i| cfg.engine.kind.priority_of_layer(i, n_layers))
                .collect()
        };

        let lanes = cfg.arch.num_lanes();
        let num_scheds = match cfg.arch {
            Arch::Ps { .. } => cfg.num_workers,
            Arch::AllReduce { .. } => 1,
        };
        let scheds: Vec<Box<dyn Scheduler>> = (0..num_scheds)
            .map(|_| -> Box<dyn Scheduler> {
                match cfg.scheduler {
                    SchedulerKind::Baseline => Box::new(FifoScheduler::new(lanes)),
                    SchedulerKind::FifoPartitioned { partition } => {
                        Box::new(FifoScheduler::with_partition(Some(partition), lanes))
                    }
                    SchedulerKind::P3 => Box::new(P3Scheduler::new(lanes)),
                    SchedulerKind::ByteScheduler { partition, credit }
                    | SchedulerKind::FifoCredit { partition, credit } => {
                        Box::new(ByteScheduler::new(partition, credit, lanes))
                    }
                }
            })
            .collect();

        let mut root_rng = SimRng::new(cfg.seed);
        let engines: Vec<WorkerEngine> = (0..cfg.num_workers)
            .map(|w| {
                let jitter = if cfg.jitter > 0.0 {
                    Some((root_rng.fork(w as u64), cfg.jitter))
                } else {
                    None
                };
                WorkerEngine::new_at(template.clone(), &cfg.model, cfg.iters, jitter, arrival)
            })
            .collect();

        let (backend, ps_plug, ar_plug) = match cfg.arch {
            Arch::Ps {
                mode, num_servers, ..
            } => {
                // Scheduling policies spread δ-sized keys round-robin
                // (balanced); the unsplit baseline places whole tensors
                // round-robin — the naive assignment whose imbalance §6.2
                // calls out.
                let assign = if partition_unit.is_some() || baseline_split_servers.is_some() {
                    ShardAssign::PerPartition
                } else {
                    ShardAssign::PerTensor
                };
                let ps = ParamServer::new(PsConfig {
                    num_workers: cfg.num_workers,
                    num_servers,
                    assign,
                    mode,
                });
                (
                    JobBackend::Ps { ps },
                    Some(PsPluginState::new(cfg.num_workers, n_layers)),
                    None,
                )
            }
            Arch::AllReduce {
                baseline_fusion_bytes,
                baseline_cycle_delay_us,
            } => {
                assert!(cfg.num_workers >= 2, "a ring needs at least two workers");
                let ring = RingAllReduce::new(AllReduceConfig::new(cfg.num_workers, cfg.net));
                (
                    JobBackend::Ring {
                        ring,
                        fusion_bytes: baseline_fusion_bytes.unwrap_or(0),
                        cycle_delay: SimTime::from_micros(baseline_cycle_delay_us),
                    },
                    None,
                    Some(ArPluginState::new(cfg.num_workers, n_layers)),
                )
            }
        };

        let num_servers = match cfg.arch {
            Arch::Ps { num_servers, .. } => num_servers,
            Arch::AllReduce { .. } => 0,
        };
        let mut engines = engines;
        let mut backend = backend;
        let mut scheds = scheds;
        if cfg.record_trace {
            for e in &mut engines {
                e.enable_trace();
            }
            if let JobBackend::Ring { ring, .. } = &mut backend {
                ring.enable_trace();
            }
        }
        if cfg.record_metrics {
            for e in &mut engines {
                e.enable_telemetry(arrival);
            }
            for s in &mut scheds {
                s.enable_telemetry(arrival);
            }
        }
        let xray = cfg.record_xray.then(|| {
            for e in &mut engines {
                e.enable_xray();
            }
            for s in &mut scheds {
                s.enable_xray(arrival);
            }
            match &mut backend {
                JobBackend::Ps { ps } => ps.enable_xray(),
                JobBackend::Ring { ring, .. } => ring.enable_xray(),
            }
            JobXray {
                start: arrival,
                parts: Vec::new(),
                index: std::collections::HashMap::new(),
            }
        });
        let burst = cfg.background.map(|bg| {
            assert!(
                matches!(cfg.arch, Arch::Ps { .. }),
                "background load is modelled for PS runs only"
            );
            BurstSource::new(bg, cfg.seed ^ 0xB6_0000)
        });
        let faults = cfg.faults.as_ref().map(|plan| {
            if let Err(e) = plan.validate() {
                panic!("invalid fault plan: {e}");
            }
            assert!(
                plan.machine_failures.is_empty(),
                "machine failures are cluster-scope faults; a job-private \
                 plan cannot take down shared machines"
            );
            if matches!(cfg.arch, Arch::AllReduce { .. }) {
                assert!(
                    plan.link_events.is_empty() && plan.flaps.is_empty(),
                    "link faults target the p2p fabric; all-reduce runs model \
                     loss and stragglers only"
                );
            }
            for e in &plan.link_events {
                assert!(
                    e.node < nodes.len(),
                    "link event node {} outside this job's {} fabric nodes",
                    e.node,
                    nodes.len()
                );
            }
            for f in &plan.flaps {
                assert!(
                    f.node < nodes.len(),
                    "flap node {} outside this job's {} fabric nodes",
                    f.node,
                    nodes.len()
                );
            }
            for s in &plan.stragglers {
                assert!(
                    s.worker < cfg.num_workers,
                    "straggler worker {} outside this job's {} workers",
                    s.worker,
                    cfg.num_workers
                );
                engines[s.worker].add_compute_scale(s.from_iter, s.to_iter, s.factor);
            }
            // Each job draws its loss stream from a golden-ratio-split
            // seed so co-tenants never share Bernoulli draws; job 0's
            // split is the identity, keeping solo runs bit-identical.
            Box::new(JobFaults::new(plan, job_seed(cfg.seed, nodes.job())))
        });
        JobState {
            num_workers: cfg.num_workers,
            num_servers,
            iters: cfg.iters,
            baseline_graph: !cfg.scheduler.needs_scheduled_engine(),
            partitions,
            tensor_bytes,
            priorities,
            engines,
            scheds,
            backend,
            ps_plug,
            ar_plug,
            burst,
            nodes,
            marks: Vec::new(),
            ar_release_queue: std::collections::VecDeque::new(),
            ar_sched_batches: std::collections::HashMap::new(),
            ar_next_batch: 0,
            sched_scratch: Vec::new(),
            xray,
            faults,
            scope: None,
        }
    }

    /// Switches on scope observation for this job. Worker 0's GPU-busy
    /// telemetry backs the wall/busy/stall split; enabling it here is
    /// invisible to the run's outputs because `into_result` only reads
    /// engine telemetry when metrics recording was requested.
    pub fn enable_scope(&mut self, job: usize, arrival: SimTime) {
        self.engines[0].enable_telemetry(arrival);
        self.scope = Some(Box::new(JobScope {
            job,
            start: arrival,
            pending: Vec::new(),
            published: 0,
            busy_so_far: 0.0,
            retries_seen: 0,
        }));
    }

    /// Number of scope events buffered so far (0 when observation is
    /// off). The parallel cluster driver snapshots this between steps to
    /// replay free-run events in order.
    pub fn scope_len(&self) -> usize {
        self.scope.as_ref().map_or(0, |s| s.pending.len())
    }

    /// Publishes buffered scope events up to index `to` onto `bus`,
    /// recycling the buffer once fully drained.
    pub fn publish_scope_upto(&mut self, bus: &mut ScopeBus, to: usize) {
        let Some(sc) = self.scope.as_mut() else {
            return;
        };
        while sc.published < to {
            bus.publish(sc.pending[sc.published]);
            sc.published += 1;
        }
        if sc.published == sc.pending.len() {
            sc.pending.clear();
            sc.published = 0;
        }
    }

    /// Publishes every buffered scope event onto `bus`.
    pub fn publish_scope(&mut self, bus: &mut ScopeBus) {
        self.publish_scope_upto(bus, self.scope_len());
    }

    /// Submits the co-tenant's initial bursts: one per worker NIC in each
    /// direction, looped on delivery (see [`Self::handle`]).
    pub fn seed_background<P: NetPort>(&mut self, now: SimTime, fabric: &mut P) {
        let Some(burst) = &mut self.burst else { return };
        let num_servers = self.num_servers;
        for w in 0..self.num_workers {
            let server = self.nodes.node(self.num_workers + (w % num_servers));
            let worker = self.nodes.node(w);
            // Downlink contender (fights the worker's pulls)...
            burst.seed(
                now,
                fabric,
                &self.nodes,
                server,
                worker,
                BG_TAG | (2 * w as u64),
            );
            // ...and an uplink contender (fights its pushes).
            burst.seed(
                now,
                fabric,
                &self.nodes,
                worker,
                server,
                BG_TAG | (2 * w as u64 + 1),
            );
        }
    }

    /// True once every worker retired all its iterations — or the run
    /// failed (recovery exhausted its retry budget) and must stop.
    pub fn done(&self) -> bool {
        self.failed().is_some()
            || self
                .engines
                .iter()
                .all(|e| e.done_iterations() == self.iters)
    }

    /// The abort reason, once recovery has given up on this run.
    pub fn failed(&self) -> Option<&str> {
        self.faults.as_ref().and_then(|f| f.failed.as_deref())
    }

    /// Iterations every worker has fully retired — the checkpoint
    /// barrier: a migrating job resumes from here and re-runs the rest.
    pub fn completed_iterations(&self) -> u64 {
        self.engines
            .iter()
            .map(|e| e.done_iterations())
            .min()
            .unwrap_or(0)
    }

    /// Fails the run from outside: the cluster driver calls this when a
    /// machine failure leaves a job with no feasible placement. Closes
    /// instrumented intervals like an exhausted retry budget would.
    pub fn abort(&mut self, reason: String, now: SimTime) {
        let f = self
            .faults
            .get_or_insert_with(|| Box::new(JobFaults::new(&FaultPlan::empty(), 0)));
        if f.failed.is_some() {
            return;
        }
        f.failed = Some(reason);
        for s in &mut self.scheds {
            s.teardown(now);
        }
    }

    /// Routes a transfer the *driver* killed on the shared fabric (a
    /// machine failure or a co-tenant's hoisted link fault) into this
    /// job's recovery machinery, exactly as a job-private flap would.
    /// The tag must belong to this job; its job bits are stripped here.
    pub fn route_fabric_drop<P: NetPort>(
        &mut self,
        d: DroppedTransfer,
        now: SimTime,
        fabric: &mut P,
    ) {
        debug_assert_eq!(
            job_of_tag(d.tag),
            self.nodes.job(),
            "drop routed to wrong job"
        );
        if self.faults.is_none() {
            // A faultless tenant can still lose transfers to cluster-scope
            // outages; give it recovery state with the default policy.
            self.faults = Some(Box::new(JobFaults::new(
                &FaultPlan::empty(),
                job_seed(0, self.nodes.job()),
            )));
        }
        self.on_transfer_dropped(d, now, fabric);
    }

    /// Buffers a scope event on this job's stream (no-op when the job is
    /// unobserved). The cluster driver records checkpoint/migrate/resume
    /// decisions and cluster-scope fault firings this way.
    pub fn scope_push(&mut self, ev: ScopeEvent) {
        if let Some(sc) = self.scope.as_mut() {
            sc.pending.push(ev);
        }
    }

    /// This job's node map.
    pub fn nodes(&self) -> &NodeMap {
        &self.nodes
    }

    /// Replaces this job's node map (migration). The new map must cover
    /// the same job-local node count and keep the same job id — only the
    /// fabric placement changes.
    pub fn remap_nodes(&mut self, nodes: NodeMap) {
        assert_eq!(
            nodes.len(),
            self.nodes.len(),
            "migration changes node count"
        );
        assert_eq!(nodes.job(), self.nodes.job(), "migration changes job id");
        self.nodes = nodes;
    }

    /// Earliest instant this job does anything on its own: a GPU op ends,
    /// a co-tenant burst fires, or the private ring stream advances. The
    /// shared fabric's next event is the driver's concern.
    pub fn next_event_time(&self) -> SimTime {
        let mut t = SimTime::MAX;
        for e in &self.engines {
            t = t.min(e.next_event_time());
        }
        if let Some(b) = &self.burst {
            t = t.min(b.next_time());
        }
        if let JobBackend::Ring { ring, .. } = &self.backend {
            t = t.min(ring.next_event_time());
        }
        if let Some(f) = &self.faults {
            if f.failed.is_none() {
                t = t.min(f.injector.next_change_time());
                if let Some(&(due, _)) = f.timers.first() {
                    t = t.min(due);
                }
            }
        }
        t
    }

    /// Advances the job's own subsystems to `t`: fires due co-tenant
    /// bursts, retires GPU ops, and advances the private ring stream.
    /// Emitted events are pushed onto `queue` for the driver's cascade
    /// loop. Fabric advancement stays with the driver.
    pub fn advance<P: NetPort>(&mut self, t: SimTime, fabric: &mut P, queue: &mut Vec<JobEvent>) {
        if self.faults.is_some() {
            self.apply_due_faults(t, fabric);
        }
        if let Some(b) = &mut self.burst {
            b.fire_due(t, fabric, &self.nodes);
        }
        for w in 0..self.engines.len() {
            let e = &mut self.engines[w];
            // An engine whose next GPU-op end lies beyond `t` (and with
            // nothing buffered) cannot emit anything; skip it.
            if e.next_event_time() > t && !e.has_pending() {
                continue;
            }
            e.advance_queued(t);
            for ev in e.drain_pending() {
                queue.push(JobEvent::Engine(w, ev));
            }
        }
        if let JobBackend::Ring { ring, .. } = &mut self.backend {
            if ring.next_event_time() <= t {
                for c in ring.advance(t) {
                    queue.push(JobEvent::Ring(c));
                }
            }
        }
    }

    /// Routes one event through the job's plugins, schedulers and
    /// engines. Net events must carry job-local (stripped) tags.
    pub fn handle<P: NetPort>(
        &mut self,
        ev: JobEvent,
        now: SimTime,
        fabric: &mut P,
        out: &mut Vec<JobEvent>,
    ) {
        // A failed run is over: stop routing events so the driver's
        // `done()` check ends the loop without scheduling more work.
        if self.failed().is_some() {
            return;
        }
        match ev {
            JobEvent::Engine(w, event) => self.handle_engine(w, event, now, fabric),
            JobEvent::Net(c) => self.handle_net(c, now, fabric, out),
            JobEvent::Ring(c) => self.handle_ring(c, now, out),
        }
    }

    /// Applies every fault-plan change due at `t`: bandwidth scales,
    /// flaps (whose killed in-flight transfers enter recovery), link
    /// revivals, then due retransmit backoff timers — link changes
    /// first, so a retransmit firing at the same instant sees the
    /// post-change fabric.
    fn apply_due_faults<P: NetPort>(&mut self, t: SimTime, fabric: &mut P) {
        loop {
            let change = match self.faults.as_mut() {
                Some(f) if f.failed.is_none() => f.injector.pop_due(t),
                _ => return,
            };
            let Some(change) = change else { break };
            if let Some(sc) = self.scope.as_mut() {
                sc.pending.push(ScopeEvent::FaultFired {
                    job: sc.job,
                    at: t,
                    kind: change.kind(),
                    node: change.node(),
                    scale: change.capacity_fraction(),
                });
            }
            match change {
                LinkChange::Scale { node, dir, scale } => {
                    let up = matches!(dir, LinkDir::Up);
                    fabric.set_port_scale(t, self.nodes.node(node), up, scale);
                }
                LinkChange::FlapDown { node } => {
                    for d in fabric.kill_port(t, self.nodes.node(node)) {
                        self.on_transfer_dropped(d, t, fabric);
                    }
                }
                LinkChange::FlapUp { node } => fabric.revive_port(t, self.nodes.node(node)),
            }
        }
        loop {
            let Some(f) = self.faults.as_mut() else {
                return;
            };
            if f.failed.is_some() {
                return;
            }
            let Some(&(due, seq)) = f.timers.first() else {
                break;
            };
            if due > t {
                break;
            }
            f.timers.pop_first();
            let lost = f
                .pending
                .remove(&seq)
                .expect("timer without pending partition");
            self.resubmit_lost(lost, t, fabric);
        }
    }

    /// A link flap killed transfer `d` mid-wire. Co-tenant bursts simply
    /// re-arm (the tenant tries again next cycle); the job's own
    /// partitions reclaim their credit — the wire never released them,
    /// so it is still out under either credit-timing discipline — and
    /// enter retransmit backoff.
    fn on_transfer_dropped<P: NetPort>(
        &mut self,
        d: DroppedTransfer,
        now: SimTime,
        fabric: &mut P,
    ) {
        let tag = inner_tag(d.tag);
        if is_burst_tag(tag) {
            if let Some(b) = self.burst.as_mut() {
                b.requeue(now, d.src, d.dst, tag);
            }
            return;
        }
        let tok = Token::unpack(tag);
        {
            let f = self.faults.as_mut().expect("kill without fault state");
            f.dropped_bytes += d.bytes;
            f.reclaimed_bytes += d.bytes;
        }
        self.scheds[tok.worker].reclaim(now, tok.kind.lane(), d.bytes);
        self.drain_sched(tok.worker, now, fabric);
        self.schedule_retransmit(tag, d.bytes, true, now);
    }

    /// A delivered transfer was picked by the Bernoulli loss stream: the
    /// payload is gone before any completion bookkeeping ran. Return the
    /// credit the lane still holds for it and book the retransmit.
    fn on_delivery_lost<P: NetPort>(&mut self, tag: u64, bytes: u64, now: SimTime, fabric: &mut P) {
        let tok = Token::unpack(tag);
        self.faults
            .as_mut()
            .expect("loss without fault state")
            .dropped_bytes += bytes;
        // Release-gated schedulers (P3) already took their credit back
        // when the wire released the message; delivery-gated ones still
        // hold it and must reclaim, or the lane leaks and deadlocks.
        if !self.scheds[tok.worker].credit_on_release() {
            self.scheds[tok.worker].reclaim(now, tok.kind.lane(), bytes);
            self.faults.as_mut().unwrap().reclaimed_bytes += bytes;
            self.drain_sched(tok.worker, now, fabric);
        }
        self.schedule_retransmit(tag, bytes, false, now);
    }

    /// Books a retransmit for a lost partition after the policy backoff,
    /// failing the run when the partition's retry budget is exhausted.
    fn schedule_retransmit(&mut self, token: u64, bytes: u64, flap: bool, now: SimTime) {
        let f = self
            .faults
            .as_mut()
            .expect("retransmit without fault state");
        if f.failed.is_some() {
            return;
        }
        let attempt = f.attempts.entry(token).or_insert(0);
        *attempt += 1;
        let attempt = *attempt;
        let policy = f.injector.policy();
        if attempt > policy.max_retries {
            let tok = Token::unpack(token);
            f.failed = Some(format!(
                "tensor {} part {} (iter {}, worker {}) exceeded {} retransmit attempts",
                tok.tensor, tok.part, tok.iter, tok.worker, policy.max_retries
            ));
            // Close instrumented intervals so the aborted run still
            // reports correct stall totals.
            for s in &mut self.scheds {
                s.teardown(now);
            }
            return;
        }
        f.retries += 1;
        if flap {
            f.reroutes += 1;
        }
        let seq = f.next_seq;
        f.next_seq += 1;
        f.timers.insert((now + policy.backoff(attempt), seq));
        f.pending.insert(seq, LostPart { token, bytes });
        if let Some(sc) = self.scope.as_mut() {
            let tok = Token::unpack(token);
            sc.pending.push(ScopeEvent::Retransmit {
                job: sc.job,
                at: now,
                worker: tok.worker,
                tensor: tok.tensor,
                part: tok.part,
                iter: tok.iter,
                bytes,
                attempt,
                rerouted: flap,
            });
        }
    }

    /// A backoff timer fired: re-drive the lost partition through its
    /// scheduler — same token, same priority, so recovery rides the
    /// normal grant path and shows up as an extra wire span.
    fn resubmit_lost<P: NetPort>(&mut self, lost: LostPart, now: SimTime, fabric: &mut P) {
        let tok = Token::unpack(lost.token);
        let item = WorkItem {
            lane: tok.kind.lane(),
            priority: self.priorities[tok.tensor as usize],
            bytes: lost.bytes,
            token: lost.token,
        };
        match self.backend {
            JobBackend::Ps { .. } => {
                self.scheds[tok.worker].submit(now, item);
                self.drain_sched(tok.worker, now, fabric);
            }
            JobBackend::Ring { .. } => unreachable!("ring losses retry on the collective stream"),
        }
    }

    fn handle_engine<P: NetPort>(
        &mut self,
        w: usize,
        event: EngineEvent,
        now: SimTime,
        fabric: &mut P,
    ) {
        match event {
            EngineEvent::ComputeIterDone { iter: _, at } => {
                if w == 0 {
                    // Worker 0's cumulative busy time, read before the
                    // scope borrow below (engine access needs `&self`).
                    let busy_total = if self.scope.is_some() {
                        self.engines[0].gpu_busy_secs_until(at).unwrap_or(0.0)
                    } else {
                        0.0
                    };
                    let retries_now = self.faults.as_ref().map_or(0, |f| f.retries);
                    self.marks.push(at);
                    if let Some(sc) = self.scope.as_mut() {
                        let iter = (self.marks.len() - 1) as u64;
                        let prev = if self.marks.len() >= 2 {
                            self.marks[self.marks.len() - 2]
                        } else {
                            sc.start
                        };
                        let wall_secs = at.saturating_sub(prev).as_secs_f64();
                        let busy_secs = (busy_total - sc.busy_so_far).max(0.0);
                        sc.busy_so_far = busy_total;
                        let retries = retries_now - sc.retries_seen;
                        sc.retries_seen = retries_now;
                        sc.pending.push(ScopeEvent::IterDone {
                            job: sc.job,
                            at,
                            iter,
                            wall_secs,
                            busy_secs,
                            stall_secs: (wall_secs - busy_secs).max(0.0),
                            retries,
                        });
                    }
                }
            }
            EngineEvent::AllDone { .. } => {}
            EngineEvent::ExternalReady { iter, role, .. } => match role {
                ExternalRole::ProxyReady(i) | ExternalRole::Push(i)
                    if matches!(self.backend, JobBackend::Ps { .. }) =>
                {
                    self.on_grad_ready_ps(w, i, iter, now, fabric);
                }
                ExternalRole::ProxyReady(i) | ExternalRole::AllReduce(i) => {
                    self.on_grad_ready_ar(i, iter, now);
                }
                ExternalRole::Pull(_) | ExternalRole::ProxyFinish(_) => {}
                other => panic!("role {other:?} unexpected for this backend"),
            },
        }
    }

    /// Worker `w`'s gradient for tensor `i` is ready: submit its push
    /// subtasks to the worker's scheduler.
    fn on_grad_ready_ps<P: NetPort>(
        &mut self,
        w: usize,
        i: usize,
        iter: u64,
        now: SimTime,
        fabric: &mut P,
    ) {
        let parts = self.partitions[i].len() as u32;
        self.ps_plug
            .as_mut()
            .expect("PS plugin")
            .on_grad_ready(w, i, iter, parts);
        for (p, &bytes) in self.partitions[i].iter().enumerate() {
            let token = Token {
                iter,
                worker: w,
                kind: CommKind::Push,
                tensor: i as u32,
                part: p as u32,
            }
            .pack();
            if let Some(x) = self.xray.as_mut() {
                // BP produced the gradient this instant; the runtime
                // enqueues it in the same instant (produced == enqueued).
                x.note_enqueue(token, CommKind::Push.lane(), false, bytes, now);
            }
            self.scheds[w].submit(
                now,
                WorkItem {
                    lane: CommKind::Push.lane(),
                    priority: self.priorities[i],
                    bytes,
                    token,
                },
            );
        }
        self.drain_sched(w, now, fabric);
    }

    /// A worker reported tensor `i` ready for all-reduce. When the last
    /// worker reports, the master submits the collective (§5).
    fn on_grad_ready_ar(&mut self, i: usize, iter: u64, now: SimTime) {
        let parts = if self.baseline_graph {
            1
        } else {
            self.partitions[i].len() as u32
        };
        let all_ready = self
            .ar_plug
            .as_mut()
            .expect("AR plugin")
            .on_worker_ready(i, iter, parts);
        if !all_ready {
            return;
        }
        if self.baseline_graph {
            self.ar_plug
                .as_mut()
                .unwrap()
                .queue_for_fusion(i as u32, iter, self.tensor_bytes[i]);
            self.maybe_submit_fused(now);
        } else {
            for (p, &bytes) in self.partitions[i].iter().enumerate() {
                let token = Token {
                    iter,
                    worker: 0,
                    kind: CommKind::AllReduce,
                    tensor: i as u32,
                    part: p as u32,
                }
                .pack();
                if let Some(x) = self.xray.as_mut() {
                    x.note_enqueue(token, 0, false, bytes, now);
                }
                self.scheds[0].submit(
                    now,
                    WorkItem {
                        lane: 0,
                        priority: self.priorities[i],
                        bytes,
                        token,
                    },
                );
            }
            self.drain_sched_ring(now);
        }
    }

    /// Hands everything the scheduler releases to the wire.
    fn drain_sched<P: NetPort>(&mut self, s: usize, now: SimTime, fabric: &mut P) {
        let mut items = std::mem::take(&mut self.sched_scratch);
        debug_assert!(items.is_empty());
        self.scheds[s].poll_into(now, &mut items);
        for item in items.drain(..) {
            if let Some(x) = self.xray.as_mut() {
                x.note_granted(item.token, now);
            }
            match &mut self.backend {
                JobBackend::Ps { ps } => {
                    let tok = Token::unpack(item.token);
                    let key = PartitionKey {
                        tensor: tok.tensor,
                        part: tok.part,
                    };
                    let shard = self.nodes.node(ps.shard_of(key).0);
                    let worker = self.nodes.node(tok.worker);
                    let tag = self.nodes.tag(item.token);
                    match tok.kind {
                        CommKind::Push => {
                            fabric.submit(now, worker, shard, item.bytes, tag);
                        }
                        CommKind::Pull => {
                            fabric.submit(now, shard, worker, item.bytes, tag);
                        }
                        CommKind::AllReduce => unreachable!("all-reduce token on PS backend"),
                    }
                }
                JobBackend::Ring { .. } => {
                    // Released partitions pass through Horovod-style
                    // fusion before reaching the ring (§5: ByteScheduler
                    // wraps Horovod's DistributedOptimizer).
                    self.ar_release_queue.push_back((item.token, item.bytes));
                }
            }
        }
        self.sched_scratch = items;
    }

    /// Ring variant of [`Self::drain_sched`]: releases go to the fusion
    /// queue and a fused collective may launch.
    fn drain_sched_ring(&mut self, now: SimTime) {
        let mut items = std::mem::take(&mut self.sched_scratch);
        debug_assert!(items.is_empty());
        self.scheds[0].poll_into(now, &mut items);
        let submitted = !items.is_empty();
        for item in items.drain(..) {
            if let Some(x) = self.xray.as_mut() {
                x.note_granted(item.token, now);
            }
            self.ar_release_queue.push_back((item.token, item.bytes));
        }
        self.sched_scratch = items;
        if submitted {
            self.maybe_submit_scheduled_fused(now);
        }
    }

    /// Scheduled all-reduce: when the ring is idle, fuse the released
    /// partitions at the head of the queue (up to the fusion threshold)
    /// into one collective. Event-driven — no Horovod cycle delay, one of
    /// ByteScheduler's implementation advantages.
    fn maybe_submit_scheduled_fused(&mut self, now: SimTime) {
        let JobBackend::Ring {
            ring, fusion_bytes, ..
        } = &mut self.backend
        else {
            return;
        };
        if ring.outstanding() > 0 || self.ar_release_queue.is_empty() {
            return;
        }
        let limit = (*fusion_bytes).max(1);
        let mut members = Vec::new();
        let mut total = 0u64;
        while let Some(&(token, bytes)) = self.ar_release_queue.front() {
            if !members.is_empty() && total + bytes > limit {
                break;
            }
            self.ar_release_queue.pop_front();
            members.push((token, bytes));
            total += bytes;
        }
        let id = self.ar_next_batch;
        self.ar_next_batch += 1;
        self.ar_sched_batches.insert(id, members);
        ring.submit(now, total, id);
    }

    /// Baseline all-reduce: launch the next fused collective if the ring
    /// is idle (ring FIFO means pre-queueing buys nothing, and waiting
    /// maximises fusion — Horovod's cycle behaviour).
    fn maybe_submit_fused(&mut self, now: SimTime) {
        let JobBackend::Ring {
            ring,
            fusion_bytes,
            cycle_delay,
        } = &mut self.backend
        else {
            return;
        };
        if ring.outstanding() > 0 {
            return;
        }
        if let Some((id, bytes)) = self
            .ar_plug
            .as_mut()
            .expect("AR plugin")
            .next_fused_batch(*fusion_bytes)
        {
            ring.submit_after(now, *cycle_delay, bytes, id);
        }
    }

    /// Queues one pull partition on the worker's scheduler.
    fn submit_pull(&mut self, worker: usize, tensor: usize, iter: u64, part: u32, now: SimTime) {
        let token = Token {
            iter,
            worker,
            kind: CommKind::Pull,
            tensor: tensor as u32,
            part,
        }
        .pack();
        let bytes = self.partitions[tensor][part as usize];
        if let Some(x) = self.xray.as_mut() {
            // For a pull, "produced" is the grant instant that made it
            // legal — which is exactly when the runtime enqueues it.
            x.note_enqueue(token, CommKind::Pull.lane(), true, bytes, now);
        }
        self.scheds[worker].submit(
            now,
            WorkItem {
                lane: CommKind::Pull.lane(),
                priority: self.priorities[tensor],
                bytes,
                token,
            },
        );
    }

    fn handle_net<P: NetPort>(
        &mut self,
        ev: NetEvent,
        now: SimTime,
        fabric: &mut P,
        out: &mut Vec<JobEvent>,
    ) {
        // Co-tenant bursts loop forever: when one delivers, schedule the
        // next after the configured gap. Releases are ignored.
        if let NetEvent::Delivered(c) = ev {
            if is_burst_tag(c.tag) {
                self.burst
                    .as_mut()
                    .expect("bg transfer without config")
                    .on_delivered(now, &c);
                return;
            }
        }
        if let NetEvent::Released(c) = ev {
            if is_burst_tag(c.tag) {
                return;
            }
        }
        let c = match ev {
            NetEvent::Released(c) => {
                // Wire accepted the message: release-gated schedulers
                // (P3's stop-and-wait) get their credit back now.
                let tok = Token::unpack(c.tag);
                if self.scheds[tok.worker].credit_on_release() {
                    self.scheds[tok.worker].complete(now, tok.kind.lane(), c.bytes);
                    self.drain_sched(tok.worker, now, fabric);
                }
                return;
            }
            NetEvent::Delivered(c) => c,
        };
        if let Some(f) = self.faults.as_mut() {
            // One Bernoulli draw per candidate delivery, in delivery
            // order — the loss stream's determinism contract.
            if f.injector.has_loss() && f.injector.should_drop() {
                self.on_delivery_lost(c.tag, c.bytes, now, fabric);
                return;
            }
            // Delivered for real: close the partition's retry ledger.
            if !f.attempts.is_empty() {
                f.attempts.remove(&c.tag);
            }
        }
        let tok = Token::unpack(c.tag);
        let (w, i) = (tok.worker, tok.tensor as usize);
        let credit_on_delivery = !self.scheds[w].credit_on_release();
        match tok.kind {
            CommKind::Push => {
                if credit_on_delivery {
                    self.scheds[w].complete(now, CommKind::Push.lane(), c.bytes);
                    self.drain_sched(w, now, fabric);
                }
                let all_pushed = self
                    .ps_plug
                    .as_mut()
                    .expect("PS plugin")
                    .on_push_part_done(w, i, tok.iter);
                if all_pushed && self.baseline_graph {
                    self.engines[w].complete_external_queued(now, tok.iter, ExternalRole::Push(i));
                    for ev in self.engines[w].drain_pending() {
                        out.push(JobEvent::Engine(w, ev));
                    }
                }
                // Aggregation bookkeeping: which pulls became legal?
                let JobBackend::Ps { ps } = &mut self.backend else {
                    unreachable!("push completion without PS backend")
                };
                let key = PartitionKey {
                    tensor: tok.tensor,
                    part: tok.part,
                };
                let grants = ps.on_push_complete(now, tok.iter, key, w);
                for g in grants {
                    if self.baseline_graph {
                        // Key-level dependency: the worker pulls the
                        // tensor only once every slice is aggregated.
                        let all_granted = self
                            .ps_plug
                            .as_mut()
                            .expect("PS plugin")
                            .on_grant_part(g.worker, i, tok.iter);
                        if all_granted {
                            for p in 0..self.partitions[i].len() {
                                self.submit_pull(g.worker, i, tok.iter, p as u32, now);
                            }
                            self.drain_sched(g.worker, now, fabric);
                        }
                    } else {
                        // Partition-level dependency: partial pull after
                        // partial push (Theorem 1 condition 3).
                        self.submit_pull(g.worker, i, tok.iter, g.key.part, now);
                        self.drain_sched(g.worker, now, fabric);
                    }
                }
            }
            CommKind::Pull => {
                if credit_on_delivery {
                    self.scheds[w].complete(now, CommKind::Pull.lane(), c.bytes);
                    self.drain_sched(w, now, fabric);
                }
                let all_pulled = self
                    .ps_plug
                    .as_mut()
                    .expect("PS plugin")
                    .on_pull_part_done(w, i, tok.iter);
                if all_pulled {
                    let (iter, role) = if self.baseline_graph {
                        (tok.iter, ExternalRole::Pull(i))
                    } else {
                        (tok.iter + 1, ExternalRole::ProxyFinish(i))
                    };
                    self.engines[w].complete_external_queued(now, iter, role);
                    for ev in self.engines[w].drain_pending() {
                        out.push(JobEvent::Engine(w, ev));
                    }
                }
            }
            CommKind::AllReduce => unreachable!("collective token on the p2p network"),
        }
    }

    fn handle_ring(&mut self, c: bs_comm::CompletedOp, now: SimTime, out: &mut Vec<JobEvent>) {
        if self.faults.as_ref().is_some_and(|f| f.injector.has_loss()) {
            let f = self.faults.as_mut().unwrap();
            if f.injector.should_drop() {
                // The collective failed: no member completes. Re-run the
                // whole op after backoff — the ring is analytic, so the
                // retry is a fresh submission under the same tag.
                f.dropped_bytes += c.bytes;
                let attempt = f.attempts.entry(c.tag).or_insert(0);
                *attempt += 1;
                let attempt = *attempt;
                let policy = f.injector.policy();
                if attempt > policy.max_retries {
                    f.failed = Some(format!(
                        "collective {} exceeded {} retransmit attempts",
                        c.tag, policy.max_retries
                    ));
                    for s in &mut self.scheds {
                        s.teardown(now);
                    }
                    return;
                }
                f.retries += 1;
                let delay = policy.backoff(attempt);
                let JobBackend::Ring { ring, .. } = &mut self.backend else {
                    unreachable!("ring completion without ring backend")
                };
                ring.submit_after(now, delay, c.bytes, c.tag);
                return;
            }
            if !f.attempts.is_empty() {
                f.attempts.remove(&c.tag);
            }
        }
        if self.baseline_graph {
            let batch = self.ar_plug.as_mut().expect("AR plugin").take_batch(c.tag);
            for (tensor, iter) in batch.tensors {
                self.ar_plug
                    .as_mut()
                    .unwrap()
                    .complete_whole_tensor(tensor as usize, iter);
                for w in 0..self.num_workers {
                    self.engines[w].complete_external_queued(
                        now,
                        iter,
                        ExternalRole::AllReduce(tensor as usize),
                    );
                    for ev in self.engines[w].drain_pending() {
                        out.push(JobEvent::Engine(w, ev));
                    }
                }
            }
            self.maybe_submit_fused(now);
        } else {
            let members = self
                .ar_sched_batches
                .remove(&c.tag)
                .expect("unknown scheduled batch");
            for (token, bytes) in members {
                let tok = Token::unpack(token);
                self.scheds[0].complete(now, 0, bytes);
                let done = self
                    .ar_plug
                    .as_mut()
                    .expect("AR plugin")
                    .on_part_done(tok.tensor as usize, tok.iter);
                if done {
                    for w in 0..self.num_workers {
                        self.engines[w].complete_external_queued(
                            now,
                            tok.iter + 1,
                            ExternalRole::ProxyFinish(tok.tensor as usize),
                        );
                        for ev in self.engines[w].drain_pending() {
                            out.push(JobEvent::Engine(w, ev));
                        }
                    }
                }
            }
            self.drain_sched_ring(now);
            self.maybe_submit_scheduled_fused(now);
        }
    }

    /// Closes the job out into a [`RunResult`]. `net` carries the
    /// point-to-point statistics the driver attributes to this job (the
    /// solo driver passes fabric totals; a cluster driver passes per-job
    /// counters); ring statistics come from the job's private stream.
    /// Flushes every instrumented subsystem into one [`MetricSet`] with
    /// summaries closed at `now`. Returns `None` when the job was built
    /// without `record_metrics`. Scheduler metrics get a `worker{w}/sched/`
    /// prefix (PS: one scheduler per worker) or `sched/` (all-reduce: a
    /// single master); GPU-occupancy series land as `worker{w}/gpu_busy`
    /// alongside derived `gpu_busy_secs` / `comm_stall_secs` gauges — the
    /// stall being the part of the worker's window its GPU sat idle
    /// waiting on communication (Fig. 1's "network idle" time).
    pub fn take_metrics(&mut self, now: SimTime) -> Option<MetricSet> {
        let mut ms = MetricSet::new();
        ms.horizon = now;
        let solo_sched = self.scheds.len() == 1;
        for (s, sched) in self.scheds.iter_mut().enumerate() {
            if let Some(m) = sched.take_metrics(now) {
                if solo_sched {
                    ms.absorb("sched/", m);
                } else {
                    ms.absorb(&format!("worker{s}/sched/"), m);
                }
            }
        }
        for (w, engine) in self.engines.iter_mut().enumerate() {
            if let Some(busy) = engine.take_gpu_busy() {
                let busy_secs = busy.integral_secs(now);
                let window = busy
                    .samples()
                    .first()
                    .map_or(0.0, |&(t0, _)| now.saturating_sub(t0).as_secs_f64());
                ms.gauge(format!("worker{w}/gpu_busy_secs"), busy_secs);
                ms.gauge(
                    format!("worker{w}/comm_stall_secs"),
                    (window - busy_secs).max(0.0),
                );
                ms.series(format!("worker{w}/gpu_busy"), busy);
            }
        }
        if let Some(f) = &self.faults {
            ms.counter("faults/retries", f.retries);
            ms.counter("faults/reroutes", f.reroutes);
            ms.counter("faults/dropped_bytes", f.dropped_bytes);
            ms.counter("faults/reclaimed_bytes", f.reclaimed_bytes);
        }
        if ms.is_empty() {
            None
        } else {
            Some(ms)
        }
    }

    /// Fills the wire-lifecycle fields of this job's partition records
    /// from fabric xray records. Tags must already be job-local (the
    /// cluster driver strips the job namespace); co-tenant bursts are
    /// skipped. Call before [`Self::into_result`] — and before appending
    /// flow arrows — so the records are complete.
    pub fn absorb_wire_xray(&mut self, recs: &[WireXrayRecord]) {
        let Some(x) = self.xray.as_mut() else { return };
        for &(tag, _src, _dst, submitted, started, released, delivered) in recs {
            if is_burst_tag(tag) {
                continue;
            }
            if let Some(&i) = x.index.get(&tag) {
                let p = &mut x.parts[i];
                p.wire_submit = submitted;
                p.wire_start = started;
                p.wire_end = released;
                p.delivered = delivered;
                p.wire_seen = true;
            }
        }
    }

    /// Appends causal flow arrows (BP production → wire start, one per
    /// push partition that reached the wire) to `trace`. The arrows bind
    /// to the compute and wire spans by track name, so call this with the
    /// same `prefix` the span appenders used.
    pub fn append_xray_flows(&self, trace: &mut Trace, prefix: &str) {
        let Some(x) = &self.xray else { return };
        for p in &x.parts {
            if p.pull || !p.wire_seen {
                continue;
            }
            trace.push_flow(
                format!("t{}.p{}@it{}", p.tensor, p.part, p.iter),
                format!("{prefix}worker{}/gpu", p.worker),
                p.produced,
                format!("{prefix}worker{}/up", p.worker),
                p.wire_start,
            );
        }
        // Per-chunk ring flows: one arrow per chunk crossing the phase
        // boundary, binding its last reduce-scatter hop to its first
        // all-gather hop. Hops are peeked (not drained) in their recorded
        // Vec order, so arrow order is deterministic by construction —
        // never a HashMap walk.
        if let JobBackend::Ring { ring, .. } = &self.backend {
            for pair in ring.xray_hops().windows(2) {
                let (rs, ag) = (pair[0], pair[1]);
                if rs.tag == ag.tag
                    && rs.chunk == ag.chunk
                    && rs.phase == bs_comm::RingPhase::ReduceScatter
                    && ag.phase == bs_comm::RingPhase::AllGather
                {
                    trace.push_flow(
                        format!("b{} chunk{}", rs.tag, rs.chunk),
                        format!("{prefix}ring/reduce_scatter"),
                        rs.deliver,
                        format!("{prefix}ring/all_gather"),
                        ag.submit,
                    );
                }
            }
        }
    }

    /// Drains every xray buffer into one [`XrayLog`], or `None` when the
    /// job was built without `record_xray`.
    fn take_xray_log(&mut self, cfg: &WorldConfig, finished_at: SimTime) -> Option<XrayLog> {
        let x = self.xray.take()?;
        let mut log = XrayLog {
            scheduler: cfg.scheduler.label().to_string(),
            start: x.start,
            end: finished_at,
            warmup: cfg.warmup as usize,
            marks: self.marks.clone(),
            parts: x.parts,
            ..XrayLog::default()
        };
        for (w, engine) in self.engines.iter_mut().enumerate() {
            let dag = engine.dag().clone();
            for (iter, node, start, end) in engine.take_xray() {
                if let NodeKind::Compute { layer, pass } = dag.nodes[node].kind {
                    log.compute.push(ComputeSpan {
                        worker: w,
                        iter,
                        layer: layer as u32,
                        backward: matches!(pass, Pass::Backward),
                        start,
                        end,
                    });
                }
            }
        }
        for (s, sched) in self.scheds.iter_mut().enumerate() {
            if let Some(stalls) = sched.take_xray(finished_at) {
                for (lane, start, end) in stalls {
                    log.stalls.push(StallSpan {
                        worker: s,
                        lane,
                        start,
                        end,
                    });
                }
            }
        }
        match &mut self.backend {
            JobBackend::Ps { ps } => {
                for (iter, tensor, part, at) in ps.take_xray() {
                    log.aggs.push(AggEvent {
                        iter,
                        tensor,
                        part,
                        at,
                    });
                }
            }
            JobBackend::Ring { ring, .. } => {
                // Hops arrive chunk-major per completed op, so consecutive
                // equal-tag runs delimit ops: derive the coarse RingOp per
                // run (start = first hop's submit, end = max deliver) and
                // keep every hop for the split rs/ag attribution.
                for hop in ring.take_xray() {
                    let phase = match hop.phase {
                        bs_comm::RingPhase::ReduceScatter => bs_xray::RingPhase::ReduceScatter,
                        bs_comm::RingPhase::AllGather => bs_xray::RingPhase::AllGather,
                    };
                    match log.ring_ops.last_mut() {
                        // `chunk == 0 && hop == 0` opens a fresh op even if
                        // the batch tag repeats back-to-back.
                        Some(op) if op.tag == hop.tag && (hop.chunk, hop.hop) != (0, 0) => {
                            op.start = op.start.min(hop.submit);
                            op.end = op.end.max(hop.deliver);
                        }
                        _ => log.ring_ops.push(RingOp {
                            tag: hop.tag,
                            start: hop.submit,
                            end: hop.deliver,
                        }),
                    }
                    log.ring_hops.push(RingHopRecord {
                        tag: hop.tag,
                        chunk: hop.chunk,
                        hop: hop.hop,
                        phase,
                        enqueue: hop.enqueue,
                        submit: hop.submit,
                        deliver: hop.deliver,
                    });
                }
            }
        }
        Some(log)
    }

    pub fn into_result(
        mut self,
        cfg: &WorldConfig,
        finished_at: SimTime,
        net: JobNetStats,
    ) -> RunResult {
        if let Some(reason) = self.faults.as_ref().and_then(|f| f.failed.clone()) {
            // The run aborted before measuring anything; report the
            // outcome (and whatever metrics were recorded) instead of
            // asserting on missing iteration marks.
            let mut result = RunResult::failed(
                cfg.model.sample_unit.label(),
                cfg.scheduler.label(),
                finished_at,
                reason,
            );
            result.metrics = cfg
                .record_metrics
                .then(|| self.take_metrics(finished_at))
                .flatten();
            return result;
        }
        let xray = self
            .take_xray_log(cfg, finished_at)
            .map(|log| XrayReport::build(&log));
        let metrics = cfg
            .record_metrics
            .then(|| self.take_metrics(finished_at))
            .flatten();
        let (p2p, coll, comm_events, peak_in_flight) = match &self.backend {
            JobBackend::Ps { .. } => (net.p2p_bytes, 0, net.comm_events, net.peak_in_flight),
            JobBackend::Ring { ring, .. } => (0, ring.bytes_reduced(), ring.ops_reduced(), 0),
        };
        let mut result = RunResult::from_iteration_marks(
            &self.marks,
            cfg.warmup as usize,
            cfg.global_batch(),
            cfg.model.sample_unit.label(),
            cfg.scheduler.label(),
            p2p,
            coll,
            finished_at,
        );
        result.peak_port_utilisation = match self.backend {
            JobBackend::Ps { .. } => net.peak_port_utilisation,
            JobBackend::Ring { .. } => 0.0,
        };
        result.comm_events = comm_events;
        result.peak_in_flight = peak_in_flight;
        result.metrics = metrics;
        result.xray = xray;
        if let Some(f) = &self.faults {
            if f.retries > 0 || f.dropped_bytes > 0 {
                result.outcome = RunOutcome::DegradedCompleted {
                    retries: f.retries,
                    reroutes: f.reroutes,
                };
            }
        }
        result
    }

    /// Appends this job's recorded compute spans to `trace`, with track
    /// names prefixed by `prefix` (e.g. `"job0/"`).
    pub fn append_compute_trace(&mut self, trace: &mut Trace, prefix: &str) {
        for (w, engine) in self.engines.iter_mut().enumerate() {
            let dag = engine.dag().clone();
            for (iter, node, start, end) in engine.take_trace() {
                let name = match dag.nodes[node].kind {
                    NodeKind::Compute { layer, pass } => match pass {
                        Pass::Forward => format!("fwd{layer}@it{iter}"),
                        Pass::Backward => format!("bwd{layer}@it{iter}"),
                    },
                    _ => continue,
                };
                trace.push(name, format!("{prefix}worker{w}/gpu"), start, end);
            }
        }
    }

    /// Appends this job's recorded ring-collective spans to `trace`: the
    /// full op on the `ring` track plus its reduce-scatter and all-gather
    /// halves on phase-colored sub-tracks.
    pub fn append_ring_trace(&mut self, trace: &mut Trace, prefix: &str) {
        if let JobBackend::Ring { ring, .. } = &mut self.backend {
            for (tag, start, rs_end, end) in ring.take_trace() {
                // Scheduled batches and baseline fused batches both use
                // opaque batch ids; name them generically.
                trace.push(
                    format!("allreduce batch {tag}"),
                    format!("{prefix}ring"),
                    start,
                    end,
                );
                trace.push(
                    format!("reduce_scatter b{tag}"),
                    format!("{prefix}ring/reduce_scatter"),
                    start,
                    rs_end,
                );
                trace.push(
                    format!("all_gather b{tag}"),
                    format!("{prefix}ring/all_gather"),
                    rs_end,
                    end,
                );
            }
        }
    }

    /// Per-worker queued-subtask counts — the first tool to reach for
    /// when a configuration seems wedged.
    pub fn debug_sched_queues(&self) -> Vec<usize> {
        self.scheds.iter().map(|s| s.queued()).collect()
    }

    /// Per-worker retired-iteration counts.
    pub fn debug_iterations(&self) -> Vec<u64> {
        self.engines.iter().map(|e| e.done_iterations()).collect()
    }

    /// Number of recorded iteration marks.
    pub fn debug_marks(&self) -> usize {
        self.marks.len()
    }

    /// Pending co-tenant burst timers.
    pub fn debug_bg_timers(&self) -> usize {
        self.burst.as_ref().map(|b| b.pending()).unwrap_or(0)
    }

    /// Outstanding collectives on the private ring stream.
    pub fn debug_ring_outstanding(&self) -> usize {
        match &self.backend {
            JobBackend::Ring { ring, .. } => ring.outstanding(),
            JobBackend::Ps { .. } => 0,
        }
    }
}

/// Names one wire span from its job-local tag, matching the single-job
/// trace conventions: co-tenant bursts are labelled by node pair, subtask
/// transfers by `(kind, tensor, partition, iteration)` on the owning
/// worker's up/down track. Track names get `prefix` prepended.
pub fn wire_span_into_trace(trace: &mut Trace, span: &WireSpan, prefix: &str) {
    let (tag, src, dst, start, end) = *span;
    if is_burst_tag(tag) {
        trace.push(
            "co-tenant burst",
            format!("{prefix}node{src}->node{dst}/bg"),
            start,
            end,
        );
        return;
    }
    let tok = Token::unpack(tag);
    let (name, track) = match tok.kind {
        CommKind::Push => (
            format!("push t{}.p{}@it{}", tok.tensor, tok.part, tok.iter),
            format!("{prefix}worker{}/up", tok.worker),
        ),
        CommKind::Pull => (
            format!("pull t{}.p{}@it{}", tok.tensor, tok.part, tok.iter),
            format!("{prefix}worker{}/down", tok.worker),
        ),
        CommKind::AllReduce => unreachable!("collective on p2p fabric"),
    };
    trace.push(name, track, start, end);
}
