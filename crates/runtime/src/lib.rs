//! The world driver: one complete distributed-training simulation.
//!
//! This crate composes everything below it into the system the paper
//! evaluates: `n` workers, each with a [`bs_engine::WorkerEngine`] running
//! the iteration DAG on a serial GPU; a gradient-synchronisation backend
//! (sharded PS over the [`bs_net::Network`], or a ring all-reduce stream);
//! and a [`bs_core::Scheduler`] policy per worker (or one master scheduler
//! for all-reduce, §5). The *plugins* in [`plugin`] are the glue the paper
//! describes in §3: they translate engine events into `CommTask`
//! submissions and communication completions back into engine dependency
//! grants.
//!
//! [`world::run`] executes one configuration to completion and reports the
//! steady-state training speed — the number every figure in the paper
//! plots.

pub mod config;
pub mod job;
pub mod plugin;
pub mod result;
pub mod token;
pub mod traffic;
pub mod world;

pub use config::{Arch, BackgroundLoad, SchedulerKind, WorldConfig};
pub use job::{JobEvent, JobNetStats, JobState, NodeMap};
pub use result::{RunOutcome, RunResult};
pub use world::{net_window_event, run, run_observed};
