//! Compact identification of one subtask transfer.
//!
//! Network tags and scheduler tokens are bare `u64`s; this module packs
//! `(iteration, worker, kind, tensor, partition)` into one and back.
//! Layout (MSB→LSB): 16-bit iteration, 8-bit worker, 2-bit kind, 14-bit
//! tensor, 24-bit partition — comfortably above every experiment in the
//! repository (≤ 64 workers, ≤ 54 tensors, ≤ 7 000 partitions of the
//! largest tensor at the smallest δ swept).

use bs_core::CommKind;

/// A fully-decoded subtask identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token {
    /// Training iteration the gradient belongs to.
    pub iter: u64,
    /// Worker index (for PS: which worker pushes/pulls; for all-reduce:
    /// unused, 0).
    pub worker: usize,
    /// Push / Pull / AllReduce.
    pub kind: CommKind,
    /// Tensor (layer) index.
    pub tensor: u32,
    /// Partition index within the tensor.
    pub part: u32,
}

const ITER_BITS: u32 = 16;
const WORKER_BITS: u32 = 8;
const KIND_BITS: u32 = 2;
const TENSOR_BITS: u32 = 14;
const PART_BITS: u32 = 24;

impl Token {
    /// Packs into a `u64`. Panics if any field exceeds its bit budget —
    /// better a loud failure than a silently-corrupted experiment.
    pub fn pack(self) -> u64 {
        assert!(self.iter < (1 << ITER_BITS), "iteration overflow");
        assert!(self.worker < (1 << WORKER_BITS), "worker overflow");
        assert!(self.tensor < (1 << TENSOR_BITS), "tensor overflow");
        assert!(self.part < (1 << PART_BITS), "partition overflow");
        let kind = match self.kind {
            CommKind::Push => 0u64,
            CommKind::Pull => 1,
            CommKind::AllReduce => 2,
        };
        (self.iter << (WORKER_BITS + KIND_BITS + TENSOR_BITS + PART_BITS))
            | ((self.worker as u64) << (KIND_BITS + TENSOR_BITS + PART_BITS))
            | (kind << (TENSOR_BITS + PART_BITS))
            | ((self.tensor as u64) << PART_BITS)
            | self.part as u64
    }

    /// Unpacks from a `u64`.
    pub fn unpack(v: u64) -> Token {
        let part = (v & ((1 << PART_BITS) - 1)) as u32;
        let tensor = ((v >> PART_BITS) & ((1 << TENSOR_BITS) - 1)) as u32;
        let kind = match (v >> (TENSOR_BITS + PART_BITS)) & ((1 << KIND_BITS) - 1) {
            0 => CommKind::Push,
            1 => CommKind::Pull,
            2 => CommKind::AllReduce,
            k => panic!("corrupt token: kind bits {k}"),
        };
        let worker =
            ((v >> (KIND_BITS + TENSOR_BITS + PART_BITS)) & ((1 << WORKER_BITS) - 1)) as usize;
        let iter = v >> (WORKER_BITS + KIND_BITS + TENSOR_BITS + PART_BITS);
        Token {
            iter,
            worker,
            kind,
            tensor,
            part,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_representative_values() {
        for (iter, worker, kind, tensor, part) in [
            (0u64, 0usize, CommKind::Push, 0u32, 0u32),
            (499, 63, CommKind::Pull, 53, 6_866),
            (65_535, 255, CommKind::AllReduce, 16_383, 16_777_215),
        ] {
            let t = Token {
                iter,
                worker,
                kind,
                tensor,
                part,
            };
            assert_eq!(Token::unpack(t.pack()), t);
        }
    }

    #[test]
    fn distinct_tokens_pack_distinctly() {
        let a = Token {
            iter: 1,
            worker: 2,
            kind: CommKind::Push,
            tensor: 3,
            part: 4,
        };
        let mut b = a;
        b.kind = CommKind::Pull;
        assert_ne!(a.pack(), b.pack());
        let mut c = a;
        c.part = 5;
        assert_ne!(a.pack(), c.pack());
    }

    #[test]
    #[should_panic(expected = "worker overflow")]
    fn overflow_is_loud() {
        Token {
            iter: 0,
            worker: 256,
            kind: CommKind::Push,
            tensor: 0,
            part: 0,
        }
        .pack();
    }
}
