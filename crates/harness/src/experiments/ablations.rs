//! Ablations: decompose ByteScheduler's gain into its mechanisms.
//!
//! The paper argues three mechanisms matter — tensor partitioning
//! (duplex pipelining + load balance), credit-based windows (latency
//! hiding beyond stop-and-wait), and priority ordering (overlap with the
//! next forward pass). This experiment stacks them one at a time on the
//! same workload, and separately quantifies the baseline's shard-placement
//! sensitivity (§6.2's load-imbalance observation).

use bs_runtime::{run, Arch, SchedulerKind};
use serde::Serialize;

use crate::autotune::tune;
use crate::fidelity::Fidelity;
use crate::report::{fmt_speed, fmt_speedup, Table};
use crate::setups::Setup;

/// One measured ablation step.
#[derive(Clone, Debug, Serialize)]
pub struct Step {
    /// What is enabled.
    pub label: String,
    /// Measured speed.
    pub speed: f64,
    /// Gain over the first (baseline) step.
    pub gain: f64,
}

/// Full ablation output.
#[derive(Clone, Debug, Serialize)]
pub struct Ablations {
    /// Mechanism stack on VGG16 / MXNet PS RDMA / 32 GPUs.
    pub mechanism_stack: Vec<Step>,
    /// Credit-window sweep at the tuned δ (c = k·δ).
    pub credit_window: Vec<Step>,
    /// Baseline shard-placement comparison (naive vs big-array split).
    pub placement: Vec<Step>,
}

/// GPU count used throughout.
pub const GPUS: u64 = 32;

/// Runs all three ablations.
pub fn run_experiment(fid: Fidelity) -> Ablations {
    let setup = Setup::MxnetPsRdma;
    let model = bs_models::zoo::vgg16();
    let mut base_cfg = setup.config(model.clone(), GPUS, 100.0, SchedulerKind::Baseline);
    fid.apply(&mut base_cfg);

    // Tune once; reuse (δ, c) across the stack so only the mechanism
    // changes between rows.
    let tuned = tune(&base_cfg, setup.search_space(), fid.tune_trials, 31);
    let (delta, credit) = (tuned.partition, tuned.credit);

    let measure = |sched: SchedulerKind| {
        let mut cfg = base_cfg.clone();
        cfg.scheduler = sched;
        run(&cfg).speed
    };

    let baseline = measure(SchedulerKind::Baseline);
    let steps = vec![
        ("vanilla (FIFO, whole tensors)".to_string(), baseline),
        (
            format!("+ partitioning (δ={:.1} MB, FIFO)", delta as f64 / 1e6),
            measure(SchedulerKind::FifoPartitioned { partition: delta }),
        ),
        (
            format!(
                "+ credit window (c={:.1} MB, FIFO order)",
                credit as f64 / 1e6
            ),
            measure(SchedulerKind::FifoCredit {
                partition: delta,
                credit,
            }),
        ),
        (
            "+ priority (full ByteScheduler)".to_string(),
            measure(SchedulerKind::ByteScheduler {
                partition: delta,
                credit,
            }),
        ),
    ];
    let mechanism_stack = steps
        .into_iter()
        .map(|(label, speed)| Step {
            label,
            speed,
            gain: speed / baseline - 1.0,
        })
        .collect();

    // Credit sweep: stop-and-wait (c = δ) up to a deep window.
    let credit_window = [1u64, 2, 4, 8, 16]
        .iter()
        .map(|&k| {
            let speed = measure(SchedulerKind::ByteScheduler {
                partition: delta,
                credit: k * delta,
            });
            Step {
                label: format!("credit = {k}·δ"),
                speed,
                gain: speed / baseline - 1.0,
            }
        })
        .collect();

    // Placement: the same vanilla stack with naive vs balanced keys.
    let placement = [false, true]
        .iter()
        .map(|&split| {
            let mut cfg = base_cfg.clone();
            if let Arch::Ps {
                baseline_bigarray_split,
                ..
            } = &mut cfg.arch
            {
                *baseline_bigarray_split = split;
            }
            let speed = run(&cfg).speed;
            Step {
                label: if split {
                    "baseline, big-array split (balanced)".into()
                } else {
                    "baseline, naive whole-tensor round-robin".into()
                },
                speed,
                gain: speed / baseline - 1.0,
            }
        })
        .collect();

    Ablations {
        mechanism_stack,
        credit_window,
        placement,
    }
}

fn section(title: &str, steps: &[Step]) -> String {
    let mut t = Table::new(title, &["configuration", "speed", "vs vanilla"]);
    for s in steps {
        t.row(vec![
            s.label.clone(),
            fmt_speed(s.speed),
            fmt_speedup(s.gain),
        ]);
    }
    t.render()
}

/// Renders all three tables.
pub fn render(a: &Ablations) -> String {
    format!(
        "{}\n{}\n{}",
        section(
            "Ablation — mechanism stack (VGG16, MXNet PS RDMA, 32 GPUs)",
            &a.mechanism_stack
        ),
        section("Ablation — credit window at tuned δ", &a.credit_window),
        section("Ablation — baseline shard placement", &a.placement)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanisms_compose_monotonically_enough() {
        let a = run_experiment(Fidelity::quick());
        let s = &a.mechanism_stack;
        assert_eq!(s.len(), 4);
        // Partitioning alone must already beat vanilla (balance + duplex).
        assert!(
            s[1].speed > s[0].speed,
            "partitioning: {} vs {}",
            s[1].speed,
            s[0].speed
        );
        // The full scheduler is the best of the stack.
        let best = s.iter().map(|x| x.speed).fold(f64::MIN, f64::max);
        assert!(s[3].speed >= best * 0.99, "full BS should top the stack");
    }

    #[test]
    fn deeper_credit_windows_do_not_hurt_throughput_much() {
        let a = run_experiment(Fidelity::quick());
        let first = a.credit_window.first().unwrap().speed;
        let best = a
            .credit_window
            .iter()
            .map(|s| s.speed)
            .fold(f64::MIN, f64::max);
        // Stop-and-wait (c = δ) must not be the clear best — the §4.2
        // argument for credits.
        assert!(best >= first, "windowing should help or tie");
    }

    #[test]
    fn balanced_placement_beats_naive_for_the_baseline() {
        let a = run_experiment(Fidelity::quick());
        let naive = &a.placement[0];
        let split = &a.placement[1];
        assert!(
            split.speed > naive.speed,
            "balanced {} vs naive {}",
            split.speed,
            naive.speed
        );
    }
}
