//! §7 "co-scheduling in a shared cluster", the congestion half: how does
//! scheduling behave when a co-tenant's traffic contends on the job's
//! NICs?
//!
//! The paper notes its algorithm ignores shared resources and that "the
//! performance impact is not negligible when the shared resource is the
//! bottleneck". This experiment quantifies that: VGG16 on MXNet PS RDMA
//! with a synthetic co-tenant injecting bursts on every worker NIC, from
//! idle to saturating. The useful findings: (1) ByteScheduler's *relative*
//! gain survives congestion (its mechanisms are about ordering, which the
//! tenant does not change), and (2) re-tuning under congestion recovers
//! additional speed versus knobs tuned on an idle network — the bridge to
//! the paper's proposed cooperative scheduling.

use bs_runtime::{run, BackgroundLoad, SchedulerKind, WorldConfig};
use serde::Serialize;

use crate::autotune::tune;
use crate::fidelity::Fidelity;
use crate::report::{fmt_speed, fmt_speedup, Table};
use crate::setups::Setup;

/// Congestion levels: gap between a co-tenant's 4 MB bursts, µs
/// (`None` = idle network).
pub const GAPS_US: [Option<u64>; 4] = [None, Some(2_000), Some(500), Some(0)];
/// Co-tenant burst size.
pub const BURST_BYTES: u64 = 4 << 20;

/// One congestion level's measurements.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Burst gap in µs (`None` = no co-tenant).
    pub gap_us: Option<u64>,
    /// Vanilla baseline speed.
    pub baseline: f64,
    /// ByteScheduler with knobs tuned on the *idle* network.
    pub idle_tuned: f64,
    /// ByteScheduler re-tuned under this congestion level.
    pub congestion_tuned: f64,
    /// Gain of the congestion-tuned scheduler over baseline.
    pub gain: f64,
}

/// The whole experiment.
#[derive(Clone, Debug, Serialize)]
pub struct CoSchedule {
    /// Rows by congestion level.
    pub rows: Vec<Row>,
}

fn with_bg(mut cfg: WorldConfig, gap_us: Option<u64>) -> WorldConfig {
    cfg.background = gap_us.map(|gap_us| BackgroundLoad {
        burst_bytes: BURST_BYTES,
        gap_us,
    });
    cfg
}

/// Runs the congestion sweep.
pub fn run_experiment(fid: Fidelity) -> CoSchedule {
    let setup = Setup::MxnetPsRdma;
    let model = bs_models::zoo::vgg16();
    let mut base = setup.config(model, 32, 25.0, SchedulerKind::Baseline);
    fid.apply(&mut base);

    // Knobs tuned on the idle network, reused under congestion.
    let idle = tune(&base, setup.search_space(), fid.tune_trials, 71);

    let rows = GAPS_US
        .iter()
        .map(|&gap| {
            let baseline = run(&with_bg(base.clone(), gap)).speed;

            let mut idle_cfg = with_bg(base.clone(), gap);
            idle_cfg.scheduler = SchedulerKind::ByteScheduler {
                partition: idle.partition,
                credit: idle.credit,
            };
            let idle_tuned = run(&idle_cfg).speed;

            let congestion_tuned = if gap.is_none() {
                idle_tuned
            } else {
                let congested_base = with_bg(base.clone(), gap);
                let out = tune(
                    &congested_base,
                    setup.search_space(),
                    fid.tune_trials,
                    73 + gap.unwrap_or(0),
                );
                let mut cfg = congested_base;
                cfg.scheduler = SchedulerKind::ByteScheduler {
                    partition: out.partition,
                    credit: out.credit,
                };
                run(&cfg).speed.max(idle_tuned)
            };

            Row {
                gap_us: gap,
                baseline,
                idle_tuned,
                congestion_tuned,
                gain: congestion_tuned / baseline - 1.0,
            }
        })
        .collect();
    CoSchedule { rows }
}

/// Renders the sweep.
pub fn render(c: &CoSchedule) -> String {
    let mut t = Table::new(
        "§7 extension — co-tenant congestion (VGG16, MXNet PS RDMA, 25 Gbps)",
        &[
            "co-tenant",
            "baseline",
            "idle-tuned BS",
            "re-tuned BS",
            "gain",
        ],
    );
    for r in &c.rows {
        t.row(vec![
            match r.gap_us {
                None => "none".into(),
                Some(0) => "saturating".into(),
                Some(g) => format!("4MB / {g}us"),
            },
            fmt_speed(r.baseline),
            fmt_speed(r.idle_tuned),
            fmt_speed(r.congestion_tuned),
            fmt_speedup(r.gain),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congestion_slows_everyone_but_scheduling_still_wins() {
        let c = run_experiment(Fidelity::quick());
        let idle = &c.rows[0];
        let heavy = c.rows.last().unwrap();
        // The co-tenant costs real throughput...
        assert!(
            heavy.baseline < idle.baseline * 0.95,
            "saturating tenant must hurt the baseline: {} vs {}",
            heavy.baseline,
            idle.baseline
        );
        assert!(heavy.idle_tuned < idle.idle_tuned);
        // ...but ByteScheduler keeps a solid margin at every level.
        for r in &c.rows {
            assert!(
                r.congestion_tuned > r.baseline * 1.15,
                "gap {:?}: BS {} vs baseline {}",
                r.gap_us,
                r.congestion_tuned,
                r.baseline
            );
        }
    }
}
