//! Figure 9: a Bayesian-Optimization session made visible — 7 samples
//! tuning the credit size for VGG16 on MXNet all-reduce, with the GP
//! posterior mean and 95 % confidence interval over the credit axis.

use bs_runtime::{run, SchedulerKind};
use bs_sim::SimRng;
use bs_tune::gp::{big_phi, phi, Gp};
use bs_tune::SearchSpace;
use serde::Serialize;

use crate::fidelity::Fidelity;
use crate::report::{fmt_mb, fmt_speed, Table};
use crate::setups::Setup;

/// One profiled sample.
#[derive(Clone, Debug, Serialize)]
pub struct Sample {
    /// Credit size in bytes.
    pub credit: u64,
    /// Observed speed (images/sec).
    pub speed: f64,
}

/// One posterior grid point.
#[derive(Clone, Debug, Serialize)]
pub struct PosteriorPoint {
    /// Credit size in bytes.
    pub credit: u64,
    /// Posterior mean speed.
    pub mean: f64,
    /// 95 % CI bounds.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// The full Figure 9 artefact.
#[derive(Clone, Debug, Serialize)]
pub struct Fig09 {
    /// The 7 profiled (credit, speed) samples, in sampling order.
    pub samples: Vec<Sample>,
    /// GP posterior over the credit axis after all samples.
    pub posterior: Vec<PosteriorPoint>,
    /// The credit BO would pick next (argmax posterior mean).
    pub best_credit: u64,
}

/// Number of profiled samples, matching the figure.
pub const NUM_SAMPLES: usize = 7;

/// Runs the session: 1-D BO (EI, ξ = 0.1) over credit size with the
/// partition fixed, on VGG16 / MXNet NCCL RDMA / 32 GPUs — the figure's
/// setup. We run the link at 25 Gbps, where the credit knob has real
/// curvature (at 100 Gbps VGG16-NCCL is compute-bound and the objective
/// is flat to within noise).
pub fn run_experiment(fid: Fidelity) -> Fig09 {
    let space = SearchSpace::allreduce();
    // Partition fixed; only credit varies.
    let partition: u64 = 8 << 20;
    let profile = |credit: u64, seed: u64| -> f64 {
        let mut cfg = Setup::MxnetNcclRdma.config(
            bs_models::zoo::vgg16(),
            32,
            25.0,
            SchedulerKind::ByteScheduler { partition, credit },
        );
        fid.apply(&mut cfg);
        cfg.seed = seed;
        run(&cfg).speed
    };
    let decode = |x: f64| space.decode([space.encode(partition, 0)[0], x]).1;

    let mut rng = SimRng::new(9);
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut samples = Vec::new();
    for trial in 0..NUM_SAMPLES {
        let x = if trial < 3 {
            rng.next_f64()
        } else {
            // Maximise EI over a credit-axis grid.
            let gp = Gp::fit(&xs, &ys);
            let best = ys.iter().cloned().fold(f64::MIN, f64::max);
            let mean = ys.iter().sum::<f64>() / ys.len() as f64;
            let spread = (ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / ys.len() as f64)
                .sqrt()
                .max(1e-9);
            let xi = 0.1 * spread;
            let mut best_x = 0.5;
            let mut best_ei = f64::MIN;
            for k in 0..64 {
                let cand = k as f64 / 63.0;
                let p = gp.predict(&[cand]);
                let ei = if p.std_dev < 1e-12 {
                    (p.mean - best - xi).max(0.0)
                } else {
                    let z = (p.mean - best - xi) / p.std_dev;
                    (p.mean - best - xi) * big_phi(z) + p.std_dev * phi(z)
                };
                if ei > best_ei {
                    best_ei = ei;
                    best_x = cand;
                }
            }
            best_x
        };
        let credit = decode(x);
        let speed = profile(credit, 1000 + trial as u64);
        xs.push(vec![x]);
        ys.push(speed);
        samples.push(Sample { credit, speed });
    }

    let gp = Gp::fit(&xs, &ys);
    let mut posterior = Vec::new();
    let mut best_credit = samples[0].credit;
    let mut best_mean = f64::MIN;
    for k in 0..25 {
        let x = k as f64 / 24.0;
        let p = gp.predict(&[x]);
        let (lo, hi) = p.ci95();
        let credit = decode(x);
        if p.mean > best_mean {
            best_mean = p.mean;
            best_credit = credit;
        }
        posterior.push(PosteriorPoint {
            credit,
            mean: p.mean,
            lo,
            hi,
        });
    }
    Fig09 {
        samples,
        posterior,
        best_credit,
    }
}

/// Renders the session: the sample list plus the posterior band.
pub fn render(r: &Fig09) -> String {
    let mut s1 = Table::new(
        "Figure 9 — BO tuning credit size (VGG16, MXNet all-reduce): samples",
        &["#", "credit (MB)", "speed"],
    );
    for (i, smp) in r.samples.iter().enumerate() {
        s1.row(vec![
            format!("{}", i + 1),
            fmt_mb(smp.credit),
            fmt_speed(smp.speed),
        ]);
    }
    let mut s2 = Table::new(
        format!(
            "GP posterior over credit (argmax mean at {} MB)",
            fmt_mb(r.best_credit)
        ),
        &["credit (MB)", "mean", "95% lo", "95% hi"],
    );
    for p in &r.posterior {
        s2.row(vec![
            fmt_mb(p.credit),
            fmt_speed(p.mean),
            fmt_speed(p.lo),
            fmt_speed(p.hi),
        ]);
    }
    format!("{}\n{}", s1.render(), s2.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_seven_samples_and_a_posterior_band() {
        let r = run_experiment(Fidelity::quick());
        assert_eq!(r.samples.len(), NUM_SAMPLES);
        assert_eq!(r.posterior.len(), 25);
        for p in &r.posterior {
            assert!(p.lo <= p.mean && p.mean <= p.hi, "CI must bracket mean");
        }
        // The posterior's confidence must tighten near sampled credits
        // relative to the widest point of the band.
        let widths: Vec<f64> = r.posterior.iter().map(|p| p.hi - p.lo).collect();
        let min_w = widths.iter().cloned().fold(f64::MAX, f64::min);
        let max_w = widths.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_w > min_w * 1.2, "band should vary: {min_w} vs {max_w}");
    }
}
