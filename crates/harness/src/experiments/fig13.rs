//! Figure 13: the auto-tuner's contribution — speed under bandwidths
//! from 1 to 100 Gbps with (i) the vanilla baseline, (ii) a *fixed*
//! scheduler whose (δ, c) were tuned once at 1 Gbps, and (iii) the fully
//! *tuned* scheduler re-tuned per bandwidth. VGG16 / ResNet-50 /
//! Transformer on MXNet PS RDMA and MXNet NCCL RDMA, 32 GPUs (§6.3).

use bs_models::DnnModel;
use bs_runtime::{run, SchedulerKind};
use serde::Serialize;

use crate::autotune::tune;
use crate::fidelity::Fidelity;
use crate::report::{fmt_speed, fmt_speedup, Table};
use crate::setups::Setup;

/// Bandwidths swept, Gbps.
pub const BANDWIDTHS: [f64; 5] = [1.0, 10.0, 25.0, 40.0, 100.0];
/// GPU count (4 machines / 32 ranks).
pub const GPUS: u64 = 32;

/// One bandwidth point.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Bandwidth, Gbps.
    pub gbps: f64,
    /// Vanilla baseline speed.
    pub baseline: f64,
    /// ByteScheduler with (δ, c) frozen from the 1 Gbps tuning.
    pub fixed: f64,
    /// ByteScheduler re-tuned at this bandwidth.
    pub tuned: f64,
    /// Tuned gain over baseline.
    pub tuned_speedup: f64,
}

/// One panel: model × architecture.
#[derive(Clone, Debug, Serialize)]
pub struct Panel {
    /// Model name.
    pub model: String,
    /// Setup (PS or NCCL, both RDMA).
    pub setup: Setup,
    /// Rows by bandwidth.
    pub rows: Vec<Row>,
}

/// The whole figure.
#[derive(Clone, Debug, Serialize)]
pub struct Fig13 {
    /// Six panels: 3 models × 2 architectures.
    pub panels: Vec<Panel>,
}

/// Runs the figure.
pub fn run_experiment(fid: Fidelity) -> Fig13 {
    let combos: Vec<(DnnModel, Setup)> = bs_models::zoo::benchmark_models()
        .into_iter()
        .flat_map(|m| {
            [Setup::MxnetPsRdma, Setup::MxnetNcclRdma]
                .into_iter()
                .map(move |s| (m.clone(), s))
        })
        .collect();
    let panels = crate::parallel::parallel_map(combos, |(model, setup)| {
        run_panel(model.clone(), *setup, fid)
    });
    Fig13 { panels }
}

fn run_panel(model: DnnModel, setup: Setup, fid: Fidelity) -> Panel {
    // The "fixed" knobs come from tuning at the lowest bandwidth (§6.3:
    // "we fix the partition and credit sizes to be values given by our
    // auto-tuning algorithm under 1 Gbps bandwidth").
    let mut low_cfg = setup.config(model.clone(), GPUS, 1.0, SchedulerKind::Baseline);
    fid.apply(&mut low_cfg);
    let fixed_knobs = tune(&low_cfg, setup.search_space(), fid.tune_trials, 13);

    let rows = BANDWIDTHS
        .iter()
        .map(|&gbps| {
            let mut base_cfg = setup.config(model.clone(), GPUS, gbps, SchedulerKind::Baseline);
            fid.apply(&mut base_cfg);
            let baseline = run(&base_cfg);

            let mut fixed_cfg = base_cfg.clone();
            fixed_cfg.scheduler = SchedulerKind::ByteScheduler {
                partition: fixed_knobs.partition,
                credit: fixed_knobs.credit,
            };
            let fixed = run(&fixed_cfg);

            // At the anchor bandwidth, "tuned" and "fixed" are the same
            // tuning by definition; elsewhere, re-tune.
            let tuned = if gbps == 1.0 {
                fixed.clone()
            } else {
                let outcome = tune(
                    &base_cfg,
                    setup.search_space(),
                    fid.tune_trials,
                    17 + gbps as u64,
                );
                let mut tuned_cfg = base_cfg.clone();
                tuned_cfg.scheduler = SchedulerKind::ByteScheduler {
                    partition: outcome.partition,
                    credit: outcome.credit,
                };
                run(&tuned_cfg)
            };

            Row {
                gbps,
                baseline: baseline.speed,
                fixed: fixed.speed,
                tuned: tuned.speed,
                tuned_speedup: tuned.speedup_over(&baseline),
            }
        })
        .collect();
    Panel {
        model: model.name,
        setup,
        rows,
    }
}

/// Renders all panels.
pub fn render(fig: &Fig13) -> String {
    let mut out = String::new();
    for p in &fig.panels {
        let mut t = Table::new(
            format!("Figure 13 — {} on {}", p.model, p.setup.label()),
            &[
                "Gbps",
                "Baseline",
                "Fixed sched",
                "Tuned sched",
                "tuned gain",
            ],
        );
        for r in &p.rows {
            t.row(vec![
                format!("{:.0}", r.gbps),
                fmt_speed(r.baseline),
                fmt_speed(r.fixed),
                fmt_speed(r.tuned),
                fmt_speedup(r.tuned_speedup),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §6.3 claim on one cheap panel: the tuned scheduler beats the
    /// baseline everywhere, and beats-or-matches the fixed scheduler.
    #[test]
    fn tuned_dominates_fixed_and_baseline_on_resnet_ps() {
        let panel = run_panel(
            bs_models::zoo::resnet50(),
            Setup::MxnetPsRdma,
            Fidelity::quick(),
        );
        for r in &panel.rows {
            assert!(
                r.tuned >= r.baseline * 0.99,
                "tuned {} vs baseline {} at {} Gbps",
                r.tuned,
                r.baseline,
                r.gbps
            );
            assert!(
                r.tuned >= r.fixed * 0.98,
                "tuned {} vs fixed {} at {} Gbps",
                r.tuned,
                r.fixed,
                r.gbps
            );
        }
    }
}
