//! One module per paper table/figure. Each exposes a `run(fidelity)`
//! returning a serialisable result plus `render(&result)` producing the
//! terminal table(s); the binaries glue them together.

pub mod ablations;
pub mod cluster;
pub mod coschedule;
pub mod dynamic;
pub mod faults;
pub mod fig02;
pub mod fig04;
pub mod fig09;
pub mod fig13;
pub mod fig14;
pub mod replay;
pub mod scaling;
pub mod table1;
