//! Figure 2: the contrived example — a 3-layer DNN where a better
//! schedule with tensor partitioning beats FIFO by ~44 %.
//!
//! The paper's figure is a hand-drawn timeline ("a simple and contrived
//! illustrative example"), not a measured system; here we build a concrete
//! 3-layer model with the same character — layer sizes and compute times
//! chosen so that the FIFO order badly delays the next iteration's first
//! forward op — and measure it end-to-end under both schedulers.

use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{NetConfig, Transport};
use bs_runtime::{run, Arch, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use serde::Serialize;

use crate::fidelity::Fidelity;
use crate::report::{fmt_speed, fmt_speedup, Table};

/// Measured outcome.
#[derive(Clone, Debug, Serialize)]
pub struct Fig02 {
    /// FIFO (vanilla) speed, samples/sec.
    pub fifo_speed: f64,
    /// Better schedule (priority + partitioning) speed.
    pub scheduled_speed: f64,
    /// Relative gain (the paper's contrived timeline shows 44.4 %).
    pub speedup: f64,
    /// FIFO iteration time (ms).
    pub fifo_iter_ms: f64,
    /// Scheduled iteration time (ms).
    pub scheduled_iter_ms: f64,
}

/// The contrived three-layer model: layer 0 (nearest the input) carries
/// the big tensor, so FIFO — which transmits in backward order — finishes
/// exactly the tensor that gates the next iteration *last*.
pub fn contrived_model() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("Contrived3", gpu, 4, SampleUnit::Images)
        .explicit(
            "layer0",
            12_000_000,
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        )
        .explicit(
            "layer1",
            6_000_000,
            SimTime::from_millis(3),
            SimTime::from_millis(6),
        )
        .explicit(
            "layer2",
            3_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .build()
}

/// Runs the experiment.
pub fn run_experiment(fid: Fidelity) -> Fig02 {
    // Two worker machines, two PS shards, 10 Gbps TCP: communication and
    // computation are comparable, the regime where ordering matters most.
    let net = NetConfig::gbps(10.0, Transport::tcp());
    let mk = |sched| {
        let mut cfg = WorldConfig::new(
            contrived_model(),
            2,
            Arch::ps(2),
            net,
            bs_engine::EngineConfig::mxnet_ps(),
            sched,
        );
        fid.apply(&mut cfg);
        cfg.jitter = 0.0; // the figure is an idealised timeline
        cfg
    };
    let fifo = run(&mk(SchedulerKind::Baseline));
    let sched = run(&mk(SchedulerKind::ByteScheduler {
        partition: 2_000_000,
        credit: 8_000_000,
    }));
    Fig02 {
        fifo_speed: fifo.speed,
        scheduled_speed: sched.speed,
        speedup: sched.speedup_over(&fifo),
        fifo_iter_ms: fifo.iteration_period * 1e3,
        scheduled_iter_ms: sched.iteration_period * 1e3,
    }
}

/// Renders the terminal table.
pub fn render(r: &Fig02) -> String {
    let mut t = Table::new(
        "Figure 2 — contrived 3-layer example (paper: 44.4% gain over FIFO)",
        &["schedule", "iter (ms)", "speed (img/s)", "gain"],
    );
    t.row(vec![
        "FIFO".into(),
        format!("{:.2}", r.fifo_iter_ms),
        fmt_speed(r.fifo_speed),
        "-".into(),
    ]);
    t.row(vec![
        "priority+partition".into(),
        format!("{:.2}", r.scheduled_iter_ms),
        fmt_speed(r.scheduled_speed),
        fmt_speedup(r.speedup),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_gain_is_in_the_papers_ballpark() {
        let r = run_experiment(Fidelity::quick());
        assert!(
            r.speedup > 0.25 && r.speedup < 0.70,
            "gain {:.1}% out of the contrived-example range",
            r.speedup * 100.0
        );
    }

    #[test]
    fn render_mentions_both_schedules() {
        let r = run_experiment(Fidelity::quick());
        let s = render(&r);
        assert!(s.contains("FIFO"));
        assert!(s.contains("priority+partition"));
    }
}
