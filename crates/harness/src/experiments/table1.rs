//! Table 1: the best (partition, credit) sizes found by auto-tuning —
//! per benchmark model, for MXNet PS RDMA and MXNet NCCL RDMA, at
//! 100 Gbps with 32 GPUs.
//!
//! The paper's observations this table supports: NCCL needs much larger
//! partitions and credits than PS (all-reduce pays a per-operation
//! synchronisation cost), and the best sizes differ across models.

use bs_models::DnnModel;
use bs_runtime::SchedulerKind;
use serde::Serialize;

use crate::autotune::tune;
use crate::fidelity::Fidelity;
use crate::report::{fmt_mb, Table};
use crate::setups::Setup;

/// GPU count used by the paper's Table 1.
pub const GPUS: u64 = 32;

/// One cell of the table.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    /// Model name.
    pub model: String,
    /// Setup.
    pub setup: Setup,
    /// Best partition size found (bytes).
    pub partition: u64,
    /// Best credit size found (bytes).
    pub credit: u64,
    /// Speed at that point.
    pub speed: f64,
}

/// The whole table.
#[derive(Clone, Debug, Serialize)]
pub struct Table1 {
    /// Cells: 3 models × 2 architectures.
    pub cells: Vec<Cell>,
}

/// Runs the tuning grid.
pub fn run_experiment(fid: Fidelity) -> Table1 {
    let combos: Vec<(DnnModel, Setup)> = bs_models::zoo::benchmark_models()
        .into_iter()
        .flat_map(|m| {
            [Setup::MxnetPsRdma, Setup::MxnetNcclRdma]
                .into_iter()
                .map(move |s| (m.clone(), s))
        })
        .collect();
    let cells = crate::parallel::parallel_map(combos, |(model, setup)| {
        let mut base = setup.config(model.clone(), GPUS, 100.0, SchedulerKind::Baseline);
        fid.apply(&mut base);
        // Table 1 is the headline tuning artefact: give it a roomier
        // budget than the in-figure tunings.
        let out = tune(&base, setup.search_space(), fid.tune_trials * 2, 21);
        Cell {
            model: model.name.clone(),
            setup: *setup,
            partition: out.partition,
            credit: out.credit,
            speed: out.speed,
        }
    });
    Table1 { cells }
}

/// Renders in the paper's layout: rows = architecture, columns = model,
/// cell = (partition MB, credit MB).
pub fn render(t1: &Table1) -> String {
    let models: Vec<&str> = ["VGG16", "ResNet50", "Transformer"].to_vec();
    let mut header = vec!["(partition, credit) MB"];
    header.extend(models.iter());
    let mut t = Table::new(
        "Table 1 — best partition and credit sizes (100 Gbps, 32 GPUs)",
        &header,
    );
    for setup in [Setup::MxnetPsRdma, Setup::MxnetNcclRdma] {
        let mut row = vec![setup.label().to_string()];
        for m in &models {
            let cell = t1
                .cells
                .iter()
                .find(|c| c.setup == setup && c.model == *m)
                .expect("cell exists");
            row.push(format!(
                "({}, {})",
                fmt_mb(cell.partition),
                fmt_mb(cell.credit)
            ));
        }
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's structural claim: the NCCL optimum is far above the PS
    /// optimum for the same model. Checked on ResNet-50 (cheapest) at
    /// quick fidelity.
    #[test]
    fn nccl_wants_much_larger_partitions_than_ps() {
        let fid = Fidelity::quick();
        let tune_one = |setup: Setup| {
            let mut base = setup.config(
                bs_models::zoo::resnet50(),
                GPUS,
                100.0,
                SchedulerKind::Baseline,
            );
            fid.apply(&mut base);
            tune(&base, setup.search_space(), 8, 21)
        };
        let ps = tune_one(Setup::MxnetPsRdma);
        let ar = tune_one(Setup::MxnetNcclRdma);
        assert!(
            ar.partition > ps.partition,
            "NCCL δ {} must exceed PS δ {}",
            ar.partition,
            ps.partition
        );
    }
}
