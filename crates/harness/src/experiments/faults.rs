//! Robustness under degraded fabrics: BS vs FIFO when the network
//! misbehaves.
//!
//! The paper evaluates ByteScheduler on healthy fabrics; this experiment
//! asks whether its credit-based pipelining survives unhealthy ones. It
//! replays the committed fault fixture (`tests/fixtures/fault_plan.json`:
//! a 2 s 4× degradation of worker 0's NIC, 0.1 % transfer loss, one 1.5×
//! straggler) and its single-fault projections against VGG16 on PS at
//! 25 Gbps, for both schedulers on both fabric models. Three questions:
//!
//! 1. **Degradation curve** — how much speed does each fault regime cost,
//!    and does ByteScheduler keep its advantage over FIFO throughout?
//!    (It should: loss retransmits re-enter the *priority* queue, so
//!    recovery traffic competes like any other urgent partition.)
//! 2. **Graceful completion** — every faulted run must end in
//!    `DegradedCompleted` with bounded retries, never a deadlock.
//! 3. **Re-tune trigger** (§3.5) — feeding the per-iteration throughput
//!    into [`bs_tune::DriftDetector`] must fire during the bandwidth
//!    shift on faulted runs and stay silent on clean ones, the signal
//!    that restarts Bayesian Optimization when the environment changes.

use bs_faults::FaultPlan;
use bs_net::FabricModel;
use bs_runtime::{run, run_observed, RunOutcome, SchedulerKind};
use bs_scope::{Collector, ScopeBus, ScopeEvent};
use bs_sim::SimTime;
use bs_tune::{DriftDetector, LiveDrift};
use serde::Serialize;

use crate::fidelity::Fidelity;
use crate::report::{fmt_speed, fmt_speedup, Table};
use crate::setups::Setup;

/// Link bandwidth of the study.
pub const GBPS: f64 = 25.0;
/// Total GPUs (8 per machine ⇒ 4 worker machines + 4 PS shards).
pub const GPUS: u64 = 32;
/// Fixed ByteScheduler knobs (δ, c) — tuned values for this setup.
pub const KNOBS: (u64, u64) = (4_000_000, 16_000_000);

/// Loads the committed fault-plan fixture the CI smoke and `tests/faults.rs`
/// also replay.
pub fn fixture_plan() -> FaultPlan {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/fault_plan.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fault fixture {} ({e})", path.display()));
    FaultPlan::from_json(&text).expect("committed fixture parses")
}

/// One (fabric, condition, scheduler) measurement.
#[derive(Clone, Debug, Serialize)]
pub struct FaultRow {
    /// Fabric model label ("fifo" / "fluid").
    pub fabric: &'static str,
    /// Fault condition label.
    pub condition: &'static str,
    /// Scheduler label.
    pub scheduler: &'static str,
    /// Training speed under the condition.
    pub speed: f64,
    /// How the run ended.
    pub outcome: RunOutcome,
}

/// Drift-detector behaviour on clean vs faulted throughput signals.
#[derive(Clone, Debug, Serialize)]
pub struct DriftOutcome {
    /// Re-tune triggers on the clean run (must be 0).
    pub clean_drifts: u64,
    /// Re-tune triggers on the fully-faulted run.
    pub faulted_drifts: u64,
    /// Measured iteration (0-based, post-warmup) of the first trigger.
    pub first_drift_iter: Option<usize>,
    /// `drift` events the live bus subscriber ([`LiveDrift`]) fired
    /// while the faulted run was in flight.
    pub live_drifts: u64,
    /// Absolute iteration number of the first live `drift` event
    /// (`warmup + first_drift_iter + 1` when live and offline agree).
    pub first_live_iter: Option<u64>,
    /// Simulated time (seconds) at which the first live `drift` fired.
    pub first_live_at_secs: Option<f64>,
    /// Whether the first live `drift` carries the exact timestamp of
    /// the `iter_done` event it was derived from — i.e. it fired *at*
    /// the iteration boundary where the shift became visible.
    pub live_at_on_iteration_mark: bool,
}

/// Full robustness-study results.
#[derive(Clone, Debug, Serialize)]
pub struct Faults {
    /// The degradation grid.
    pub rows: Vec<FaultRow>,
    /// §3.5 re-tune trigger check.
    pub drift: DriftOutcome,
}

/// The fault conditions, weakest to strongest: each is a projection of
/// the committed fixture so the study has one source of truth.
fn conditions() -> Vec<(&'static str, Option<FaultPlan>)> {
    let plan = fixture_plan();
    vec![
        ("clean", None),
        (
            "0.1% loss",
            Some(FaultPlan {
                link_events: Vec::new(),
                stragglers: Vec::new(),
                ..plan.clone()
            }),
        ),
        (
            "4x degrade",
            Some(FaultPlan {
                loss_rate: 0.0,
                stragglers: Vec::new(),
                ..plan.clone()
            }),
        ),
        ("full plan", Some(plan)),
    ]
}

/// Feeds a run's post-warmup iteration throughputs into a fresh
/// [`DriftDetector`]; returns (drifts fired, first firing index).
fn drift_scan(iter_times: &[f64]) -> (u64, Option<usize>) {
    let mut det = DriftDetector::paper_default();
    let mut first = None;
    for (i, &dt) in iter_times.iter().enumerate() {
        if det.observe(1.0 / dt) && first.is_none() {
            first = Some(i);
        }
    }
    (det.drifts(), first)
}

/// Runs the grid: 2 fabrics × 4 conditions × 2 schedulers, VGG16 PS TCP.
pub fn run_experiment(fid: Fidelity) -> Faults {
    let setup = Setup::MxnetPsTcp;
    let mut rows = Vec::new();
    let mut clean_times = Vec::new();
    let mut faulted_times = Vec::new();
    let mut live_events: Vec<ScopeEvent> = Vec::new();
    for (fabric, flabel) in [
        (FabricModel::SerialFifo, "fifo"),
        (FabricModel::FairShare, "fluid"),
    ] {
        for (condition, plan) in conditions() {
            for sched in [
                SchedulerKind::Baseline,
                SchedulerKind::ByteScheduler {
                    partition: KNOBS.0,
                    credit: KNOBS.1,
                },
            ] {
                let mut cfg = setup.config(bs_models::zoo::vgg16(), GPUS, GBPS, sched);
                fid.apply(&mut cfg);
                cfg.fabric = fabric;
                cfg.faults = plan.clone();
                // The faulted reference run doubles as the live-drift
                // check: a scope bus with a LiveDrift subscriber must
                // fire mid-run exactly where the offline scan does.
                let live_here = flabel == "fifo"
                    && condition == "full plan"
                    && matches!(sched, SchedulerKind::ByteScheduler { .. });
                let r = if live_here {
                    let mut bus = ScopeBus::new();
                    bus.subscribe(Box::new(LiveDrift::new(cfg.warmup)));
                    let (coll, log) = Collector::new();
                    bus.subscribe(Box::new(coll));
                    let r = run_observed(&cfg, Some(&mut bus));
                    live_events = log.events();
                    r
                } else {
                    run(&cfg)
                };
                if flabel == "fifo" && r.scheduler == "ByteScheduler" {
                    if condition == "clean" {
                        clean_times = r.iter_times.clone();
                    } else if condition == "full plan" {
                        faulted_times = r.iter_times.clone();
                    }
                }
                rows.push(FaultRow {
                    fabric: flabel,
                    condition,
                    scheduler: r.scheduler,
                    speed: r.speed,
                    outcome: r.outcome,
                });
            }
        }
    }
    let (clean_drifts, _) = drift_scan(&clean_times);
    let (faulted_drifts, first_drift_iter) = drift_scan(&faulted_times);
    let live: Vec<(u64, SimTime)> = live_events
        .iter()
        .filter_map(|e| match *e {
            ScopeEvent::Drift { iter, at, .. } => Some((iter, at)),
            _ => None,
        })
        .collect();
    let live_at_on_iteration_mark = live.first().is_some_and(|&(iter, at)| {
        live_events.iter().any(
            |e| matches!(*e, ScopeEvent::IterDone { iter: i, at: a, .. } if i == iter && a == at),
        )
    });
    Faults {
        rows,
        drift: DriftOutcome {
            clean_drifts,
            faulted_drifts,
            first_drift_iter,
            live_drifts: live.len() as u64,
            first_live_iter: live.first().map(|&(iter, _)| iter),
            first_live_at_secs: live.first().map(|&(_, at)| at.as_secs_f64()),
            live_at_on_iteration_mark,
        },
    }
}

fn outcome_cell(o: &RunOutcome) -> String {
    match o {
        RunOutcome::Completed => "completed".into(),
        RunOutcome::DegradedCompleted { retries, reroutes } => {
            format!("degraded ({retries} retries, {reroutes} reroutes)")
        }
        RunOutcome::Failed { reason } => format!("FAILED: {reason}"),
    }
}

/// Renders the degradation table and the drift-trigger summary.
pub fn render(f: &Faults) -> String {
    let mut t = Table::new(
        format!(
            "robustness — VGG16, PS TCP, {GPUS} GPUs @ {GBPS:.0} Gbps, committed fault fixture"
        ),
        &["fabric", "condition", "FIFO", "BS", "BS gain", "BS outcome"],
    );
    for fabric in ["fifo", "fluid"] {
        for (condition, _) in conditions() {
            let find = |sched: &str| {
                f.rows
                    .iter()
                    .find(|r| {
                        r.fabric == fabric && r.condition == condition && r.scheduler == sched
                    })
                    .expect("grid is complete")
            };
            let base = find("Baseline");
            let bs = find("ByteScheduler");
            t.row(vec![
                fabric.into(),
                condition.into(),
                fmt_speed(base.speed),
                fmt_speed(bs.speed),
                fmt_speedup(bs.speed / base.speed - 1.0),
                outcome_cell(&bs.outcome),
            ]);
        }
    }
    let drift = format!(
        "re-tune trigger (§3.5): clean run fired {} drifts; faulted run fired {}{}\n",
        f.drift.clean_drifts,
        f.drift.faulted_drifts,
        f.drift
            .first_drift_iter
            .map(|i| format!(" (first at measured iteration {i})"))
            .unwrap_or_default(),
    );
    let live = format!(
        "live re-tune trigger (scope bus): {} drift events mid-run{}\n",
        f.drift.live_drifts,
        match (f.drift.first_live_iter, f.drift.first_live_at_secs) {
            (Some(iter), Some(at)) => format!(" (first at iteration {iter}, t = {at:.3} s)"),
            _ => String::new(),
        },
    );
    format!("{}\n{drift}{live}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_runs_degrade_gracefully_and_bs_keeps_winning() {
        let f = run_experiment(Fidelity::quick());
        for r in &f.rows {
            assert!(
                !matches!(r.outcome, RunOutcome::Failed { .. }),
                "{} / {} / {}: failed",
                r.fabric,
                r.condition,
                r.scheduler
            );
            if r.condition == "clean" {
                assert_eq!(r.outcome, RunOutcome::Completed);
            }
            assert!(r.speed > 0.0);
        }
        // BS retains its advantage over FIFO under every fault regime.
        for fabric in ["fifo", "fluid"] {
            for (condition, _) in conditions() {
                let get = |s: &str| {
                    f.rows
                        .iter()
                        .find(|r| {
                            r.fabric == fabric && r.condition == condition && r.scheduler == s
                        })
                        .unwrap()
                        .speed
                };
                assert!(
                    get("ByteScheduler") > get("Baseline"),
                    "{fabric}/{condition}: BS lost its edge"
                );
            }
        }
        // Loss-bearing conditions actually exercised recovery.
        let lossy_retried = f.rows.iter().any(
            |r| matches!(r.outcome, RunOutcome::DegradedCompleted { retries, .. } if retries > 0),
        );
        assert!(lossy_retried, "no run retried anything");
    }

    #[test]
    fn drift_detector_fires_only_under_faults() {
        let f = run_experiment(Fidelity::quick());
        assert_eq!(
            f.drift.clean_drifts, 0,
            "clean run must not trigger re-tuning"
        );
        assert!(
            f.drift.faulted_drifts > 0,
            "the 4x degradation must trigger re-tuning"
        );
    }

    #[test]
    fn live_drift_matches_offline_scan() {
        let fid = Fidelity::quick();
        let f = run_experiment(fid);
        assert_eq!(
            f.drift.live_drifts, f.drift.faulted_drifts,
            "live bus subscriber and offline scan must fire identically"
        );
        let offline_first = f.drift.first_drift_iter.expect("faulted run drifts");
        assert_eq!(
            f.drift.first_live_iter,
            Some(fid.warmup + offline_first as u64 + 1),
            "iter_times[{offline_first}] ends at this absolute iteration"
        );
        assert!(
            f.drift.live_at_on_iteration_mark,
            "the live drift must be stamped with its iteration boundary's simulated time"
        );
        let at = f.drift.first_live_at_secs.expect("live drift fired");
        assert!(at > 0.0);
    }
}
