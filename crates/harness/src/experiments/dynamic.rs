//! §7 future directions, implemented: (a) *dynamic* partition/credit
//! sizes re-tuned as run-time conditions change, with the PS
//! checkpoint-restart cost the paper measures (§5: ~9 s per
//! partition-size change for ResNet-50); (b) *per-layer* partition sizes.
//!
//! (a) plays out over a bandwidth schedule — a training job whose
//! available network changes mid-run (the multi-tenant events motivating
//! §7's co-scheduling). Three strategies: **static** keeps the knobs
//! tuned for the first phase; **oracle** gets each phase's re-tuned knobs
//! for free; **dynamic** re-tunes at each change, paying profiling trials
//! plus restarts. The robust quantity reported per phase is the
//! **break-even time**: how long the phase must last before re-tuning
//! pays for itself — the open cost-model question the paper leaves to
//! future work, answered for this workload.
//!
//! (b) compares the uniform tuned δ against a size-proportional per-layer
//! rule (δᵢ = sᵢ/K, clamped; credit raised to cover the largest piece),
//! asking whether the open problem is worth solving for these models.

use bs_models::DnnModel;
use bs_runtime::{run, SchedulerKind, WorldConfig};
use serde::Serialize;

use crate::autotune::tune;
use crate::fidelity::Fidelity;
use crate::report::{fmt_speed, fmt_speedup, Table};
use crate::setups::Setup;

/// The bandwidth schedule: (Gbps, seconds of training under it). The job
/// starts bandwidth-starved (a congested fabric) and recovers in steps.
pub const PHASES: [(f64, f64); 3] = [(1.0, 300.0), (10.0, 300.0), (25.0, 300.0)];
/// PS checkpoint-restart cost per partition-size change (§5: ~9 s for
/// ResNet-50).
pub const RESTART_SECS: f64 = 9.0;
/// Seconds of training profiled per tuning trial.
pub const PROFILE_SECS: f64 = 1.0;

/// One phase of the schedule, measured.
#[derive(Clone, Debug, Serialize)]
pub struct PhaseRow {
    /// Bandwidth during the phase.
    pub gbps: f64,
    /// Speed with the phase-0 (static) knobs.
    pub static_speed: f64,
    /// Speed with this phase's re-tuned knobs.
    pub tuned_speed: f64,
    /// Cost of re-tuning at the phase boundary (profiling + restarts),
    /// seconds.
    pub tune_overhead_secs: f64,
    /// Seconds of training after which re-tuning has paid for itself;
    /// `None` when the static knobs are already (at least) as good.
    pub break_even_secs: Option<f64>,
}

/// Whole-schedule effective throughput per strategy.
#[derive(Clone, Debug, Serialize)]
pub struct StrategyOutcome {
    /// Strategy name: static / dynamic / oracle.
    pub strategy: &'static str,
    /// Samples per wall-second over the full schedule, overheads included.
    pub effective_speed: f64,
}

/// Per-layer partitioning comparison.
#[derive(Clone, Debug, Serialize)]
pub struct PerLayerOutcome {
    /// Uniform tuned δ speed.
    pub uniform: f64,
    /// Size-proportional per-layer δ speed.
    pub per_layer: f64,
    /// Relative difference.
    pub delta: f64,
}

/// Full §7 extension results.
#[derive(Clone, Debug, Serialize)]
pub struct Dynamic {
    /// Per-phase static-vs-tuned measurements and break-even times.
    pub phases: Vec<PhaseRow>,
    /// Whole-schedule outcomes at the configured phase lengths.
    pub adaptation: Vec<StrategyOutcome>,
    /// Per-layer δ study.
    pub per_layer: PerLayerOutcome,
}

fn speed_with(base: &WorldConfig, setup: Setup, gbps: f64, knobs: (u64, u64)) -> f64 {
    let mut cfg = base.clone();
    cfg.net = bs_net::NetConfig::gbps(gbps, setup.transport());
    cfg.scheduler = SchedulerKind::ByteScheduler {
        partition: knobs.0,
        credit: knobs.1,
    };
    run(&cfg).speed
}

/// Tunes at one phase's bandwidth; returns (δ, c, trials, restarts).
fn tune_phase(
    base: &WorldConfig,
    setup: Setup,
    gbps: f64,
    fid: Fidelity,
    seed: u64,
) -> (u64, u64, usize, usize) {
    let mut cfg = base.clone();
    cfg.net = bs_net::NetConfig::gbps(gbps, setup.transport());
    let out = tune(&cfg, setup.search_space(), fid.tune_trials, seed);
    // Each partition-size *change* along the trace costs a PS restart (§5).
    let mut restarts = 0;
    let mut last = None;
    for &(p, _, _) in &out.trace {
        if last != Some(p) {
            restarts += 1;
            last = Some(p);
        }
    }
    (out.partition, out.credit, out.trials, restarts)
}

/// Runs both studies on MXNet PS RDMA / 32 GPUs: the adaptation schedule
/// uses ResNet-50 (whose optimal knobs move with bandwidth — Figure 13's
/// fixed-vs-tuned gap), the per-layer study uses VGG16 (whose tensor
/// sizes span three orders of magnitude).
pub fn run_experiment(fid: Fidelity) -> Dynamic {
    let setup = Setup::MxnetPsRdma;
    let model: DnnModel = bs_models::zoo::resnet50();
    let mut base = setup.config(model.clone(), 32, PHASES[0].0, SchedulerKind::Baseline);
    fid.apply(&mut base);

    // --- (a) adaptation over the bandwidth schedule -------------------
    let initial = tune_phase(&base, setup, PHASES[0].0, fid, 51);
    let static_knobs = (initial.0, initial.1);
    let mut phases = Vec::new();
    for (idx, &(gbps, _)) in PHASES.iter().enumerate() {
        let static_speed = speed_with(&base, setup, gbps, static_knobs);
        let (tuned_speed, overhead) = if idx == 0 {
            (static_speed, 0.0)
        } else {
            let t = tune_phase(&base, setup, gbps, fid, 52 + idx as u64);
            let tuned = speed_with(&base, setup, gbps, (t.0, t.1));
            // BO can come back with a worse point than the incumbent at
            // low trial budgets; production deployments keep the better
            // of old and new (so do we).
            let tuned = tuned.max(static_speed);
            (tuned, t.2 as f64 * PROFILE_SECS + t.3 as f64 * RESTART_SECS)
        };
        let break_even_secs = if tuned_speed > static_speed * 1.001 {
            Some(overhead * tuned_speed / (tuned_speed - static_speed))
        } else {
            None
        };
        phases.push(PhaseRow {
            gbps,
            static_speed,
            tuned_speed,
            tune_overhead_secs: overhead,
            break_even_secs,
        });
    }

    // Whole-schedule accounting at the configured phase lengths.
    let mut adaptation = Vec::new();
    for strategy in ["static", "dynamic", "oracle"] {
        let mut samples = 0.0;
        let mut wall = 0.0;
        for (row, &(_, secs)) in phases.iter().zip(PHASES.iter()) {
            let (speed, overhead) = match strategy {
                "static" => (row.static_speed, 0.0),
                "oracle" => (row.tuned_speed, 0.0),
                // Re-tune only when it pays within the phase.
                _ => {
                    let worth = row.break_even_secs.map(|b| b < secs).unwrap_or(false);
                    if worth {
                        (row.tuned_speed, row.tune_overhead_secs)
                    } else {
                        (row.static_speed, 0.0)
                    }
                }
            };
            samples += speed * (secs - overhead).max(0.0);
            wall += secs;
        }
        adaptation.push(StrategyOutcome {
            strategy,
            effective_speed: samples / wall,
        });
    }

    // --- (b) per-layer partition sizes (VGG16, 25 Gbps) ----------------
    let vgg = bs_models::zoo::vgg16();
    let mut vgg_base = setup.config(vgg.clone(), 32, 25.0, SchedulerKind::Baseline);
    fid.apply(&mut vgg_base);
    let vgg_knobs = tune(&vgg_base, setup.search_space(), fid.tune_trials, 61);
    let uniform = speed_with(
        &vgg_base,
        setup,
        25.0,
        (vgg_knobs.partition, vgg_knobs.credit),
    );
    // Size-proportional rule with a cap: small tensors are split into at
    // most K pieces (fewer messages, less per-piece overhead), while big
    // tensors never exceed the tuned uniform δ (whose pipelining the
    // §4.1 analysis already optimised). The cap is what makes the rule
    // competitive: uncapped sᵢ/K gives VGG16's fc6 ~50 MB pieces whose
    // pull-start delay alone costs tens of milliseconds.
    let k = 8u64;
    let space = setup.search_space();
    let per_tensor: Vec<u64> = vgg
        .layers
        .iter()
        .map(|l| {
            (l.param_bytes / k).clamp(
                space.partition.0,
                vgg_knobs.partition.max(space.partition.0),
            )
        })
        .collect();
    let max_piece = per_tensor.iter().copied().max().unwrap_or(1);
    let mut cfg = vgg_base.clone();
    cfg.net = bs_net::NetConfig::gbps(25.0, setup.transport());
    cfg.scheduler = SchedulerKind::ByteScheduler {
        partition: vgg_knobs.partition,
        credit: vgg_knobs.credit.max(2 * max_piece),
    };
    cfg.per_tensor_partition = Some(per_tensor);
    let per_layer = run(&cfg).speed;

    Dynamic {
        phases,
        adaptation,
        per_layer: PerLayerOutcome {
            uniform,
            per_layer,
            delta: per_layer / uniform - 1.0,
        },
    }
}

/// Renders all three tables.
pub fn render(d: &Dynamic) -> String {
    let mut t0 = Table::new(
        "§7 extension — per-phase knob sensitivity (ResNet-50, PS RDMA)",
        &[
            "Gbps",
            "static knobs",
            "re-tuned",
            "overhead (s)",
            "break-even (s)",
        ],
    );
    for p in &d.phases {
        t0.row(vec![
            format!("{:.0}", p.gbps),
            fmt_speed(p.static_speed),
            fmt_speed(p.tuned_speed),
            format!("{:.0}", p.tune_overhead_secs),
            p.break_even_secs
                .map(|b| format!("{b:.0}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    let mut t = Table::new(
        format!(
            "§7 extension — effective speed over the schedule {:?} Gbps",
            PHASES.map(|(g, _)| g)
        ),
        &["strategy", "effective speed", "vs static"],
    );
    let static_speed = d.adaptation[0].effective_speed;
    for o in &d.adaptation {
        t.row(vec![
            o.strategy.to_string(),
            fmt_speed(o.effective_speed),
            fmt_speedup(o.effective_speed / static_speed - 1.0),
        ]);
    }
    let mut t2 = Table::new(
        "§7 extension — per-layer δ (sᵢ/8 rule) vs uniform tuned δ (VGG16, 25 Gbps)",
        &["policy", "speed", "Δ"],
    );
    t2.row(vec![
        "uniform δ".into(),
        fmt_speed(d.per_layer.uniform),
        "-".into(),
    ]);
    t2.row(vec![
        "per-layer δᵢ".into(),
        fmt_speed(d.per_layer.per_layer),
        fmt_speedup(d.per_layer.delta),
    ]);
    format!("{}\n{}\n{}", t0.render(), t.render(), t2.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_accounting_is_consistent() {
        let d = run_experiment(Fidelity::quick());
        let get = |name: &str| {
            d.adaptation
                .iter()
                .find(|o| o.strategy == name)
                .unwrap()
                .effective_speed
        };
        // oracle ≥ dynamic ≥ static: the oracle bounds both, and dynamic
        // only re-tunes when the break-even analysis says it pays.
        assert!(get("oracle") >= get("dynamic") * 0.999);
        assert!(get("dynamic") >= get("static") * 0.999);
        // Per-phase: the re-tuned knobs never lose to static (we keep the
        // incumbent), and break-even is positive and finite when they win.
        for p in &d.phases {
            assert!(p.tuned_speed >= p.static_speed * 0.999);
            if let Some(b) = p.break_even_secs {
                assert!(b.is_finite() && b > 0.0);
            }
        }
    }

    #[test]
    fn per_layer_partitioning_is_roughly_competitive() {
        // The paper leaves per-layer δ as an open problem; our simple
        // size-proportional rule should land within ±20 % of uniform —
        // a plausible direction, not a free win.
        let d = run_experiment(Fidelity::quick());
        assert!(
            d.per_layer.delta.abs() < 0.2,
            "per-layer delta {:+.1}%",
            d.per_layer.delta * 100.0
        );
    }
}
