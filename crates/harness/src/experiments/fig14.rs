//! Figure 14: search cost of the auto-tuning strategies — how many
//! profiling trials BO, SGD-with-momentum, random search and grid search
//! need to reach the optimal configuration (as identified by grid
//! search), for VGG-16 and Transformer on MXNet PS RDMA and NCCL RDMA.
//! Error bars are std-dev across seeds (§6.3).

use bs_models::DnnModel;
use bs_runtime::{run, SchedulerKind, WorldConfig};
use bs_sim::OnlineStats;
use bs_tune::{BayesOpt, GridSearch, RandomSearch, SgdMomentum, Tuner};
use serde::Serialize;

use crate::fidelity::Fidelity;
use crate::report::Table;
use crate::setups::Setup;

/// Trial cap per search (a strategy that never reaches the optimum is
/// charged the cap, like a timed-out search).
pub const MAX_TRIALS: usize = 30;
/// Reaching within this fraction of the grid-identified optimum counts as
/// "found it".
pub const SUCCESS_FRACTION: f64 = 0.97;
/// GPU count for the tuning objective.
pub const GPUS: u64 = 16;
/// Bandwidth for the tuning objective. 25 Gbps keeps communication
/// consequential for every workload, so the (δ, c) surface has real
/// structure for the tuners to find (at 100 Gbps the compute-bound
/// models are flat and every strategy trivially succeeds).
pub const BANDWIDTH_GBPS: f64 = 25.0;
/// Reference grid resolution per axis.
const REF_GRID: usize = 5;

/// Search-cost statistics for one strategy on one workload.
#[derive(Clone, Debug, Serialize)]
pub struct Cost {
    /// Strategy name.
    pub strategy: &'static str,
    /// Mean number of trials to success.
    pub mean: f64,
    /// Std-dev across seeds.
    pub std: f64,
}

/// One workload's comparison.
#[derive(Clone, Debug, Serialize)]
pub struct Panel {
    /// Model name.
    pub model: String,
    /// Setup.
    pub setup: Setup,
    /// The grid-identified optimal speed used as the success target.
    pub target_speed: f64,
    /// Costs per strategy, paper order: BO, SGD, Random, Grid.
    pub costs: Vec<Cost>,
}

/// The whole figure.
#[derive(Clone, Debug, Serialize)]
pub struct Fig14 {
    /// Four panels: {VGG16, Transformer} × {PS RDMA, NCCL RDMA}.
    pub panels: Vec<Panel>,
}

/// Runs the figure.
pub fn run_experiment(fid: Fidelity) -> Fig14 {
    let combos: Vec<(DnnModel, Setup)> = [bs_models::zoo::vgg16(), bs_models::zoo::transformer()]
        .into_iter()
        .flat_map(|m| {
            [Setup::MxnetPsRdma, Setup::MxnetNcclRdma]
                .into_iter()
                .map(move |s| (m.clone(), s))
        })
        .collect();
    let panels = crate::parallel::parallel_map(combos, |(model, setup)| {
        run_panel(model.clone(), *setup, fid)
    });
    Fig14 { panels }
}

/// Profiles one (δ, c) under the workload.
fn profile(base: &WorldConfig, setup: Setup, x: [f64; 2], seed: u64) -> f64 {
    let (partition, credit) = setup.search_space().decode(x);
    let mut cfg = base.clone();
    cfg.scheduler = SchedulerKind::ByteScheduler { partition, credit };
    cfg.seed = seed;
    run(&cfg).speed
}

fn run_panel(model: DnnModel, setup: Setup, fid: Fidelity) -> Panel {
    let mut base = setup.config(model.clone(), GPUS, BANDWIDTH_GBPS, SchedulerKind::Baseline);
    fid.apply(&mut base);

    // Establish the reference optimum the paper's protocol prescribes:
    // "we stop searching when it reaches the optimal configuration (as
    // identified by grid search)".
    let mut ref_grid = GridSearch::new(REF_GRID);
    let mut target_speed = f64::MIN;
    for t in 0..REF_GRID * REF_GRID {
        let x = ref_grid.suggest();
        let y = profile(&base, setup, x, 0xF1_00 + t as u64);
        ref_grid.observe(x, y);
        target_speed = target_speed.max(y);
    }
    let threshold = SUCCESS_FRACTION * target_speed;

    let mut costs = Vec::new();
    for strategy in ["BO", "SGD-momentum", "Random", "Grid"] {
        let mut stats = OnlineStats::new();
        for seed in 0..fid.seeds {
            let mut tuner: Box<dyn Tuner> = match strategy {
                "BO" => Box::new(BayesOpt::new(seed)),
                "SGD-momentum" => Box::new(SgdMomentum::new(seed)),
                "Random" => Box::new(RandomSearch::new(seed)),
                "Grid" => Box::new(GridSearch::new(REF_GRID)),
                _ => unreachable!(),
            };
            let mut trials = MAX_TRIALS;
            for t in 0..MAX_TRIALS {
                let x = tuner.suggest();
                let y = profile(&base, setup, x, seed.wrapping_mul(7919) + t as u64);
                tuner.observe(x, y);
                if y >= threshold {
                    trials = t + 1;
                    break;
                }
            }
            stats.push(trials as f64);
        }
        costs.push(Cost {
            strategy,
            mean: stats.mean(),
            std: stats.std_dev(),
        });
    }
    Panel {
        model: model.name,
        setup,
        target_speed,
        costs,
    }
}

/// Renders the comparison.
pub fn render(fig: &Fig14) -> String {
    let mut out = String::new();
    for p in &fig.panels {
        let mut t = Table::new(
            format!(
                "Figure 14 — search cost: {} on {} (target {:.0} samples/s)",
                p.model,
                p.setup.label(),
                p.target_speed
            ),
            &["strategy", "trials (mean)", "± std"],
        );
        for c in &p.costs {
            t.row(vec![
                c.strategy.to_string(),
                format!("{:.1}", c.mean),
                format!("{:.1}", c.std),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §6.3's headline: BO reaches the optimum with fewer trials, on
    /// average, than the alternatives. Checked on the cheaper ResNet-50
    /// PS workload at quick fidelity (direction only; the full-fidelity
    /// numbers go to EXPERIMENTS.md).
    #[test]
    fn bo_needs_no_more_trials_than_random() {
        let p = run_panel(
            bs_models::zoo::resnet50(),
            Setup::MxnetPsRdma,
            Fidelity::quick(),
        );
        let get = |name: &str| p.costs.iter().find(|c| c.strategy == name).unwrap().mean;
        assert!(
            get("BO") <= get("Random") + 2.0,
            "BO {} vs Random {}",
            get("BO"),
            get("Random")
        );
    }
}
