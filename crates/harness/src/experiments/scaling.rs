//! Figures 10, 11, 12: training speed vs GPU count for VGG16, ResNet-50
//! and Transformer across the five setups — baseline, ByteScheduler
//! (auto-tuned), linear scaling, plus P3 in the MXNet-PS-TCP panel.

use bs_models::DnnModel;
use bs_runtime::{run, SchedulerKind};
use serde::Serialize;

use crate::autotune::tune;
use crate::fidelity::Fidelity;
use crate::report::{fmt_mb, fmt_speed, fmt_speedup, Table};
use crate::setups::Setup;

/// GPU counts on the x-axis (§6.2).
pub const GPU_COUNTS: [u64; 4] = [8, 16, 32, 64];
/// Testbed bandwidth for the scaling figures.
pub const BANDWIDTH_GBPS: f64 = 100.0;

/// One (setup, gpu-count) measurement.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Total GPUs.
    pub gpus: u64,
    /// Vanilla framework speed.
    pub baseline: f64,
    /// P3 speed (MXNet PS TCP panel only).
    pub p3: Option<f64>,
    /// ByteScheduler speed at the auto-tuned (δ, c).
    pub bytescheduler: f64,
    /// Linear-scaling reference.
    pub linear: f64,
    /// ByteScheduler gain over baseline.
    pub speedup: f64,
    /// Tuned partition size (bytes).
    pub partition: u64,
    /// Tuned credit size (bytes).
    pub credit: u64,
}

/// One panel = one setup.
#[derive(Clone, Debug, Serialize)]
pub struct Panel {
    /// The setup.
    pub setup: Setup,
    /// Rows by GPU count.
    pub rows: Vec<Row>,
}

/// A whole scaling figure.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingFigure {
    /// "Figure 10" / "Figure 11" / "Figure 12".
    pub figure: &'static str,
    /// Model name.
    pub model: String,
    /// Speed unit.
    pub unit: &'static str,
    /// The five panels, paper order.
    pub panels: Vec<Panel>,
}

/// Runs one scaling figure for `model`.
pub fn run_experiment(figure: &'static str, model: DnnModel, fid: Fidelity) -> ScalingFigure {
    let unit = model.sample_unit.label();
    let name = model.name.clone();
    let jobs: Vec<(Setup, u64)> = Setup::all()
        .into_iter()
        .flat_map(|s| GPU_COUNTS.iter().map(move |&g| (s, g)))
        .collect();
    let model_ref = &model;
    let rows = crate::parallel::parallel_map(jobs.clone(), |&(setup, gpus)| {
        measure_point(setup, model_ref.clone(), gpus, BANDWIDTH_GBPS, fid)
    });
    let mut panels: Vec<Panel> = Setup::all()
        .into_iter()
        .map(|setup| Panel {
            setup,
            rows: Vec::new(),
        })
        .collect();
    for ((setup, _), row) in jobs.into_iter().zip(rows) {
        panels
            .iter_mut()
            .find(|p| p.setup == setup)
            .expect("panel exists")
            .rows
            .push(row);
    }
    ScalingFigure {
        figure,
        model: name,
        unit,
        panels,
    }
}

/// Measures one point: baseline, tuned ByteScheduler, P3 where relevant.
pub fn measure_point(setup: Setup, model: DnnModel, gpus: u64, gbps: f64, fid: Fidelity) -> Row {
    let mut base_cfg = setup.config(model.clone(), gpus, gbps, SchedulerKind::Baseline);
    fid.apply(&mut base_cfg);
    let linear = base_cfg.linear_scaling_speed();
    let baseline = run(&base_cfg);

    let outcome = tune(&base_cfg, setup.search_space(), fid.tune_trials, 7 + gpus);
    let mut bs_cfg = base_cfg.clone();
    bs_cfg.scheduler = SchedulerKind::ByteScheduler {
        partition: outcome.partition,
        credit: outcome.credit,
    };
    let bs = run(&bs_cfg);

    let p3 = (setup == Setup::MxnetPsTcp).then(|| {
        let mut cfg = base_cfg.clone();
        cfg.scheduler = SchedulerKind::P3;
        run(&cfg).speed
    });

    Row {
        gpus,
        baseline: baseline.speed,
        p3,
        bytescheduler: bs.speed,
        linear,
        speedup: bs.speedup_over(&baseline),
        partition: outcome.partition,
        credit: outcome.credit,
    }
}

/// Renders all five panels.
pub fn render(fig: &ScalingFigure) -> String {
    let mut out = String::new();
    for (idx, panel) in fig.panels.iter().enumerate() {
        let letter = (b'a' + idx as u8) as char;
        let has_p3 = panel.rows.iter().any(|r| r.p3.is_some());
        let mut header = vec!["GPUs", "Baseline"];
        if has_p3 {
            header.push("P3");
        }
        header.extend(["ByteScheduler", "Linear", "speedup", "δ (MB)", "c (MB)"]);
        let mut t = Table::new(
            format!(
                "{} ({letter}) — {} on {} [{}]",
                fig.figure,
                fig.model,
                panel.setup.label(),
                fig.unit
            ),
            &header,
        );
        for r in &panel.rows {
            let mut cells = vec![r.gpus.to_string(), fmt_speed(r.baseline)];
            if has_p3 {
                cells.push(r.p3.map(fmt_speed).unwrap_or_else(|| "-".into()));
            }
            cells.extend([
                fmt_speed(r.bytescheduler),
                fmt_speed(r.linear),
                fmt_speedup(r.speedup),
                fmt_mb(r.partition),
                fmt_mb(r.credit),
            ]);
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One point of the Figure-10 grid end-to-end: the headline claim is
    /// that ByteScheduler accelerates training in **all** experimented
    /// configurations; spot-check the flagship panel.
    #[test]
    fn vgg16_mxnet_ps_tcp_point_reproduces_orderings() {
        let r = measure_point(
            Setup::MxnetPsTcp,
            bs_models::zoo::vgg16(),
            16,
            100.0,
            Fidelity::quick(),
        );
        assert!(r.bytescheduler > r.baseline, "BS must beat baseline");
        let p3 = r.p3.expect("P3 present in panel (a)");
        assert!(p3 > r.baseline, "P3 must beat baseline");
        assert!(r.bytescheduler > p3, "BS must beat P3");
        assert!(r.bytescheduler <= r.linear * 1.02, "nothing beats linear");
    }
}
