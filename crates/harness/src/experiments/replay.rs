//! Production-trace replay study: the §7 shared-cluster question asked
//! against real arrival processes instead of hand-built mixes.
//!
//! Two parts, mirroring the two layers of `bs-replay`:
//!
//! 1. **JCT study** — replay a normalized trace once under ByteScheduler
//!    and once under the FIFO baseline (same arrivals, same placement,
//!    same seeds) and compare the *distributions*: p50/p95/p99/max JCT,
//!    split into queueing delay and run time. Tail percentiles are the
//!    point — a scheduler that wins means but loses p99 is not a win in
//!    a cluster.
//! 2. **Service study** — stand up a [`ReplayService`] over the same
//!    trace and drive `N` what-if queries through it in batches,
//!    measuring throughput and per-batch latency. The query mix cycles
//!    a small set of unique configs, so the run demonstrates (and the
//!    smoke test asserts) batch dedup and LRU cache hits.

use bs_cluster::{DistSummary, PlacementPolicy};
use bs_replay::{
    load_trace, replay_trace, ReplayOptions, ReplayReport, ReplayService, TraceFormat, TraceJob,
    WhatIfQuery,
};
use bs_runtime::SchedulerKind;
use serde::Serialize;

use crate::fidelity::Fidelity;
use crate::report::Table;

/// The committed trace fixture the binary defaults to
/// (manifest-anchored so it resolves from any working directory).
pub const DEFAULT_TRACE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/traces/philly_day.json"
);

/// One scheduler's replay outcome.
#[derive(Clone, Debug, Serialize)]
pub struct JctRow {
    /// Scheduler label.
    pub scheduler: &'static str,
    /// Jobs replayed.
    pub jobs: usize,
    /// Admission waves.
    pub waves: usize,
    /// Full JCT distribution, seconds.
    pub jct: DistSummary,
    /// Queueing-delay distribution, seconds.
    pub queueing: DistSummary,
    /// Run-time distribution, seconds.
    pub run: DistSummary,
    /// Absolute finish of the last wave, seconds.
    pub makespan_secs: f64,
}

impl JctRow {
    fn from_report(scheduler: &'static str, r: &ReplayReport) -> JctRow {
        JctRow {
            scheduler,
            jobs: r.jobs.len(),
            waves: r.waves,
            jct: r.jct,
            queueing: r.queueing,
            run: r.run,
            makespan_secs: r.makespan_secs,
        }
    }
}

/// The service half's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct ServeStudy {
    /// Queries driven through the service.
    pub queries: usize,
    /// Unique configs in the mix.
    pub unique_configs: usize,
    /// Batch size used.
    pub batch: usize,
    /// Answers served from the LRU cache.
    pub cache_hits: u64,
    /// Answers collapsed inside a batch.
    pub batch_dedup: u64,
    /// Replays actually executed.
    pub executed: u64,
    /// Total wall time, seconds.
    pub wall_secs: f64,
    /// Queries answered per wall second.
    pub queries_per_sec: f64,
    /// Per-batch wall-latency distribution, seconds.
    pub batch_latency: DistSummary,
}

/// The whole experiment.
#[derive(Clone, Debug, Serialize)]
pub struct ReplayStudy {
    /// Trace file replayed.
    pub trace: String,
    /// Jobs in the (possibly truncated) replay.
    pub jobs: usize,
    /// BS vs FIFO distribution rows.
    pub rows: Vec<JctRow>,
    /// Service throughput/latency outcome.
    pub serve: ServeStudy,
}

/// Base replay options at the given fidelity: quick mode truncates the
/// trace and caps iterations harder so smoke runs stay fast.
pub fn base_options(fid: Fidelity) -> ReplayOptions {
    let quick = fid.iters < Fidelity::full().iters;
    ReplayOptions {
        iters_cap: if quick { 3 } else { 8 },
        truncate: if quick { Some(12) } else { None },
        ..ReplayOptions::default()
    }
}

/// Loads a trace file from disk, detecting the dialect by extension.
pub fn load_trace_file(path: &str) -> Result<Vec<TraceJob>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    load_trace(&text, TraceFormat::detect(path, &text))
}

/// The BS-vs-FIFO distribution comparison.
pub fn jct_study(jobs: &[TraceJob], opts: &ReplayOptions) -> Vec<JctRow> {
    let bs = replay_trace(jobs, opts);
    let fifo = replay_trace(
        jobs,
        &ReplayOptions {
            scheduler: SchedulerKind::Baseline,
            ..opts.clone()
        },
    );
    vec![
        JctRow::from_report("ByteScheduler", &bs),
        JctRow::from_report("Baseline", &fifo),
    ]
}

/// The what-if query mix the service study cycles: bandwidth ×
/// placement variations plus a FIFO row — 6 unique configs.
pub fn query_mix() -> Vec<WhatIfQuery> {
    let mut mix = Vec::new();
    for b in [10.0, 25.0, 40.0] {
        mix.push(WhatIfQuery {
            bandwidth_gbps: Some(b),
            ..WhatIfQuery::default()
        });
    }
    for p in [PlacementPolicy::Packed, PlacementPolicy::NetworkAware] {
        mix.push(WhatIfQuery {
            placement: Some(p),
            ..WhatIfQuery::default()
        });
    }
    mix.push(WhatIfQuery {
        scheduler: Some(SchedulerKind::Baseline),
        ..WhatIfQuery::default()
    });
    mix
}

/// Drives `n_queries` through a fresh service in batches of `batch`,
/// cycling [`query_mix`] so repeats are guaranteed once
/// `n_queries > unique configs`.
pub fn serve_study(
    jobs: &[TraceJob],
    opts: &ReplayOptions,
    n_queries: usize,
    batch: usize,
) -> ServeStudy {
    let mix = query_mix();
    let mut svc = ReplayService::new(jobs.to_vec(), opts.clone(), 8);
    let queries: Vec<WhatIfQuery> = (0..n_queries).map(|i| mix[i % mix.len()].clone()).collect();
    let mut latencies = Vec::new();
    let t0 = std::time::Instant::now();
    for chunk in queries.chunks(batch.max(1)) {
        let b0 = std::time::Instant::now();
        let answers = svc.submit_batch(chunk);
        latencies.push(b0.elapsed().as_secs_f64());
        assert_eq!(answers.len(), chunk.len(), "one answer per query");
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = svc.stats();
    ServeStudy {
        queries: n_queries,
        unique_configs: mix.len().min(n_queries),
        batch: batch.max(1),
        cache_hits: stats.cache_hits,
        batch_dedup: stats.batch_dedup,
        executed: stats.executed,
        wall_secs: wall,
        queries_per_sec: n_queries as f64 / wall.max(1e-9),
        batch_latency: DistSummary::from_unsorted(latencies),
    }
}

/// Runs both halves over a trace file.
pub fn run_experiment(fid: Fidelity, trace_path: &str, n_queries: usize) -> ReplayStudy {
    let jobs = load_trace_file(trace_path).expect("trace loads");
    let opts = base_options(fid);
    let rows = jct_study(&jobs, &opts);
    let serve = serve_study(&jobs, &opts, n_queries, 4);
    ReplayStudy {
        trace: trace_path.to_string(),
        jobs: rows[0].jobs,
        rows,
        serve,
    }
}

/// Renders both tables.
pub fn render(s: &ReplayStudy) -> String {
    let mut out = String::new();
    let mut t = Table::new(
        format!(
            "trace replay — {} ({} jobs, {} waves): JCT distribution, seconds",
            s.trace, s.jobs, s.rows[0].waves
        ),
        &[
            "scheduler",
            "p50",
            "p95",
            "p99",
            "max",
            "queue p50",
            "run p50",
            "makespan",
        ],
    );
    for r in &s.rows {
        t.row(vec![
            r.scheduler.to_string(),
            format!("{:.2}", r.jct.p50),
            format!("{:.2}", r.jct.p95),
            format!("{:.2}", r.jct.p99),
            format!("{:.2}", r.jct.max),
            format!("{:.2}", r.queueing.p50),
            format!("{:.2}", r.run.p50),
            format!("{:.2}", r.makespan_secs),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    let v = &s.serve;
    let mut t = Table::new(
        format!(
            "what-if service — {} queries over {} unique configs, batches of {}",
            v.queries, v.unique_configs, v.batch
        ),
        &[
            "executed",
            "cache hits",
            "batch dedup",
            "queries/s",
            "batch p50 (ms)",
            "batch max (ms)",
        ],
    );
    t.row(vec![
        v.executed.to_string(),
        v.cache_hits.to_string(),
        v.batch_dedup.to_string(),
        format!("{:.2}", v.queries_per_sec),
        format!("{:.1}", v.batch_latency.p50 * 1e3),
        format!("{:.1}", v.batch_latency.max * 1e3),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_runs_and_service_reuses_results() {
        let s = run_experiment(Fidelity::quick(), DEFAULT_TRACE, 16);
        assert_eq!(s.rows.len(), 2);
        for r in &s.rows {
            assert!(r.jct.p50 <= r.jct.p95 && r.jct.p95 <= r.jct.p99);
            assert!(r.jct.p99 <= r.jct.max);
            assert!(r.makespan_secs > 0.0);
        }
        // 16 queries over 6 unique configs: repeats must hit the cache
        // (or collapse inside a batch), and only the unique set executes.
        assert_eq!(s.serve.executed as usize, s.serve.unique_configs);
        assert!(
            s.serve.cache_hits + s.serve.batch_dedup >= 10,
            "16 queries / 6 configs must reuse at least 10 answers: {:?}",
            s.serve
        );
        assert!(s.serve.cache_hits > 0, "repeat batches must hit the LRU");
    }
}
