//! §7 "co-scheduling in a shared cluster", the multi-job half: real
//! concurrent training jobs contending on one fabric, instead of the
//! synthetic-burst approximation in [`super::coschedule`].
//!
//! Two studies:
//!
//! 1. **Co-tenant** — a ByteScheduler job and a FIFO-baseline job packed
//!    onto the same machines, each compared with its solo run. The
//!    finding mirrors the synthetic study: contention costs everyone real
//!    throughput, but ByteScheduler's ordering advantage survives — its
//!    gains come from *when* bytes are sent, which a co-tenant does not
//!    change.
//! 2. **Placement** — 2, 4 and 8 jobs on a fixed 8-machine cluster under
//!    all three [`PlacementPolicy`]s, reporting makespan, mean JCT,
//!    Jain's fairness over per-job throughput, and peak link utilisation.
//!    Network-aware placement only helps while the cluster has slack;
//!    once every machine is shared, policy differences wash out and
//!    fairness is what distinguishes the fabric disciplines.
//!
//! Runs on the fluid (max-min fair) fabric: multi-tenant NIC sharing is
//! what that model exists for.

use bs_cluster::{
    run_cluster, run_cluster_observed, ClusterConfig, ClusterResult, FaultReaction, JobSpec,
    PlacementPolicy,
};
use bs_faults::FaultPlan;
use bs_net::FabricModel;
use bs_runtime::{run, RunOutcome, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use serde::Serialize;

use crate::fidelity::Fidelity;
use crate::report::{fmt_speed, fmt_speedup, Table};
use crate::setups::Setup;

/// Machines in the placement-study cluster.
pub const MACHINES: usize = 8;
/// GPUs per job (2 PS workers of 8 GPUs each + 2 co-located shards).
pub const GPUS_PER_JOB: u64 = 16;
/// Link bandwidth, Gbps.
pub const GBPS: f64 = 25.0;

/// One job of the co-tenant study.
#[derive(Clone, Debug, Serialize)]
pub struct CoTenantRow {
    /// Job name ("bytescheduler" / "fifo-baseline").
    pub name: String,
    /// Speed when running alone on its machines.
    pub solo_speed: f64,
    /// Speed when packed with the other job.
    pub shared_speed: f64,
    /// `shared/solo - 1` (negative = slowdown).
    pub slowdown: f64,
    /// Completion time in the shared run, seconds.
    pub jct_secs: f64,
}

/// One placement-study configuration.
#[derive(Clone, Debug, Serialize)]
pub struct PlacementRow {
    /// Concurrent jobs.
    pub jobs: usize,
    /// Placement policy label.
    pub policy: &'static str,
    /// Cluster makespan, seconds.
    pub makespan_secs: f64,
    /// Mean job completion time, seconds.
    pub mean_jct_secs: f64,
    /// Jain's fairness over per-job throughput.
    pub jain: f64,
    /// Busiest NIC direction's utilisation.
    pub peak_link_util: f64,
}

/// The whole experiment.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterStudy {
    /// Co-tenant rows (one per job).
    pub cotenant: Vec<CoTenantRow>,
    /// Placement rows (jobs × policy).
    pub placement: Vec<PlacementRow>,
}

/// ByteScheduler knobs for the cluster jobs — the Table 1 neighbourhood
/// for VGG16 PS RDMA; the cluster study compares policies, not knobs.
fn bytescheduler() -> SchedulerKind {
    SchedulerKind::ByteScheduler {
        partition: 4_000_000,
        credit: 16_000_000,
    }
}

/// One job's configuration: VGG16, MXNet PS, RDMA at [`GBPS`].
fn job_cfg(fid: Fidelity, sched: SchedulerKind, seed: u64) -> WorldConfig {
    let mut cfg = Setup::MxnetPsRdma.config(bs_models::zoo::vgg16(), GPUS_PER_JOB, GBPS, sched);
    fid.apply(&mut cfg);
    cfg.seed = seed;
    // The cluster fabric is fluid; solo reference runs must match it.
    cfg.fabric = FabricModel::FairShare;
    cfg
}

fn cluster(machines: usize, placement: PlacementPolicy, cfg: &WorldConfig) -> ClusterConfig {
    let mut c = ClusterConfig::new(machines, cfg.net);
    c.fabric = FabricModel::FairShare;
    c.placement = placement;
    c
}

/// The default base seed — the value every committed artefact and
/// EXPERIMENTS.md table was produced with.
pub const DEFAULT_SEED: u64 = 21;

/// Runs both studies. `seed` is the base jitter seed: the co-tenant jobs
/// run at `seed` / `seed + 1` and placement-study job `j` at
/// `seed + 79 + j`, so [`DEFAULT_SEED`] reproduces the committed
/// artefacts exactly and any other value gives an independent synthetic
/// mix that is itself reproducible from the CLI (`cluster --seed N`).
pub fn run_experiment(fid: Fidelity, seed: u64) -> ClusterStudy {
    // --- Study 1: one ByteScheduler job and one FIFO job, packed. ---
    let bs_cfg = job_cfg(fid, bytescheduler(), seed);
    let fifo_cfg = job_cfg(fid, SchedulerKind::Baseline, seed + 1);
    let specs = vec![
        JobSpec::train("bytescheduler", bs_cfg.clone()),
        JobSpec::train("fifo-baseline", fifo_cfg.clone()),
    ];
    let shared = run_cluster(
        &cluster(bs_cfg.num_workers * 2, PlacementPolicy::Packed, &bs_cfg),
        &specs,
    );
    let solo_speeds = [run(&bs_cfg).speed, run(&fifo_cfg).speed];
    let cotenant = shared
        .jobs
        .iter()
        .zip(solo_speeds)
        .map(|(j, solo)| CoTenantRow {
            name: j.name.clone(),
            solo_speed: solo,
            shared_speed: j.result.speed,
            slowdown: j.result.speed / solo - 1.0,
            jct_secs: j.jct.as_secs_f64(),
        })
        .collect();

    // --- Study 2: 2/4/8 jobs × 3 placement policies. ---
    let mut placement = Vec::new();
    for &n_jobs in &[2usize, 4, 8] {
        let specs: Vec<JobSpec> = (0..n_jobs)
            .map(|j| {
                let sched = if j % 2 == 0 {
                    bytescheduler()
                } else {
                    SchedulerKind::Baseline
                };
                let cfg = job_cfg(fid, sched, seed + 79 + j as u64);
                // Staggered arrivals: a new tenant every 50 ms.
                JobSpec::train_at(format!("job{j}"), cfg, SimTime::from_millis(50 * j as u64))
            })
            .collect();
        for policy in PlacementPolicy::all() {
            let template = job_cfg(fid, bytescheduler(), 1);
            let r = run_cluster(&cluster(MACHINES, policy, &template), &specs);
            placement.push(PlacementRow {
                jobs: n_jobs,
                policy: policy.label(),
                makespan_secs: r.makespan.as_secs_f64(),
                mean_jct_secs: r.mean_jct_secs(),
                jain: r.jain_fairness,
                peak_link_util: r.peak_link_utilisation(),
            });
        }
    }
    ClusterStudy {
        cotenant,
        placement,
    }
}

/// Runs one deterministic 2-job cluster with a recorded trace — the
/// configuration the `cluster` binary uses for its bit-identical-trace
/// verification and JSON artefact. `record_metrics` additionally turns
/// on run telemetry (the `cluster --metrics` path); `record_xray` turns
/// on the causal event log and per-job critical-path attribution (the
/// `cluster --xray` path).
pub fn reference_run(fid: Fidelity, record_metrics: bool, record_xray: bool) -> ClusterResult {
    let bs_cfg = job_cfg(fid, bytescheduler(), 21);
    let fifo_cfg = job_cfg(fid, SchedulerKind::Baseline, 22);
    let mut c = cluster(bs_cfg.num_workers * 2, PlacementPolicy::Packed, &bs_cfg);
    c.record_trace = true;
    c.record_metrics = record_metrics;
    c.record_xray = record_xray;
    run_cluster(
        &c,
        &[
            JobSpec::train("bytescheduler", bs_cfg),
            JobSpec::train("fifo-baseline", fifo_cfg),
        ],
    )
}

/// Runs the 2-job reference cluster with a scope bus attached — the
/// `cluster --watch` path. Caller owns the bus (subscribers and the
/// final `finish` call), so the binary can mix a live table, a flight
/// recorder and a drift bank on one stream.
pub fn observed_reference(fid: Fidelity, bus: &mut bs_scope::ScopeBus) -> ClusterResult {
    let bs_cfg = job_cfg(fid, bytescheduler(), 21);
    let fifo_cfg = job_cfg(fid, SchedulerKind::Baseline, 22);
    let c = cluster(bs_cfg.num_workers * 2, PlacementPolicy::Packed, &bs_cfg);
    run_cluster_observed(
        &c,
        &[
            JobSpec::train("bytescheduler", bs_cfg),
            JobSpec::train("fifo-baseline", fifo_cfg),
        ],
        Some(bus),
    )
}

/// Runs the 4-tenant contention reference behind `cluster --contention`:
/// three PS training tenants (two ByteScheduler, one FIFO) and one burst
/// tenant packed onto 4 machines, with the link-contention observatory
/// recording. Every tenant pushes through every shared NIC, so the
/// matrix has all six pairs and genuinely contended links. (All-reduce
/// tenants are deliberately absent: their collective streams are private,
/// so they contend for machines, not wires — see the crate doc.)
pub fn contention_reference(fid: Fidelity) -> ClusterResult {
    use bs_runtime::BackgroundLoad;
    let specs = vec![
        JobSpec::train("bytescheduler-a", job_cfg(fid, bytescheduler(), 21)),
        JobSpec::train("bytescheduler-b", job_cfg(fid, bytescheduler(), 22)),
        JobSpec::train("fifo-baseline", job_cfg(fid, SchedulerKind::Baseline, 23)),
        JobSpec::burst(
            "burst-bg",
            BackgroundLoad {
                burst_bytes: 4 << 20,
                gap_us: 2_000,
            },
            2,
            97,
        ),
    ];
    let template = job_cfg(fid, bytescheduler(), 1);
    let mut c = cluster(template.num_workers * 2, PlacementPolicy::Packed, &template);
    c.record_contention = true;
    run_cluster(&c, &specs)
}

/// Runs the 4-tenant mix (2 PS + 2 all-reduce) behind the `cluster`
/// binary's `--threads` check at the given thread count, returning the
/// wall-clock seconds and the result (trace recorded). The all-reduce
/// tenants' collective streams are private, so the conservative-parallel
/// core can free-run them between shared-fabric interaction points;
/// `threads == 1` is the plain sequential core.
pub fn parallel_reference(fid: Fidelity, threads: usize) -> (f64, ClusterResult) {
    let mut specs = vec![
        JobSpec::train("ps-bytescheduler", job_cfg(fid, bytescheduler(), 21)),
        JobSpec::train("ps-fifo", job_cfg(fid, SchedulerKind::Baseline, 22)),
    ];
    for (i, seed) in [31u64, 32].into_iter().enumerate() {
        let mut cfg = Setup::MxnetNcclRdma.config(
            bs_models::zoo::vgg16(),
            GPUS_PER_JOB,
            GBPS,
            bytescheduler(),
        );
        fid.apply(&mut cfg);
        cfg.seed = seed;
        specs.push(JobSpec::train(format!("allreduce{i}"), cfg));
    }
    let template = job_cfg(fid, bytescheduler(), 1);
    let mut c = cluster(template.num_workers * 2, PlacementPolicy::Packed, &template);
    c.record_trace = true;
    c.threads = threads;
    let t0 = std::time::Instant::now();
    let r = run_cluster(&c, &specs);
    (t0.elapsed().as_secs_f64(), r)
}

/// Loads the committed cluster-scope fault fixture
/// (`tests/fixtures/cluster_fault_plan.json`): one machine failure with
/// a scheduled restore, a transient link degradation, low transfer loss
/// and one straggler window. The single source of truth for the
/// migration study, the `cluster --faults` CI smoke and
/// `tests/cluster_faults.rs`.
pub fn cluster_fault_fixture() -> FaultPlan {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/cluster_fault_plan.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing cluster fault fixture {} ({e})", path.display()));
    FaultPlan::from_json(&text).expect("committed fixture parses")
}

/// One (fabric, reaction) arm of the migration study.
#[derive(Clone, Debug, Serialize)]
pub struct MigrationRow {
    /// Fabric model label ("fifo" / "fluid").
    pub fabric: &'static str,
    /// Reaction label ("no-reaction" / "checkpoint+migrate").
    pub reaction: &'static str,
    /// Cluster makespan, seconds.
    pub makespan_secs: f64,
    /// Mean job completion time, seconds.
    pub mean_jct_secs: f64,
    /// Checkpoint → migrate → resume cycles the driver performed.
    pub migrations: usize,
    /// Iterations rolled back and re-run across all migrations.
    pub lost_iters: u64,
    /// Per-job outcome cells, spec order.
    pub outcomes: Vec<String>,
}

/// Makespan comparison of the two reactions on one fabric.
#[derive(Clone, Debug, Serialize)]
pub struct MigrationSaving {
    /// Fabric model label.
    pub fabric: &'static str,
    /// Makespan when affected jobs ride out the outage, seconds.
    pub no_reaction_secs: f64,
    /// Makespan under checkpoint+migrate, seconds.
    pub migrate_secs: f64,
    /// `no_reaction - migrate`; positive means migration wins.
    pub saved_secs: f64,
}

/// The machine-failure reaction study.
#[derive(Clone, Debug, Serialize)]
pub struct MigrationStudy {
    /// Fabric × reaction grid.
    pub rows: Vec<MigrationRow>,
    /// Per-fabric makespan comparison.
    pub savings: Vec<MigrationSaving>,
}

fn outcome_cell(o: &RunOutcome) -> String {
    match o {
        RunOutcome::Completed => "completed".into(),
        RunOutcome::DegradedCompleted { retries, reroutes } => {
            format!("degraded ({retries} retries, {reroutes} reroutes)")
        }
        RunOutcome::Failed { reason } => format!("FAILED: {reason}"),
    }
}

/// Runs the §7 machine-failure reaction comparison behind
/// `cluster --faults`: the 2-job reference pair packed onto
/// `2·num_workers` machines plus one spare, with `plan` as the cluster
/// fault plan, once letting affected jobs ride out the outage
/// ([`FaultReaction::None`] — retransmits queue against the dead NIC
/// until its scheduled restore) and once with the driver's reactive
/// checkpoint/migrate/resume loop. Both arms pay the same link
/// degradation, loss stream and straggler window; only the reaction
/// differs, so the makespan gap prices the §7 checkpoint-restart
/// decision itself.
pub fn migration_study(fid: Fidelity, plan: &FaultPlan) -> MigrationStudy {
    let mut rows = Vec::new();
    let mut savings = Vec::new();
    for (fabric, flabel) in [
        (FabricModel::SerialFifo, "fifo"),
        (FabricModel::FairShare, "fluid"),
    ] {
        let mut makespans = [0.0f64; 2];
        for (k, (reaction, rlabel)) in [
            (FaultReaction::None, "no-reaction"),
            (FaultReaction::CheckpointMigrate, "checkpoint+migrate"),
        ]
        .into_iter()
        .enumerate()
        {
            let bs_cfg = job_cfg(fid, bytescheduler(), 21);
            let fifo_cfg = job_cfg(fid, SchedulerKind::Baseline, 22);
            // One spare machine so the health-aware remap has somewhere
            // to move the failed machine's nodes.
            let mut c = cluster(bs_cfg.num_workers * 2 + 1, PlacementPolicy::Packed, &bs_cfg);
            c.fabric = fabric;
            c.faults = Some(plan.clone());
            c.reaction = reaction;
            let r = run_cluster(
                &c,
                &[
                    JobSpec::train("bytescheduler", bs_cfg),
                    JobSpec::train("fifo-baseline", fifo_cfg),
                ],
            );
            makespans[k] = r.makespan.as_secs_f64();
            rows.push(MigrationRow {
                fabric: flabel,
                reaction: rlabel,
                makespan_secs: r.makespan.as_secs_f64(),
                mean_jct_secs: r.mean_jct_secs(),
                migrations: r.migrations.len(),
                lost_iters: r.migrations.iter().map(|m| m.lost_iters).sum(),
                outcomes: r
                    .jobs
                    .iter()
                    .map(|j| outcome_cell(&j.result.outcome))
                    .collect(),
            });
        }
        savings.push(MigrationSaving {
            fabric: flabel,
            no_reaction_secs: makespans[0],
            migrate_secs: makespans[1],
            saved_secs: makespans[0] - makespans[1],
        });
    }
    MigrationStudy { rows, savings }
}

/// Renders the migration-study grid and the per-fabric verdict lines.
pub fn render_migration(m: &MigrationStudy) -> String {
    let mut out = String::new();
    let mut t = Table::new(
        "§7 extension — machine failure: ride out the outage vs checkpoint+migrate (2 jobs packed + 1 spare machine, committed cluster fault fixture)".to_string(),
        &[
            "fabric",
            "reaction",
            "makespan (s)",
            "mean JCT (s)",
            "migrations",
            "lost iters",
            "job outcomes",
        ],
    );
    for r in &m.rows {
        t.row(vec![
            r.fabric.into(),
            r.reaction.into(),
            format!("{:.2}", r.makespan_secs),
            format!("{:.2}", r.mean_jct_secs),
            r.migrations.to_string(),
            r.lost_iters.to_string(),
            r.outcomes.join("; "),
        ]);
    }
    out.push_str(&t.render());
    for s in &m.savings {
        out.push_str(&format!(
            "{}: checkpoint+migrate finishes {:.2} s earlier than riding out the outage ({:.2} s vs {:.2} s)\n",
            s.fabric, s.saved_secs, s.migrate_secs, s.no_reaction_secs
        ));
    }
    out
}

/// Renders both tables.
pub fn render(s: &ClusterStudy) -> String {
    let mut out = String::new();
    let mut t = Table::new(
        format!("§7 extension — real co-tenant jobs, packed placement (VGG16, MXNet PS RDMA, {GBPS} Gbps, fluid fabric)"),
        &["job", "solo", "shared", "slowdown", "JCT (s)"],
    );
    for r in &s.cotenant {
        t.row(vec![
            r.name.clone(),
            fmt_speed(r.solo_speed),
            fmt_speed(r.shared_speed),
            fmt_speedup(r.slowdown),
            format!("{:.2}", r.jct_secs),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    let mut t = Table::new(
        format!("§7 extension — placement policies on {MACHINES} machines (mixed ByteScheduler/FIFO jobs, staggered arrivals)"),
        &["jobs", "policy", "makespan (s)", "mean JCT (s)", "Jain", "peak link util"],
    );
    for r in &s.placement {
        t.row(vec![
            r.jobs.to_string(),
            r.policy.to_string(),
            format!("{:.2}", r.makespan_secs),
            format!("{:.2}", r.mean_jct_secs),
            format!("{:.3}", r.jain),
            format!("{:.2}", r.peak_link_util),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_cotenants_contend_and_scheduling_still_wins() {
        let s = run_experiment(Fidelity::quick(), DEFAULT_SEED);
        // Sharing never helps anyone; the ByteScheduler job overlaps the
        // slower FIFO job for its whole lifetime and must lose strictly.
        // (The FIFO job may tie: its co-tenant can retire inside its
        // warmup window, leaving the measured iterations uncontended.)
        for r in &s.cotenant {
            assert!(
                r.shared_speed <= r.solo_speed,
                "{}: shared {} must not beat solo {}",
                r.name,
                r.shared_speed,
                r.solo_speed
            );
        }
        assert!(
            s.cotenant[0].shared_speed < s.cotenant[0].solo_speed,
            "the ByteScheduler job must pay for contention"
        );
        // ...but the ByteScheduler job stays ahead of the FIFO job.
        assert!(
            s.cotenant[0].shared_speed > s.cotenant[1].shared_speed,
            "ByteScheduler {} must beat FIFO {} under contention",
            s.cotenant[0].shared_speed,
            s.cotenant[1].shared_speed
        );
        // With room to spare (2 jobs on 8 machines), spreading beats
        // packing on makespan.
        let row = |jobs: usize, policy: &str| {
            s.placement
                .iter()
                .find(|r| r.jobs == jobs && r.policy == policy)
                .expect("row present")
        };
        assert!(
            row(2, "round-robin").makespan_secs <= row(2, "packed").makespan_secs,
            "spread must not lose to packed while the cluster has slack"
        );
        for r in &s.placement {
            assert!(r.jain > 0.0 && r.jain <= 1.0 + 1e-12, "Jain in (0,1]");
            assert!(r.peak_link_util > 0.0, "traffic must register on links");
        }
    }

    #[test]
    fn migration_beats_riding_out_the_outage_on_both_fabrics() {
        let m = migration_study(Fidelity::quick(), &cluster_fault_fixture());
        assert_eq!(m.rows.len(), 4, "2 fabrics x 2 reactions");
        for r in &m.rows {
            assert!(
                r.outcomes.iter().all(|o| !o.starts_with("FAILED")),
                "{}/{}: a job failed: {:?}",
                r.fabric,
                r.reaction,
                r.outcomes
            );
            if r.reaction == "checkpoint+migrate" {
                assert!(
                    r.migrations >= 1,
                    "{}: the failure must trigger at least one migration",
                    r.fabric
                );
                assert!(
                    r.outcomes.iter().all(|o| o.starts_with("degraded")),
                    "{}: migrated jobs must report DegradedCompleted: {:?}",
                    r.fabric,
                    r.outcomes
                );
            } else {
                assert_eq!(
                    r.migrations, 0,
                    "{}: no-reaction must not migrate",
                    r.fabric
                );
            }
        }
        for s in &m.savings {
            assert!(
                s.saved_secs > 0.0,
                "{}: checkpoint+migrate must beat no-reaction on makespan \
                 ({:.2} s vs {:.2} s)",
                s.fabric,
                s.migrate_secs,
                s.no_reaction_secs
            );
        }
    }
}
